//! Runtime-dispatched multi-word bitmap kernels.
//!
//! Every hot bitmap operation — popcounts, unions, masked counts, window
//! copies — bottoms out in one of the function pointers in [`Kernels`].
//! The generic bodies are written once as explicitly unrolled, branch-free
//! word loops (`#[inline(always)]`, independent accumulators) and
//! instantiated twice:
//!
//! * a **portable** build the compiler autovectorizes for the baseline
//!   target (SSE2 on `x86_64`), and
//! * on `x86_64`, an **AVX2 + POPCNT** build via `#[target_feature]` —
//!   the same source, compiled for the wide ISA and installed only when
//!   `is_x86_feature_detected!` confirms the CPU supports it.
//!
//! Selection happens **once** per process ([`active`], a `OnceLock`); the
//! table is then a plain `&'static` and every call site in the builder,
//! delta maintenance, and the mining loops inherits the selected ISA with
//! no per-call detection. `MAPRAT_KERNELS=scalar|portable|native` forces a
//! tier (benchmarks compare tiers through [`scalar`]/[`select`], tests pin
//! the fallback), and [`scalar`] keeps the naive word-at-a-time reference
//! implementations alive as the correctness oracle.

use std::sync::OnceLock;

/// The dispatch table: one function pointer per hot bitmap operation.
///
/// All binary kernels require `a.len() == b.len()` (callers check the
/// universe once, outside the loop).
#[derive(Debug, Clone, Copy)]
pub struct Kernels {
    /// Human-readable tier label (`"scalar"`, `"portable"`, `"avx2"`).
    pub name: &'static str,
    /// `popcount(a)`.
    pub count: fn(&[u64]) -> usize,
    /// `popcount(a | b)`.
    pub union_count: fn(&[u64], &[u64]) -> usize,
    /// `popcount(a & b)`.
    pub intersection_count: fn(&[u64], &[u64]) -> usize,
    /// `popcount(b & !a)` — the bits `b` would add to `a`.
    pub missing_count: fn(&[u64], &[u64]) -> usize,
    /// `dst |= src` (the OR-fill).
    pub union_with: fn(&mut [u64], &[u64]),
    /// `dst &= src`.
    pub intersect_with: fn(&mut [u64], &[u64]),
    /// `dst &= !src`.
    pub subtract: fn(&mut [u64], &[u64]),
    /// `dst = src`.
    pub copy: fn(&mut [u64], &[u64]),
    /// `a & !b == 0` for every word — subset test.
    pub is_subset: fn(&[u64], &[u64]) -> bool,
}

// ---------------------------------------------------------------------------
// Generic bodies: unrolled, accumulator-split, autovectorizable.
//
// The popcount reductions process 8 words per iteration into 4 independent
// accumulators — enough ILP for the vectorizer to keep two 256-bit lanes
// busy and for the scalar POPCNT pipe to avoid its false output dependency.
// The read-modify-write kernels are plain word loops; the win there is
// purely the ISA width the instantiation compiles for.
// ---------------------------------------------------------------------------

macro_rules! popcount_reduce_body {
    ($name:ident, |$x:ident, $y:ident| $word:expr) => {
        #[inline(always)]
        fn $name(a: &[u64], b: &[u64]) -> usize {
            debug_assert_eq!(a.len(), b.len());
            let mut acc = [0u64; 4];
            let mut ca = a.chunks_exact(8);
            let mut cb = b.chunks_exact(8);
            for (xs, ys) in (&mut ca).zip(&mut cb) {
                for k in 0..4 {
                    let ($x, $y) = (xs[k], ys[k]);
                    let lo: u64 = $word;
                    let ($x, $y) = (xs[k + 4], ys[k + 4]);
                    let hi: u64 = $word;
                    acc[k] += lo.count_ones() as u64 + hi.count_ones() as u64;
                }
            }
            let mut tail = 0u64;
            for (&$x, &$y) in ca.remainder().iter().zip(cb.remainder()) {
                let w: u64 = $word;
                tail += w.count_ones() as u64;
            }
            (acc[0] + acc[1] + acc[2] + acc[3] + tail) as usize
        }
    };
}

popcount_reduce_body!(union_count_body, |x, y| x | y);
popcount_reduce_body!(intersection_count_body, |x, y| x & y);
popcount_reduce_body!(missing_count_body, |x, y| y & !x);

#[inline(always)]
fn count_body(a: &[u64]) -> usize {
    let mut acc = [0u64; 4];
    let mut ca = a.chunks_exact(8);
    for xs in &mut ca {
        for k in 0..4 {
            acc[k] += xs[k].count_ones() as u64 + xs[k + 4].count_ones() as u64;
        }
    }
    let tail: u64 = ca.remainder().iter().map(|x| x.count_ones() as u64).sum();
    (acc[0] + acc[1] + acc[2] + acc[3] + tail) as usize
}

macro_rules! rmw_body {
    ($name:ident, |$d:ident, $s:ident| $expr:expr) => {
        #[inline(always)]
        fn $name(dst: &mut [u64], src: &[u64]) {
            debug_assert_eq!(dst.len(), src.len());
            for ($d, &$s) in dst.iter_mut().zip(src) {
                *$d = $expr;
            }
        }
    };
}

rmw_body!(union_with_body, |d, s| *d | s);
rmw_body!(intersect_with_body, |d, s| *d & s);
rmw_body!(subtract_body, |d, s| *d & !s);

#[inline(always)]
fn copy_body(dst: &mut [u64], src: &[u64]) {
    dst.copy_from_slice(src);
}

#[inline(always)]
fn is_subset_body(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    // OR-reduce the violations instead of early-exiting per word: the
    // branch-free form vectorizes, and covers that *are* subsets (the
    // common probe outcome) must scan everything anyway.
    let mut acc = [0u64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (xs, ys) in (&mut ca).zip(&mut cb) {
        for k in 0..4 {
            acc[k] |= xs[k] & !ys[k];
        }
    }
    let mut tail = 0u64;
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        tail |= x & !y;
    }
    acc[0] | acc[1] | acc[2] | acc[3] | tail == 0
}

// ---------------------------------------------------------------------------
// Scalar reference tier: the naive word-at-a-time loops the pre-kernel
// code used. Kept as the dispatchable oracle the prop tests and the
// criterion microbench compare against.
// ---------------------------------------------------------------------------

fn count_scalar(a: &[u64]) -> usize {
    a.iter().map(|b| b.count_ones() as usize).sum()
}

fn union_count_scalar(a: &[u64], b: &[u64]) -> usize {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x | y).count_ones() as usize)
        .sum()
}

fn intersection_count_scalar(a: &[u64], b: &[u64]) -> usize {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x & y).count_ones() as usize)
        .sum()
}

fn missing_count_scalar(a: &[u64], b: &[u64]) -> usize {
    a.iter()
        .zip(b)
        .map(|(x, y)| (y & !x).count_ones() as usize)
        .sum()
}

fn union_with_scalar(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

fn intersect_with_scalar(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d &= s;
    }
}

fn subtract_scalar(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d &= !s;
    }
}

fn copy_scalar(dst: &mut [u64], src: &[u64]) {
    dst.copy_from_slice(src);
}

fn is_subset_scalar(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x & !y == 0)
}

const SCALAR: Kernels = Kernels {
    name: "scalar",
    count: count_scalar,
    union_count: union_count_scalar,
    intersection_count: intersection_count_scalar,
    missing_count: missing_count_scalar,
    union_with: union_with_scalar,
    intersect_with: intersect_with_scalar,
    subtract: subtract_scalar,
    copy: copy_scalar,
    is_subset: is_subset_scalar,
};

// ---------------------------------------------------------------------------
// Portable tier: the unrolled bodies compiled for the baseline target.
// ---------------------------------------------------------------------------

const PORTABLE: Kernels = Kernels {
    name: "portable",
    count: count_body,
    union_count: union_count_body,
    intersection_count: intersection_count_body,
    missing_count: missing_count_body,
    union_with: union_with_body,
    intersect_with: intersect_with_body,
    subtract: subtract_body,
    copy: copy_body,
    is_subset: is_subset_body,
};

// ---------------------------------------------------------------------------
// x86_64 AVX2 + POPCNT tier: the same bodies, recompiled for the wide ISA.
// Each wrapper is only ever installed in the table after runtime feature
// detection, so the `unsafe` call is sound by construction.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::*;

    macro_rules! instantiate {
        ($safe:ident, $inner:ident, ($($arg:ident: $ty:ty),*) -> $ret:ty) => {
            #[target_feature(enable = "avx2,popcnt")]
            unsafe fn $inner($($arg: $ty),*) -> $ret {
                super::$inner($($arg),*)
            }
            pub(super) fn $safe($($arg: $ty),*) -> $ret {
                // SAFETY: this wrapper is only reachable through the AVX2
                // table, which `select` installs solely when
                // `is_x86_feature_detected!("avx2")` && `("popcnt")` hold.
                unsafe { $inner($($arg),*) }
            }
        };
    }

    instantiate!(count, count_body, (a: &[u64]) -> usize);
    instantiate!(union_count, union_count_body, (a: &[u64], b: &[u64]) -> usize);
    instantiate!(intersection_count, intersection_count_body, (a: &[u64], b: &[u64]) -> usize);
    instantiate!(missing_count, missing_count_body, (a: &[u64], b: &[u64]) -> usize);
    instantiate!(union_with, union_with_body, (dst: &mut [u64], src: &[u64]) -> ());
    instantiate!(intersect_with, intersect_with_body, (dst: &mut [u64], src: &[u64]) -> ());
    instantiate!(subtract, subtract_body, (dst: &mut [u64], src: &[u64]) -> ());
    instantiate!(copy, copy_body, (dst: &mut [u64], src: &[u64]) -> ());
    instantiate!(is_subset, is_subset_body, (a: &[u64], b: &[u64]) -> bool);

    pub(super) const TABLE: Kernels = Kernels {
        name: "avx2",
        count,
        union_count,
        intersection_count,
        missing_count,
        union_with,
        intersect_with,
        subtract,
        copy,
        is_subset,
    };
}

/// The naive word-at-a-time reference tier (the pre-kernel code); the
/// prop tests and the `bench_kernels` microbench compare against it.
pub fn scalar() -> &'static Kernels {
    &SCALAR
}

/// Picks the widest tier the CPU supports (ignoring the env override) —
/// exposed so benchmarks can compare tiers explicitly.
pub fn select() -> &'static Kernels {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("popcnt")
        {
            return &avx2::TABLE;
        }
    }
    &PORTABLE
}

/// The process-wide kernel table, selected once on first use.
///
/// `MAPRAT_KERNELS=scalar|portable|native` (default `native`) pins a tier
/// — the determinism suites run the matrix to pin that tier choice is
/// invisible in results.
pub fn active() -> &'static Kernels {
    static ACTIVE: OnceLock<&'static Kernels> = OnceLock::new();
    ACTIVE.get_or_init(|| match std::env::var("MAPRAT_KERNELS").as_deref() {
        Ok("scalar") => &SCALAR,
        Ok("portable") => &PORTABLE,
        _ => select(),
    })
}

// ---------------------------------------------------------------------------
// Bit-granular helpers over the dispatched kernels: masked range popcount
// and bit-aligned window extraction (the fused batch-explain derive).
// ---------------------------------------------------------------------------

/// Popcount of the bit range `[start, start + len)` of `blocks`.
///
/// Whole words in the middle go through the dispatched [`Kernels::count`];
/// the ragged edges are masked scalar words.
pub fn count_range(blocks: &[u64], start: usize, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let end = start + len;
    let (first_word, first_bit) = (start / 64, start % 64);
    let (last_word, last_bit) = (end / 64, end % 64);
    if first_word == last_word {
        let mask = (u64::MAX << first_bit) & (u64::MAX >> (64 - last_bit));
        return (blocks[first_word] & mask).count_ones() as usize;
    }
    let mut total = (blocks[first_word] & (u64::MAX << first_bit)).count_ones() as usize;
    total += (active().count)(&blocks[first_word + 1..last_word]);
    if last_bit != 0 {
        total += (blocks[last_word] & (u64::MAX >> (64 - last_bit))).count_ones() as usize;
    }
    total
}

/// ORs the bit range `[src_start, src_start + len)` of `src` into `dst`
/// starting at bit `dst_start` — the window extraction of the fused
/// batch-explain derive (`dst` positions outside the target range are
/// untouched).
pub fn or_bit_window(src: &[u64], src_start: usize, len: usize, dst: &mut [u64], dst_start: usize) {
    if len == 0 {
        return;
    }
    let shift = (src_start % 64) as i32 - (dst_start % 64) as i32;
    if shift == 0 {
        // Word-aligned relative offset: masked first/last words, kernel
        // OR for the aligned middle.
        let (sw, dw) = (src_start / 64, dst_start / 64);
        let first_bit = dst_start % 64;
        let end = dst_start % 64 + len;
        let n_words = end.div_ceil(64);
        if n_words == 1 {
            let mask = (u64::MAX << first_bit) & (u64::MAX >> ((64 - end % 64) % 64));
            dst[dw] |= src[sw] & mask;
            return;
        }
        dst[dw] |= src[sw] & (u64::MAX << first_bit);
        let last = n_words - 1;
        let last_bits = end - last * 64;
        if last > 1 {
            (active().union_with)(&mut dst[dw + 1..dw + last], &src[sw + 1..sw + last]);
        }
        let mask = u64::MAX >> ((64 - last_bits % 64) % 64);
        dst[dw + last] |= src[sw + last] & mask;
        return;
    }
    // Unaligned: gather each destination word from (up to) two source
    // words. Simple per-bit-run loop over destination words.
    let mut copied = 0usize;
    while copied < len {
        let s = src_start + copied;
        let d = dst_start + copied;
        // Bits available in the current source and destination words.
        let take = (64 - s % 64).min(64 - d % 64).min(len - copied);
        let bits = (src[s / 64] >> (s % 64)) & low_mask(take);
        dst[d / 64] |= bits << (d % 64);
        copied += take;
    }
}

/// A mask of the low `n` bits (`n <= 64`).
#[inline(always)]
pub fn low_mask(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiers() -> Vec<&'static Kernels> {
        let mut t = vec![scalar(), &PORTABLE];
        let native = select();
        if !std::ptr::eq(native, &PORTABLE) {
            t.push(native);
        }
        t
    }

    fn words(seed: u64, n: usize) -> Vec<u64> {
        // SplitMix64 stream — deterministic irregular bit patterns.
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            })
            .collect()
    }

    #[test]
    fn every_tier_matches_the_scalar_reference() {
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 63, 64, 100, 257] {
            let a = words(1, n);
            let b = words(2, n);
            for k in tiers() {
                assert_eq!((k.count)(&a), count_scalar(&a), "{} count n={n}", k.name);
                assert_eq!(
                    (k.union_count)(&a, &b),
                    union_count_scalar(&a, &b),
                    "{} union_count n={n}",
                    k.name
                );
                assert_eq!(
                    (k.intersection_count)(&a, &b),
                    intersection_count_scalar(&a, &b),
                    "{} intersection_count n={n}",
                    k.name
                );
                assert_eq!(
                    (k.missing_count)(&a, &b),
                    missing_count_scalar(&a, &b),
                    "{} missing_count n={n}",
                    k.name
                );
                assert_eq!(
                    (k.is_subset)(&a, &b),
                    is_subset_scalar(&a, &b),
                    "{} is_subset n={n}",
                    k.name
                );
                let mut d1 = a.clone();
                let mut d2 = a.clone();
                (k.union_with)(&mut d1, &b);
                union_with_scalar(&mut d2, &b);
                assert_eq!(d1, d2, "{} union_with n={n}", k.name);
                let mut d1 = a.clone();
                let mut d2 = a.clone();
                (k.intersect_with)(&mut d1, &b);
                intersect_with_scalar(&mut d2, &b);
                assert_eq!(d1, d2, "{} intersect_with n={n}", k.name);
                let mut d1 = a.clone();
                let mut d2 = a.clone();
                (k.subtract)(&mut d1, &b);
                subtract_scalar(&mut d2, &b);
                assert_eq!(d1, d2, "{} subtract n={n}", k.name);
                let mut d1 = vec![0; n];
                (k.copy)(&mut d1, &b);
                assert_eq!(d1, b, "{} copy n={n}", k.name);
            }
        }
    }

    #[test]
    fn subset_detects_both_ways() {
        let a = words(3, 20);
        let mut b = a.clone();
        for k in tiers() {
            assert!((k.is_subset)(&a, &b), "{}", k.name);
        }
        b[13] &= !(a[13] | 1);
        b[13] ^= 0; // keep deterministic shape
        let missing = a[13] & !b[13];
        if missing != 0 {
            for k in tiers() {
                assert!(!(k.is_subset)(&a, &b), "{}", k.name);
            }
        }
    }

    #[test]
    fn count_range_matches_bitwise_scan() {
        let blocks = words(7, 9);
        let total_bits = blocks.len() * 64;
        let reference = |start: usize, len: usize| -> usize {
            (start..start + len)
                .filter(|&i| blocks[i / 64] & (1 << (i % 64)) != 0)
                .count()
        };
        for &(start, len) in &[
            (0usize, 0usize),
            (0, 1),
            (0, 64),
            (0, 65),
            (3, 5),
            (3, 61),
            (3, 64),
            (63, 2),
            (64, 64),
            (70, 300),
            (1, total_bits - 2),
            (0, total_bits),
        ] {
            assert_eq!(
                count_range(&blocks, start, len),
                reference(start, len),
                "start={start} len={len}"
            );
        }
    }

    #[test]
    fn or_bit_window_extracts_any_alignment() {
        let src = words(11, 8);
        let total = src.len() * 64;
        let get = |bits: &[u64], i: usize| bits[i / 64] & (1 << (i % 64)) != 0;
        for &(src_start, len, dst_start) in &[
            (0usize, 64usize, 0usize),
            (0, 100, 0),
            (5, 100, 5), // aligned relative shift
            (5, 100, 0), // shift right
            (0, 100, 5), // shift left
            (67, 250, 3),
            (63, 2, 0),
            (1, 511, 1),
            (128, 64, 192),
            (13, 1, 40),
        ] {
            assert!(src_start + len <= total);
            let mut dst = vec![0u64; (dst_start + len).div_ceil(64)];
            or_bit_window(&src, src_start, len, &mut dst, dst_start);
            for i in 0..len {
                assert_eq!(
                    get(&dst, dst_start + i),
                    get(&src, src_start + i),
                    "bit {i} of window src_start={src_start} len={len} dst_start={dst_start}"
                );
            }
            // No stray bits outside the window.
            let set: usize = dst.iter().map(|w| w.count_ones() as usize).sum();
            assert_eq!(set, count_range(&src, src_start, len));
        }
    }

    #[test]
    fn or_bit_window_preserves_existing_dst_bits() {
        let src = words(13, 4);
        let mut dst = vec![u64::MAX; 4];
        or_bit_window(&src, 10, 150, &mut dst, 30);
        assert!(dst.iter().all(|&w| w == u64::MAX), "OR never clears");
    }

    #[test]
    fn env_override_pins_a_tier() {
        // `active` latches on first use; this only checks the selection
        // logic is exercised and returns one of the known tables.
        let k = active();
        assert!(["scalar", "portable", "avx2"].contains(&k.name));
    }
}
