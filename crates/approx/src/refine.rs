//! The refinement handle: dedup and accounting for background exact
//! re-solves of approximately-served requests.
//!
//! When the engine serves a sampled interpretation it schedules the exact
//! solve on the shared worker pool; the [`RefineLedger`] makes that
//! idempotent — at most one refinement per request fingerprint is in
//! flight, re-serves of the same approx entry don't stack duplicate jobs,
//! and operators can watch the `refined` counter climb in `/api/v1/stats`.
//!
//! ```
//! use maprat_approx::RefineLedger;
//!
//! let ledger = RefineLedger::new();
//! assert!(ledger.begin(42), "first claim wins");
//! assert!(!ledger.begin(42), "duplicate is rejected while in flight");
//! ledger.finish(42); // exact result landed
//! assert_eq!(ledger.refined(), 1);
//! assert_eq!(ledger.in_flight(), 0);
//! assert!(ledger.begin(42), "a landed key may be refined again");
//! ledger.abandon(42); // e.g. the dataset was swapped mid-solve
//! assert_eq!(ledger.refined(), 1);
//! ```

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Tracks in-flight background refinements by request fingerprint.
#[derive(Debug, Default)]
pub struct RefineLedger {
    inflight: Mutex<HashSet<u64>>,
    refined: AtomicU64,
}

impl RefineLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Claims a refinement slot for `key`. Returns `false` when a
    /// refinement for the same key is already in flight (the caller must
    /// not schedule a duplicate job).
    pub fn begin(&self, key: u64) -> bool {
        self.inflight.lock().expect("ledger lock").insert(key)
    }

    /// Records that the refinement for `key` landed (the cache entry was
    /// upgraded to exact) and releases the slot.
    pub fn finish(&self, key: u64) {
        self.inflight.lock().expect("ledger lock").remove(&key);
        self.refined.fetch_add(1, Ordering::Relaxed);
    }

    /// Releases the slot without counting a landed refinement — the job
    /// was abandoned (dataset swapped underneath it, solve failed).
    pub fn abandon(&self, key: u64) {
        self.inflight.lock().expect("ledger lock").remove(&key);
    }

    /// Number of refinements that landed over the ledger's lifetime.
    pub fn refined(&self) -> u64 {
        self.refined.load(Ordering::Relaxed)
    }

    /// Number of refinements currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.lock().expect("ledger lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn concurrent_begin_admits_exactly_one() {
        let ledger = Arc::new(RefineLedger::new());
        let admitted: usize = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let ledger = Arc::clone(&ledger);
                    scope.spawn(move || usize::from(ledger.begin(7)))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(admitted, 1);
        assert_eq!(ledger.in_flight(), 1);
        ledger.finish(7);
        assert_eq!(ledger.refined(), 1);
    }

    #[test]
    fn independent_keys_do_not_interfere() {
        let ledger = RefineLedger::new();
        assert!(ledger.begin(1));
        assert!(ledger.begin(2));
        assert_eq!(ledger.in_flight(), 2);
        ledger.abandon(1);
        ledger.finish(2);
        assert_eq!(ledger.in_flight(), 0);
        assert_eq!(ledger.refined(), 1);
    }
}
