//! The time slider (§3.1): "Moving the time slider over the range of
//! values allows the user to observe reviewer groups that provide best
//! interpretations for the movie and how they change over time."
//!
//! A [`TimeSlider`] splits the dataset's rating history into month windows
//! and re-mines the query inside each, producing a [`TimelinePoint`]
//! series: window, volume, overall mean and the top SM groups.
//!
//! Windows are independent engine calls against the already-thread-safe
//! sharded cache, so [`TimeSlider::sweep`] mines them on the shared
//! worker pool, up to [`maprat_core::parallel::num_threads`] workers
//! (sized by `MAPRAT_THREADS`, read once at first use; no per-sweep
//! OS-thread spawn). Points come back in slider order and are
//! bit-identical for any thread count.

use crate::engine::MapRatEngine;
use maprat_core::query::ItemQuery;
use maprat_core::{parallel, MineError, SearchSettings};
use maprat_data::{Dataset, MonthKey, TimeRange};

/// One position of the slider.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelinePoint {
    /// First month of the window (inclusive).
    pub from: MonthKey,
    /// Last month of the window (inclusive).
    pub to: MonthKey,
    /// Ratings in the window.
    pub num_ratings: usize,
    /// Overall mean in the window.
    pub overall_mean: Option<f64>,
    /// The SM groups of the window: `(label, mean, support)`.
    pub top_groups: Vec<(String, f64, usize)>,
    /// Why the window produced no groups, when it did not.
    pub skipped: Option<String>,
}

/// A slider over a query.
pub struct TimeSlider {
    months: Vec<MonthKey>,
    /// Window length in months.
    pub window: usize,
    /// Step between consecutive windows in months.
    pub step: usize,
}

impl TimeSlider {
    /// Builds a slider spanning the whole dataset history.
    pub fn over_dataset(dataset: &Dataset, window: usize, step: usize) -> Option<TimeSlider> {
        let (lo, hi) = dataset.time_span()?;
        let months: Vec<MonthKey> = lo.month_key().iter_through(hi.month_key()).collect();
        (window >= 1 && step >= 1).then_some(TimeSlider {
            months,
            window,
            step,
        })
    }

    /// The window start months.
    pub fn positions(&self) -> Vec<MonthKey> {
        if self.months.is_empty() {
            return Vec::new();
        }
        self.months.iter().copied().step_by(self.step).collect()
    }

    /// The inclusive month range of the window starting at `from`.
    pub fn window_at(&self, from: MonthKey) -> (MonthKey, MonthKey) {
        let mut to = from;
        for _ in 1..self.window {
            to = to.succ();
        }
        (from, to)
    }

    /// Mines every window through the engine's cache, in parallel on the
    /// default worker count, and returns the evolution series in slider
    /// order.
    pub fn sweep(
        &self,
        engine: &MapRatEngine,
        query: &ItemQuery,
        settings: &SearchSettings,
    ) -> Vec<TimelinePoint> {
        self.sweep_with_threads(engine, query, settings, parallel::num_threads())
    }

    /// Like [`sweep`](TimeSlider::sweep) with an explicit worker-thread
    /// cap. The returned points are identical for every `threads` value.
    pub fn sweep_with_threads(
        &self,
        engine: &MapRatEngine,
        query: &ItemQuery,
        settings: &SearchSettings,
        threads: usize,
    ) -> Vec<TimelinePoint> {
        let positions = self.positions();
        parallel::parallel_map(positions.len(), threads, |i| {
            let (from, to) = self.window_at(positions[i]);
            let windowed = query.clone().within(TimeRange::months(from..=to));
            let result = engine.explain_query(&windowed, settings);
            match &*result {
                Ok(r) => TimelinePoint {
                    from,
                    to,
                    num_ratings: r.explanation.num_ratings,
                    overall_mean: r.explanation.total.mean(),
                    top_groups: r
                        .explanation
                        .similarity
                        .groups
                        .iter()
                        .map(|g| (g.label.clone(), g.stats.mean().unwrap_or(0.0), g.support))
                        .collect(),
                    skipped: None,
                },
                Err(MineError::NoRatings) | Err(MineError::NoCandidates) => TimelinePoint {
                    from,
                    to,
                    num_ratings: 0,
                    overall_mean: None,
                    top_groups: Vec::new(),
                    skipped: Some("too few ratings in window".into()),
                },
                Err(e) => TimelinePoint {
                    from,
                    to,
                    num_ratings: 0,
                    overall_mean: None,
                    top_groups: Vec::new(),
                    skipped: Some(e.to_string()),
                },
            }
        })
    }
}

/// Renders a sweep as a compact text table (CLI examples / experiments).
pub fn render_sweep(points: &[TimelinePoint]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>8} {:>6}  top similarity groups",
        "window", "ratings", "mean"
    );
    for p in points {
        let groups = if let Some(reason) = &p.skipped {
            format!("— ({reason})")
        } else {
            p.top_groups
                .iter()
                .map(|(label, mean, _)| format!("{label} ({mean:.2})"))
                .collect::<Vec<_>>()
                .join("; ")
        };
        let _ = writeln!(
            out,
            "{:<18} {:>8} {:>6}  {}",
            format!("{}..{}", p.from, p.to),
            p.num_ratings,
            p.overall_mean
                .map(|m| format!("{m:.2}"))
                .unwrap_or_else(|| "—".into()),
            groups
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use maprat_data::synth::{generate, SynthConfig};

    fn settings() -> SearchSettings {
        SearchSettings::default()
            .with_min_coverage(0.1)
            .with_require_geo(false)
    }

    #[test]
    fn slider_covers_dataset_span() {
        let d = generate(&SynthConfig::tiny(131)).unwrap();
        let slider = TimeSlider::over_dataset(&d, 6, 6).unwrap();
        let positions = slider.positions();
        assert!(!positions.is_empty());
        let (lo, hi) = d.time_span().unwrap();
        assert_eq!(positions[0], lo.month_key());
        assert!(*positions.last().unwrap() <= hi.month_key());
    }

    #[test]
    fn windows_have_requested_length() {
        let d = generate(&SynthConfig::tiny(132)).unwrap();
        let slider = TimeSlider::over_dataset(&d, 6, 3).unwrap();
        let (from, to) = slider.window_at(MonthKey::new(2001, 2));
        assert_eq!(from.months_until(to), 5);
    }

    #[test]
    fn sweep_produces_point_per_position() {
        let engine = MapRatEngine::from_dataset(generate(&SynthConfig::small(133)).unwrap());
        let slider = TimeSlider::over_dataset(&engine.dataset(), 9, 9).unwrap();
        let points = slider.sweep(
            &engine,
            &maprat_core::query::ItemQuery::title("Toy Story"),
            &settings(),
        );
        assert_eq!(points.len(), slider.positions().len());
        // Planted Toy Story spans the full history: most windows non-empty.
        let non_empty = points.iter().filter(|p| p.num_ratings > 0).count();
        assert!(
            non_empty * 2 >= points.len(),
            "{non_empty}/{}",
            points.len()
        );
        for p in &points {
            if p.num_ratings > 0 && p.skipped.is_none() {
                assert!(!p.top_groups.is_empty());
            }
        }
    }

    #[test]
    fn sweep_windows_differ_in_volume() {
        let engine = MapRatEngine::from_dataset(generate(&SynthConfig::small(134)).unwrap());
        let slider = TimeSlider::over_dataset(&engine.dataset(), 6, 6).unwrap();
        let points = slider.sweep(
            &engine,
            &maprat_core::query::ItemQuery::title("Toy Story"),
            &settings(),
        );
        let volumes: Vec<usize> = points.iter().map(|p| p.num_ratings).collect();
        let total: usize = volumes.iter().sum();
        let full = engine.explain_query(
            &maprat_core::query::ItemQuery::title("Toy Story"),
            &settings(),
        );
        if let Ok(r) = &*full {
            // Non-overlapping windows partition the history.
            assert_eq!(total, r.explanation.num_ratings);
        }
    }

    #[test]
    fn parallel_sweep_is_deterministic_in_thread_count() {
        let engine = MapRatEngine::from_dataset(generate(&SynthConfig::tiny(136)).unwrap());
        let slider = TimeSlider::over_dataset(&engine.dataset(), 6, 6).unwrap();
        let query = maprat_core::query::ItemQuery::title("Toy Story");
        let single = slider.sweep_with_threads(&engine, &query, &settings(), 1);
        for threads in [2, 3, 8] {
            // A fresh engine per run: identical results must not rely on
            // the earlier sweep's warm cache.
            let cold = MapRatEngine::from_dataset(generate(&SynthConfig::tiny(136)).unwrap());
            let multi = slider.sweep_with_threads(&cold, &query, &settings(), threads);
            assert_eq!(single, multi, "sweep diverged at {threads} threads");
        }
    }

    #[test]
    fn render_sweep_is_tabular() {
        let engine = MapRatEngine::from_dataset(generate(&SynthConfig::tiny(135)).unwrap());
        let slider = TimeSlider::over_dataset(&engine.dataset(), 12, 12).unwrap();
        let points = slider.sweep(
            &engine,
            &maprat_core::query::ItemQuery::title("Toy Story"),
            &settings(),
        );
        let text = render_sweep(&points);
        assert!(text.contains("window"));
        assert!(text.lines().count() >= points.len());
    }
}
