//! Criterion bench: the PR 10 kernel tiers — the naive word-at-a-time
//! scalar loops (the pre-kernel code, kept as the dispatchable oracle)
//! vs the selected tier (`kernels::select()`: the unrolled autovectorized
//! portable build, or its AVX2+POPCNT instantiation when the CPU has it).
//!
//! The acceptance pair is `union_count` (the mining loop's hot reduction)
//! and `union_with` (the builder's OR-fill): the selected tier must beat
//! scalar by ≥2× at cover-sized inputs. The other popcount reductions
//! ride along for the PERF.md table.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use maprat_cube::kernels::{self, Kernels};
use std::hint::black_box;

/// Deterministic irregular bit patterns (SplitMix64 stream).
fn words(seed: u64, n: usize) -> Vec<u64> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        })
        .collect()
}

fn tiers() -> Vec<&'static Kernels> {
    vec![kernels::scalar(), kernels::select()]
}

fn bench_kernels(c: &mut Criterion) {
    // 1 Kwords ≈ a 65k-rating cover; 16 Kwords ≈ a 1M-rating cover.
    for &n in &[1024usize, 16 * 1024] {
        let a = words(1, n);
        let b = words(2, n);
        let bytes = (n * 8) as u64;

        let mut group = c.benchmark_group(format!("kernel_union_count/{n}w"));
        group.throughput(Throughput::Bytes(2 * bytes));
        for k in tiers() {
            group.bench_with_input(k.name, &k, |bench, k| {
                bench.iter(|| black_box((k.union_count)(&a, &b)))
            });
        }
        group.finish();

        let mut group = c.benchmark_group(format!("kernel_union_with/{n}w"));
        group.throughput(Throughput::Bytes(2 * bytes));
        for k in tiers() {
            group.bench_with_input(k.name, &k, |bench, k| {
                let mut dst = a.clone();
                bench.iter(|| {
                    (k.union_with)(&mut dst, &b);
                    black_box(dst[0])
                })
            });
        }
        group.finish();

        let mut group = c.benchmark_group(format!("kernel_intersection_count/{n}w"));
        group.throughput(Throughput::Bytes(2 * bytes));
        for k in tiers() {
            group.bench_with_input(k.name, &k, |bench, k| {
                bench.iter(|| black_box((k.intersection_count)(&a, &b)))
            });
        }
        group.finish();

        let mut group = c.benchmark_group(format!("kernel_count/{n}w"));
        group.throughput(Throughput::Bytes(bytes));
        for k in tiers() {
            group.bench_with_input(k.name, &k, |bench, k| {
                bench.iter(|| black_box((k.count)(&a)))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
