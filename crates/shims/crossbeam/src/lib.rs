//! Offline stand-in for the subset of the `crossbeam` API that MapRat
//! uses: bounded MPMC channels with disconnect-on-drop semantics,
//! implemented over `Mutex` + `Condvar`.

#![warn(missing_docs)]

pub mod channel;
