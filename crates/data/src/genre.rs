//! MovieLens genres and compact genre sets.

use std::fmt;

/// The eighteen genres used by MovieLens-1M `movies.dat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Genre {
    /// Action.
    Action = 0,
    /// Adventure.
    Adventure = 1,
    /// Animation.
    Animation = 2,
    /// Children's.
    Childrens = 3,
    /// Comedy.
    Comedy = 4,
    /// Crime.
    Crime = 5,
    /// Documentary.
    Documentary = 6,
    /// Drama.
    Drama = 7,
    /// Fantasy.
    Fantasy = 8,
    /// Film-Noir.
    FilmNoir = 9,
    /// Horror.
    Horror = 10,
    /// Musical.
    Musical = 11,
    /// Mystery.
    Mystery = 12,
    /// Romance.
    Romance = 13,
    /// Sci-Fi.
    SciFi = 14,
    /// Thriller.
    Thriller = 15,
    /// War.
    War = 16,
    /// Western.
    Western = 17,
}

impl Genre {
    /// All genres in dense order.
    pub const ALL: [Genre; 18] = [
        Genre::Action,
        Genre::Adventure,
        Genre::Animation,
        Genre::Childrens,
        Genre::Comedy,
        Genre::Crime,
        Genre::Documentary,
        Genre::Drama,
        Genre::Fantasy,
        Genre::FilmNoir,
        Genre::Horror,
        Genre::Musical,
        Genre::Mystery,
        Genre::Romance,
        Genre::SciFi,
        Genre::Thriller,
        Genre::War,
        Genre::Western,
    ];

    /// The MovieLens spelling (`Children's`, `Film-Noir`, `Sci-Fi`, …).
    pub fn label(self) -> &'static str {
        match self {
            Genre::Action => "Action",
            Genre::Adventure => "Adventure",
            Genre::Animation => "Animation",
            Genre::Childrens => "Children's",
            Genre::Comedy => "Comedy",
            Genre::Crime => "Crime",
            Genre::Documentary => "Documentary",
            Genre::Drama => "Drama",
            Genre::Fantasy => "Fantasy",
            Genre::FilmNoir => "Film-Noir",
            Genre::Horror => "Horror",
            Genre::Musical => "Musical",
            Genre::Mystery => "Mystery",
            Genre::Romance => "Romance",
            Genre::SciFi => "Sci-Fi",
            Genre::Thriller => "Thriller",
            Genre::War => "War",
            Genre::Western => "Western",
        }
    }

    /// Parses the MovieLens spelling (case-insensitive).
    pub fn from_label(label: &str) -> Option<Self> {
        Genre::ALL
            .iter()
            .copied()
            .find(|g| g.label().eq_ignore_ascii_case(label))
    }

    /// Builds from the dense index.
    pub fn from_index(idx: usize) -> Option<Self> {
        Genre::ALL.get(idx).copied()
    }
}

impl fmt::Display for Genre {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A set of genres packed into a `u32` bitmask.
///
/// Items routinely carry 1–3 genres; a bitmask keeps the per-item footprint
/// at four bytes and makes genre predicates a single AND.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct GenreSet(u32);

impl GenreSet {
    /// The empty set.
    pub const EMPTY: GenreSet = GenreSet(0);

    /// Builds a set from genres (alias of the `FromIterator` impl with an
    /// explicit name for call sites that prefer it).
    pub fn of<I: IntoIterator<Item = Genre>>(genres: I) -> Self {
        let mut set = GenreSet::EMPTY;
        for g in genres {
            set.insert(g);
        }
        set
    }

    /// Adds a genre.
    #[inline]
    pub fn insert(&mut self, genre: Genre) {
        self.0 |= 1 << (genre as u32);
    }

    /// Whether the set contains `genre`.
    #[inline]
    pub fn contains(self, genre: Genre) -> bool {
        self.0 & (1 << (genre as u32)) != 0
    }

    /// Whether the set shares any genre with `other`.
    #[inline]
    pub fn intersects(self, other: GenreSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Number of genres in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the genres in dense order.
    pub fn iter(self) -> impl Iterator<Item = Genre> {
        Genre::ALL.into_iter().filter(move |g| self.contains(*g))
    }
}

impl fmt::Display for GenreSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for g in self.iter() {
            if !first {
                f.write_str("|")?;
            }
            f.write_str(g.label())?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<Genre> for GenreSet {
    fn from_iter<I: IntoIterator<Item = Genre>>(iter: I) -> Self {
        GenreSet::of(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for g in Genre::ALL {
            assert_eq!(Genre::from_label(g.label()), Some(g));
        }
        assert_eq!(Genre::from_label("sci-fi"), Some(Genre::SciFi));
        assert_eq!(Genre::from_label("Jazz"), None);
    }

    #[test]
    fn set_insert_contains() {
        let mut s = GenreSet::EMPTY;
        assert!(s.is_empty());
        s.insert(Genre::Animation);
        s.insert(Genre::Childrens);
        assert!(s.contains(Genre::Animation));
        assert!(!s.contains(Genre::Horror));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn set_iteration_ordered() {
        let s: GenreSet = [Genre::Comedy, Genre::Animation].into_iter().collect();
        let genres: Vec<_> = s.iter().collect();
        assert_eq!(genres, vec![Genre::Animation, Genre::Comedy]);
    }

    #[test]
    fn set_display_pipes() {
        let s: GenreSet = [Genre::Animation, Genre::Childrens, Genre::Comedy]
            .into_iter()
            .collect();
        assert_eq!(s.to_string(), "Animation|Children's|Comedy");
    }

    #[test]
    fn intersects_detects_overlap() {
        let a: GenreSet = [Genre::Action].into_iter().collect();
        let b: GenreSet = [Genre::Action, Genre::War].into_iter().collect();
        let c: GenreSet = [Genre::Romance].into_iter().collect();
        assert!(a.intersects(b));
        assert!(!a.intersects(c));
    }

    #[test]
    fn duplicate_insert_idempotent() {
        let mut s = GenreSet::EMPTY;
        s.insert(Genre::Drama);
        s.insert(Genre::Drama);
        assert_eq!(s.len(), 1);
    }
}
