//! Deterministic, seed-driven fault injection for the chaos harness.
//!
//! Production binaries never fail on purpose — every helper in this crate
//! is a no-op unless the `MAPRAT_FAULTS` environment variable carries a
//! fault schedule. The schedule is parsed **once** at first use; with it
//! armed, each *injection site* (a string constant at the call site)
//! decides per hit whether to fire, and the decision is a pure function of
//! `(seed, site, hit index)` — re-running a process with the same schedule
//! replays the exact same fault sequence, which is what lets the
//! crash-recovery tests kill a subprocess "at a fault-schedule-chosen
//! point" and still have an oracle to compare against.
//!
//! # Schedule syntax
//!
//! Comma-separated directives:
//!
//! ```text
//! MAPRAT_FAULTS="seed:42,wal.fsync:0.5,ingest.commit.post-log@3"
//! ```
//!
//! * `seed:N` — the schedule seed (default 0);
//! * `site:P` — site fires with probability `P` per hit (deterministic,
//!   derived from the seed and the hit index);
//! * `site@N` — site fires on exactly its `N`-th hit (1-based), once.
//!
//! Unknown or malformed directives disable the whole schedule (loudly, on
//! stderr): a chaos run with a typo must not silently degrade into a
//! clean run.
//!
//! # Sites used across the workspace
//!
//! | site | effect |
//! |---|---|
//! | `wal.fsync` | WAL fsync returns an injected I/O error |
//! | `wal.torn` | WAL record is half-written, then the process aborts |
//! | `ingest.commit.pre-log` | abort before the WAL append (commit lost, never acked) |
//! | `ingest.commit.post-log` | abort after fsync, before the snapshot publish |
//! | `ingest.commit.post-publish` | abort after publish, before the ack returns |
//! | `ingest.alloc` | transient allocation pressure in the commit path |
//! | `solver.panic` | a cold solve panics mid-flight |
//! | `worker.slow` | a pool worker stalls briefly before running its job |

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// How one site decides whether a given hit fires.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// Fire with this probability per hit (deterministically derived).
    Rate(f64),
    /// Fire on exactly this hit (1-based), once.
    At(u64),
}

/// One `site:rate` / `site@n` directive plus its per-process hit counter.
#[derive(Debug)]
struct Rule {
    site: String,
    mode: Mode,
    hits: AtomicU64,
}

/// A parsed fault schedule. Most call sites use the process-global
/// [`global`] plan (armed from `MAPRAT_FAULTS`); tests construct private
/// plans via [`FaultPlan::parse`].
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<Rule>,
}

impl FaultPlan {
    /// Parses a schedule string (see the crate docs for the syntax).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            if let Some(seed) = token.strip_prefix("seed:") {
                plan.seed = seed
                    .parse::<u64>()
                    .map_err(|_| format!("bad seed in {token:?}"))?;
            } else if let Some((site, nth)) = token.split_once('@') {
                let nth = nth
                    .parse::<u64>()
                    .map_err(|_| format!("bad hit index in {token:?}"))?;
                if nth == 0 {
                    return Err(format!("hit index in {token:?} is 1-based"));
                }
                plan.rules.push(Rule {
                    site: site.to_string(),
                    mode: Mode::At(nth),
                    hits: AtomicU64::new(0),
                });
            } else if let Some((site, rate)) = token.split_once(':') {
                let rate = rate
                    .parse::<f64>()
                    .map_err(|_| format!("bad rate in {token:?}"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("rate in {token:?} outside [0, 1]"));
                }
                plan.rules.push(Rule {
                    site: site.to_string(),
                    mode: Mode::Rate(rate),
                    hits: AtomicU64::new(0),
                });
            } else {
                return Err(format!("unrecognized directive {token:?}"));
            }
        }
        Ok(plan)
    }

    /// The schedule seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Records one hit at `site` and returns whether it fires.
    ///
    /// Pure in `(seed, site, hit index)`: two processes running the same
    /// schedule observe the same decision at the same hit, regardless of
    /// timing. A site with no rule never fires (and counts no hits).
    pub fn fires(&self, site: &str) -> bool {
        let Some(rule) = self.rules.iter().find(|r| r.site == site) else {
            return false;
        };
        let hit = rule.hits.fetch_add(1, Ordering::Relaxed) + 1;
        match rule.mode {
            Mode::At(nth) => hit == nth,
            Mode::Rate(rate) => {
                let roll = splitmix64(self.seed ^ fnv1a(site) ^ hit.wrapping_mul(0x9E37_79B9));
                (roll >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < rate
            }
        }
    }

    /// How many hits `site` has recorded so far (0 if it has no rule).
    pub fn hits(&self, site: &str) -> u64 {
        self.rules
            .iter()
            .find(|r| r.site == site)
            .map(|r| r.hits.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// The process-global plan, armed from `MAPRAT_FAULTS` at first use.
/// `None` when the variable is unset or malformed (malformed schedules
/// are reported on stderr and disabled entirely).
pub fn global() -> Option<&'static FaultPlan> {
    static PLAN: OnceLock<Option<FaultPlan>> = OnceLock::new();
    PLAN.get_or_init(|| {
        let spec = std::env::var("MAPRAT_FAULTS").ok()?;
        match FaultPlan::parse(&spec) {
            Ok(plan) => Some(plan),
            Err(e) => {
                eprintln!("MAPRAT_FAULTS disabled: {e}");
                None
            }
        }
    })
    .as_ref()
}

/// Whether the global schedule fires at `site` for this hit. The no-op
/// fast path (no schedule armed) is a single `OnceLock` read.
pub fn fires(site: &str) -> bool {
    global().is_some_and(|plan| plan.fires(site))
}

/// Panics with an identifiable payload when `site` fires.
pub fn maybe_panic(site: &str) {
    if fires(site) {
        panic!("injected fault: {site}");
    }
}

/// Aborts the process (the `kill -9` stand-in) when `site` fires.
pub fn maybe_abort(site: &str) {
    if fires(site) {
        eprintln!("injected abort: {site}");
        std::process::abort();
    }
}

/// Sleeps `ms` milliseconds when `site` fires (slow-worker injection).
pub fn maybe_delay(site: &str, ms: u64) {
    if fires(site) {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// Returns an injected I/O error when `site` fires.
pub fn maybe_io_error(site: &str) -> std::io::Result<()> {
    if fires(site) {
        return Err(std::io::Error::other(format!("injected fault: {site}")));
    }
    Ok(())
}

/// Applies transient allocation pressure (touches a multi-megabyte
/// buffer, then frees it) when `site` fires.
pub fn maybe_alloc_pressure(site: &str) {
    if fires(site) {
        let mut pressure = vec![0u8; 8 << 20];
        for chunk in pressure.chunks_mut(4096) {
            chunk[0] = 1;
        }
        std::hint::black_box(&pressure);
    }
}

/// SplitMix64 — the same bit-mixing generator the solver's restart
/// seeding uses; one call fully mixes its input.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the site name, so distinct sites decorrelate.
fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_seed_only_schedules_never_fire() {
        for spec in ["", "seed:7"] {
            let plan = FaultPlan::parse(spec).unwrap();
            assert!(!plan.fires("wal.fsync"));
            assert_eq!(plan.hits("wal.fsync"), 0);
        }
    }

    #[test]
    fn at_rule_fires_exactly_once_at_the_chosen_hit() {
        let plan = FaultPlan::parse("seed:1,x@3").unwrap();
        let fired: Vec<bool> = (0..6).map(|_| plan.fires("x")).collect();
        assert_eq!(fired, vec![false, false, true, false, false, false]);
        assert_eq!(plan.hits("x"), 6);
    }

    #[test]
    fn rate_rules_are_deterministic_across_plans() {
        let a = FaultPlan::parse("seed:42,x:0.5,y:0.5").unwrap();
        let b = FaultPlan::parse("seed:42,x:0.5,y:0.5").unwrap();
        let run = |p: &FaultPlan, s: &str| -> Vec<bool> { (0..64).map(|_| p.fires(s)).collect() };
        assert_eq!(run(&a, "x"), run(&b, "x"));
        assert_eq!(run(&a, "y"), run(&b, "y"));
        // Distinct sites decorrelate under the same seed.
        let a2 = FaultPlan::parse("seed:42,x:0.5,y:0.5").unwrap();
        assert_ne!(run(&a2, "x"), run(&a2, "y"));
    }

    #[test]
    fn rate_extremes_behave() {
        let plan = FaultPlan::parse("never:0.0,always:1.0").unwrap();
        assert!((0..32).all(|_| !plan.fires("never")));
        assert!((0..32).all(|_| plan.fires("always")));
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::parse("seed:1,x:0.5").unwrap();
        let b = FaultPlan::parse("seed:2,x:0.5").unwrap();
        let fa: Vec<bool> = (0..64).map(|_| a.fires("x")).collect();
        let fb: Vec<bool> = (0..64).map(|_| b.fires("x")).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn malformed_schedules_are_rejected() {
        for bad in ["seed:x", "x@0", "x@nope", "x:1.5", "x:-0.1", "x"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn io_error_helper_surfaces_the_site() {
        let plan = FaultPlan::parse("boom:1.0").unwrap();
        assert!(plan.fires("boom"));
        // The global helpers are no-ops without MAPRAT_FAULTS armed.
        assert!(maybe_io_error("boom").is_ok());
        maybe_panic("boom");
        maybe_alloc_pressure("boom");
        maybe_delay("boom", 1);
    }
}
