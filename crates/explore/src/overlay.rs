//! Overlaying explanations (§2.3: the geo anchor "provides a mechanism to
//! overlay explanations from different interpretations").
//!
//! An overlay combines the SM and DM tabs of one exploration into a single
//! choropleth: states selected by both interpretations are shaded by their
//! *combined* (support-weighted) average and annotated with both labels,
//! so a user sees at a glance where the consistent and the contested
//! sub-populations live.

use maprat_core::Explanation;
use maprat_data::AttrValue;
use maprat_geo::choropleth::{non_geo_values, StateShade};
use maprat_geo::Choropleth;
use std::collections::BTreeMap;

/// One state's overlaid evidence.
#[derive(Debug, Clone)]
struct OverlayCell {
    labels: Vec<String>,
    weighted_sum: f64,
    support: usize,
    values: Vec<AttrValue>,
}

/// Builds the combined SM+DM choropleth of an explanation.
pub fn overlay_maps(explanation: &Explanation) -> Choropleth {
    let mut cells: BTreeMap<maprat_data::UsState, OverlayCell> = BTreeMap::new();
    for (tag, interp) in [
        ("SM", &explanation.similarity),
        ("DM", &explanation.diversity),
    ] {
        for group in &interp.groups {
            let Some(state) = group.desc.state() else {
                continue;
            };
            let Some(mean) = group.stats.mean() else {
                continue;
            };
            let entry = cells.entry(state).or_insert_with(|| OverlayCell {
                labels: Vec::new(),
                weighted_sum: 0.0,
                support: 0,
                values: Vec::new(),
            });
            let label = format!("[{tag}] {}", group.label);
            if !entry.labels.contains(&label) {
                entry.labels.push(label);
                entry.weighted_sum += mean * group.support as f64;
                entry.support += group.support;
                for pair in group.desc.pairs_iter() {
                    if !entry.values.contains(&pair.value) {
                        entry.values.push(pair.value);
                    }
                }
            }
        }
    }

    let mut map = Choropleth::new(format!("Overlay (SM + DM) — {}", explanation.query));
    for (state, cell) in cells {
        if cell.support == 0 {
            continue;
        }
        map.add(StateShade::new(
            state,
            cell.weighted_sum / cell.support as f64,
            cell.labels.join(" + "),
            cell.support,
            &non_geo_values(&cell.values),
        ));
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use maprat_core::query::ItemQuery;
    use maprat_core::{Miner, SearchSettings};
    use maprat_data::synth::{generate, SynthConfig};

    fn explanation() -> Explanation {
        let d = generate(&SynthConfig::small(411)).unwrap();
        let miner = Miner::new(&d);
        miner
            .explain(
                &ItemQuery::title("Toy Story"),
                &SearchSettings::default().with_min_coverage(0.2),
            )
            .unwrap()
    }

    #[test]
    fn overlay_unions_both_tabs() {
        let e = explanation();
        let overlay = overlay_maps(&e);
        let sm_states: std::collections::BTreeSet<_> = e
            .similarity
            .groups
            .iter()
            .filter_map(|g| g.desc.state())
            .collect();
        let dm_states: std::collections::BTreeSet<_> = e
            .diversity
            .groups
            .iter()
            .filter_map(|g| g.desc.state())
            .collect();
        let union: std::collections::BTreeSet<_> = sm_states.union(&dm_states).copied().collect();
        assert_eq!(overlay.len(), union.len());
        assert!(overlay.title.contains("Overlay"));
    }

    #[test]
    fn shared_state_labels_mention_both_tasks() {
        let e = explanation();
        let overlay = overlay_maps(&e);
        // If any state is picked by both interpretations, its label must
        // carry both tags; otherwise every label carries exactly one tag.
        for shade in overlay.shades() {
            assert!(shade.label.contains("[SM]") || shade.label.contains("[DM]"));
        }
        let dup_state = e
            .similarity
            .groups
            .iter()
            .filter_map(|g| g.desc.state())
            .find(|s| {
                e.diversity
                    .groups
                    .iter()
                    .filter_map(|g| g.desc.state())
                    .any(|d| d == *s)
            });
        if let Some(state) = dup_state {
            let shade = overlay.shade(state).unwrap();
            assert!(
                shade.label.contains("[SM]") && shade.label.contains("[DM]"),
                "{}",
                shade.label
            );
        }
    }

    #[test]
    fn overlay_values_stay_on_scale() {
        let e = explanation();
        for shade in overlay_maps(&e).shades() {
            assert!((1.0..=5.0).contains(&shade.value));
            assert!(shade.support > 0);
        }
    }

    #[test]
    fn identical_group_in_both_tabs_counted_once() {
        let e = explanation();
        let overlay = overlay_maps(&e);
        // Toy Story's CA-males frequently win both tabs; the combined
        // support must not double-count the identical group.
        for shade in overlay.shades() {
            let max_single: usize = e
                .similarity
                .groups
                .iter()
                .chain(&e.diversity.groups)
                .filter(|g| g.desc.state() == Some(shade.state))
                .map(|g| g.support)
                .sum();
            assert!(shade.support <= max_single);
        }
    }
}
