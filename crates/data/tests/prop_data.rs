//! Property-based tests on the data substrate's invariants.

use maprat_data::{
    zipcode, AgeGroup, Gender, Occupation, RatingStats, Score, TimeRange, Timestamp, UsState, Zip,
};
use proptest::prelude::*;

proptest! {
    /// Civil calendar conversion round-trips over four decades of days.
    #[test]
    fn timestamp_ymd_round_trip(days in -10_000i64..20_000) {
        let ts = Timestamp(days * 86_400);
        let (y, m, d) = ts.to_ymd();
        prop_assert_eq!(Timestamp::from_ymd(y, m, d), ts);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
    }

    /// Mid-day timestamps bucket into the same month as their midnight.
    #[test]
    fn month_key_ignores_time_of_day(days in 0i64..20_000, secs in 0i64..86_400) {
        let midnight = Timestamp(days * 86_400);
        let later = Timestamp(days * 86_400 + secs);
        prop_assert_eq!(midnight.month_key(), later.month_key());
    }

    /// `TimeRange::between` contains exactly `[start, end)`.
    #[test]
    fn time_range_half_open(a in -1_000_000i64..1_000_000, len in 0i64..1_000_000, probe in -2_000_000i64..2_000_000) {
        let range = TimeRange::between(Timestamp(a), Timestamp(a + len));
        let expected = probe >= a && probe < a + len;
        prop_assert_eq!(range.contains(Timestamp(probe)), expected);
    }

    /// Score::saturating always lands on the scale and is monotone.
    #[test]
    fn score_saturating_on_scale(x in -100i64..100, y in -100i64..100) {
        let sx = Score::saturating(x);
        let sy = Score::saturating(y);
        prop_assert!((1..=5).contains(&sx.get()));
        if x <= y {
            prop_assert!(sx <= sy);
        }
    }

    /// Every zip code resolves to *some* state via the fallback, and the
    /// direct mapping (when defined) agrees with it.
    #[test]
    fn zip_fallback_total(raw in 0u32..100_000) {
        let zip = Zip::new(raw);
        let fallback = zip.state_or_fallback();
        if let Some(direct) = zip.state() {
            prop_assert_eq!(direct, fallback);
        }
        // Display is always five digits.
        prop_assert_eq!(zip.to_string().len(), 5);
    }

    /// Prefix ranges and `state_for_prefix` agree.
    #[test]
    fn prefix_ranges_consistent(prefix in 0u32..1000) {
        match zipcode::state_for_prefix(prefix) {
            Some(state) => {
                prop_assert!(
                    zipcode::prefix_ranges(state).any(|(lo, hi)| (lo..=hi).contains(&prefix))
                );
            }
            None => {
                for s in UsState::ALL {
                    prop_assert!(
                        !zipcode::prefix_ranges(s).any(|(lo, hi)| (lo..=hi).contains(&prefix))
                    );
                }
            }
        }
    }

    /// RatingStats::merge is equivalent to folding the concatenation, and
    /// its derived statistics stay within the scale's bounds.
    #[test]
    fn stats_merge_associative(
        xs in proptest::collection::vec(1u8..=5, 0..40),
        ys in proptest::collection::vec(1u8..=5, 0..40),
    ) {
        let score = |v: u8| Score::new(v).unwrap();
        let a = RatingStats::from_scores(xs.iter().copied().map(score));
        let b = RatingStats::from_scores(ys.iter().copied().map(score));
        let mut merged = a;
        merged.merge(&b);
        let direct = RatingStats::from_scores(xs.iter().chain(&ys).copied().map(score));
        prop_assert_eq!(merged, direct);
        if let Some(m) = merged.mean() {
            prop_assert!((1.0..=5.0).contains(&m));
            prop_assert!(merged.mean_abs_deviation().unwrap() <= 4.0);
            prop_assert!(merged.variance().unwrap() >= 0.0);
        }
        prop_assert_eq!(merged.count() as usize, xs.len() + ys.len());
    }

    /// MAD is never larger than the standard deviation² relationship allows
    /// and both vanish exactly for constant samples.
    #[test]
    fn stats_constant_samples(v in 1u8..=5, n in 1usize..50) {
        let stats = RatingStats::from_scores(
            std::iter::repeat_with(|| Score::new(v).unwrap()).take(n),
        );
        prop_assert_eq!(stats.mean().unwrap(), f64::from(v));
        prop_assert_eq!(stats.variance().unwrap(), 0.0);
        prop_assert_eq!(stats.mean_abs_deviation().unwrap(), 0.0);
    }

    /// MovieLens code round trips over the whole categorical domains.
    #[test]
    fn categorical_round_trips(age_idx in 0usize..7, occ_idx in 0usize..21, g in 0usize..2) {
        let age = AgeGroup::from_index(age_idx).unwrap();
        prop_assert_eq!(AgeGroup::from_movielens_code(age.movielens_code()).unwrap(), age);
        let occ = Occupation::from_index(occ_idx).unwrap();
        prop_assert_eq!(Occupation::from_movielens_code(occ.movielens_code()).unwrap(), occ);
        let gender = Gender::from_index(g).unwrap();
        prop_assert_eq!(Gender::from_letter(gender.letter()).unwrap(), gender);
    }
}
