//! FIG2 — reproduces Figure 2: "MapRat Explanation Result for Query in
//! Figure 1".
//!
//! Paper caption/shape: the SM tab shows the best three groups for Toy
//! Story — male reviewers from California, male reviewers from
//! Massachusetts and female (teen student, at full MovieLens scale)
//! reviewers from New York — all rating positively, the NY group lower
//! than the others; groups are rendered on a choropleth with red→green
//! shading, attribute icons and age pins; a second tab shows Diversity
//! Mining.
//!
//! Run: `cargo run --release -p maprat-bench --bin fig2_explanation [--check]`
//! Writes `fig2_sm.svg` and `fig2_dm.svg` to the working directory.

use maprat_bench::{dataset, table::Table, ShapeCheck};
use maprat_core::query::ItemQuery;
use maprat_core::{Miner, SearchSettings};
use maprat_data::UsState;
use maprat_explore::exploration_maps;
use maprat_geo::ascii::{self, AsciiOptions};
use maprat_geo::svg::{render as render_svg, SvgOptions};

fn main() {
    let mut check = ShapeCheck::new();
    let d = dataset();
    let miner = Miner::new(d);
    let settings = SearchSettings::default().with_min_coverage(0.2);
    let query = ItemQuery::title("Toy Story");

    let e = miner
        .explain(&query, &settings)
        .expect("planted Toy Story explains");

    println!("=== FIG2: explanation result for the Figure-1 query ===\n");
    println!(
        "query: {} — {} ratings, overall average {:.2}\n",
        e.query,
        e.num_ratings,
        e.total.mean().unwrap_or(0.0)
    );

    for interp in [&e.similarity, &e.diversity] {
        println!("--- {} tab ---", interp.task.name());
        let mut t = Table::new(["group", "state", "avg", "n", "share"]);
        for g in &interp.groups {
            t.row([
                g.label.clone(),
                g.desc
                    .state()
                    .map(|s| s.abbrev().to_string())
                    .unwrap_or_default(),
                format!("{:.2}", g.stats.mean().unwrap_or(0.0)),
                g.support.to_string(),
                format!("{:.1}%", g.coverage_share * 100.0),
            ]);
        }
        t.print();
        println!(
            "objective {:.3}, joint coverage {:.1}%\n",
            interp.objective,
            interp.coverage * 100.0
        );
    }

    // Choropleths (the actual Figure-2 artifact).
    let (sm, dm) = exploration_maps(&e);
    for (name, map) in [("fig2_sm.svg", &sm), ("fig2_dm.svg", &dm)] {
        let svg = render_svg(map, &SvgOptions::default());
        std::fs::write(name, &svg).expect("write figure svg");
        println!("wrote {name} ({} bytes)", svg.len());
    }
    println!();
    println!(
        "{}",
        ascii::render(
            &sm,
            &AsciiOptions {
                color: std::env::var_os("NO_COLOR").is_none(),
                caption: true
            }
        )
    );

    // --- Shape contract vs the paper.
    check.expect("three SM groups", e.similarity.groups.len() == 3);
    check.expect(
        "every SM group carries a geo condition",
        e.similarity.groups.iter().all(|g| g.desc.state().is_some()),
    );
    check.expect(
        "all SM groups rate positively (paper: all three positive)",
        e.similarity
            .groups
            .iter()
            .all(|g| g.stats.mean().unwrap_or(0.0) > 3.0),
    );
    let planted = [UsState::CA, UsState::MA, UsState::NY];
    let planted_hits = e
        .similarity
        .groups
        .iter()
        .filter(|g| {
            g.desc
                .state()
                .map(|s| planted.contains(&s))
                .unwrap_or(false)
        })
        .count();
    check.expect(
        "≥2 of the paper's states (CA/MA/NY) among the best three",
        planted_hits >= 2,
    );
    let ca_group = e
        .similarity
        .groups
        .iter()
        .find(|g| g.desc.state() == Some(UsState::CA));
    check.expect(
        "the CA group is the most enthusiastic (paper: CA males highest)",
        ca_group.is_some_and(|ca| {
            let ca_mean = ca.stats.mean().unwrap_or(0.0);
            e.similarity
                .groups
                .iter()
                .all(|g| g.stats.mean().unwrap_or(0.0) <= ca_mean + 1e-9)
        }),
    );
    if let Some(ny) = e
        .similarity
        .groups
        .iter()
        .find(|g| g.desc.state() == Some(UsState::NY))
    {
        check.expect(
            "the NY group rates lower than CA (paper: NY group lower)",
            ny.stats.mean().unwrap_or(0.0)
                < ca_group.map(|g| g.stats.mean().unwrap()).unwrap_or(5.0),
        );
    }
    check.expect(
        "SM map shades the selected states",
        sm.len() + sm.extras().len() == 3,
    );
    check.finish();
}
