//! The interactive exploration engine of MapRat (§2.3, §3.1).
//!
//! This crate glues mining, geography and caching into the behaviours the
//! demo exposes:
//!
//! * [`engine::MapRatEngine`] — the owned, cheaply-clonable entry point:
//!   `Arc<Dataset>` + miner + sharded cache mapping typed
//!   [`engine::ExplainRequest`]s to explanation+cube results (§2.3's
//!   pre-computation/caching claim), with no lifetime parameter to leak
//!   around;
//! * [`render`] — turns each interpretation into a [`maprat_geo`]
//!   choropleth (the SM and DM tabs);
//! * [`timeline`] — the time slider: month-windowed re-mining showing how
//!   explanations evolve (§3.1's Toy Story narration);
//! * [`drilldown`] — state → city statistics for a selected group;
//! * [`compare`] — the Figure-3 statistics panel: histogram plus related
//!   groups (parents and one-attribute-away siblings);
//! * [`personalize`] — constrains the mined groups to a visitor profile so
//!   "the resulting groups are the ones the user most self-identifies
//!   with".

#![warn(missing_docs)]

pub mod compare;
pub mod drilldown;
pub mod engine;
pub mod overlay;
pub mod personalize;
pub mod render;
pub mod timeline;

pub use compare::{GroupDetail, RelatedGroup, Relation};
pub use engine::{ExplainRequest, ExplorationResult, MapRatEngine, RequestFingerprint};
pub use overlay::overlay_maps;
pub use render::{exploration_maps, interpretation_map};
pub use timeline::{TimeSlider, TimelinePoint};
