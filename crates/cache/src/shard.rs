//! Thread-safe sharded LRU, used by the demo server to answer concurrent
//! requests without a single global lock.

use crate::lru::LruCache;
use crate::stats::CacheStats;
use parking_lot::Mutex;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::Arc;

/// A sharded, mutex-protected LRU with shared telemetry.
///
/// Values are stored behind `Arc` so `get` returns a clone-cheap handle
/// without holding the shard lock.
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<LruCache<K, Arc<V>>>>,
    hasher: RandomState,
    stats: Arc<CacheStats>,
}

impl<K: Hash + Eq + Clone, V> ShardedCache<K, V> {
    /// Creates a cache with `shards` shards of `per_shard` capacity each.
    ///
    /// # Panics
    /// Panics if either parameter is zero.
    pub fn new(shards: usize, per_shard: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedCache {
            shards: (0..shards)
                .map(|_| Mutex::new(LruCache::new(per_shard)))
                .collect(),
            hasher: RandomState::new(),
            stats: Arc::new(CacheStats::new()),
        }
    }

    fn shard_for(&self, key: &K) -> &Mutex<LruCache<K, Arc<V>>> {
        let idx = (self.hasher.hash_one(key) as usize) % self.shards.len();
        &self.shards[idx]
    }

    /// Whether a key is resident, without touching recency or telemetry
    /// (used by background warmers probing for work).
    pub fn contains(&self, key: &K) -> bool {
        self.shard_for(key).lock().peek(key).is_some()
    }

    /// Looks up a key without touching recency or telemetry (used by
    /// single-flight leaders re-checking after winning leadership, where
    /// a second hit/miss record would double-count the request).
    pub fn peek(&self, key: &K) -> Option<Arc<V>> {
        self.shard_for(key).lock().peek(key).cloned()
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let result = self.shard_for(key).lock().get(key).cloned();
        match &result {
            Some(_) => self.stats.hit(),
            None => self.stats.miss(),
        }
        result
    }

    /// Inserts a value.
    pub fn put(&self, key: K, value: V) -> Arc<V> {
        let value = Arc::new(value);
        let evicted = self
            .shard_for(&key)
            .lock()
            .put(key, Arc::clone(&value))
            .is_some();
        self.stats.insert(evicted);
        value
    }

    /// Looks up, or computes-and-inserts on miss.
    ///
    /// The computation runs *outside* the shard lock; under a race the
    /// first writer wins and later writers return the cached value.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> Arc<V> {
        if let Some(v) = self.get(&key) {
            return v;
        }
        let computed = Arc::new(compute());
        let mut shard = self.shard_for(&key).lock();
        if let Some(existing) = shard.get(&key) {
            return Arc::clone(existing);
        }
        let evicted = shard.put(key, Arc::clone(&computed)).is_some();
        drop(shard);
        self.stats.insert(evicted);
        computed
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes one key; returns the value if it was present. Recorded as
    /// an invalidation in [`CacheStats`].
    pub fn remove(&self, key: &K) -> Option<Arc<V>> {
        let removed = self.shard_for(key).lock().remove(key);
        if removed.is_some() {
            self.stats.invalidate(1);
        }
        removed
    }

    /// Keeps only entries for which `keep` returns `true`; returns how
    /// many were dropped (recorded as invalidations in [`CacheStats`]).
    ///
    /// Each shard is swept under its own lock, so concurrent readers of
    /// other shards are never blocked. Used for partition-scoped
    /// invalidation after a dataset hot-swap.
    pub fn retain(&self, mut keep: impl FnMut(&K, &V) -> bool) -> usize {
        let mut dropped = 0;
        for shard in &self.shards {
            dropped += shard.lock().retain(|k, v| keep(k, &**v));
        }
        if dropped > 0 {
            self.stats.invalidate(dropped as u64);
        }
        dropped
    }

    /// Clears every shard.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    /// Shared telemetry handle.
    pub fn stats(&self) -> Arc<CacheStats> {
        Arc::clone(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn get_put_across_shards() {
        let c: ShardedCache<u32, String> = ShardedCache::new(4, 8);
        for i in 0..20 {
            c.put(i, format!("v{i}"));
        }
        assert!(c.len() <= 32);
        assert_eq!(c.get(&5).as_deref(), Some(&"v5".to_string()));
        assert!(c.stats().hits() >= 1);
    }

    #[test]
    fn get_or_insert_computes_once_per_key() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(2, 16);
        let calls = AtomicUsize::new(0);
        let v1 = c.get_or_insert_with(7, || {
            calls.fetch_add(1, Ordering::SeqCst);
            70
        });
        let v2 = c.get_or_insert_with(7, || {
            calls.fetch_add(1, Ordering::SeqCst);
            71
        });
        assert_eq!(*v1, 70);
        assert_eq!(*v2, 70);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc as StdArc;
        let c: StdArc<ShardedCache<u32, u32>> = StdArc::new(ShardedCache::new(4, 32));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let c = StdArc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        let key = (i * 7 + t) % 64;
                        let v = c.get_or_insert_with(key, || key * 2);
                        assert_eq!(*v, key * 2);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 4 * 32);
    }

    #[test]
    fn retain_and_remove_record_invalidations() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(4, 8);
        for i in 0..10 {
            c.put(i, i);
        }
        assert_eq!(c.remove(&3).as_deref(), Some(&3));
        assert_eq!(c.remove(&3), None, "second remove is a no-op");
        let dropped = c.retain(|k, _| k % 2 == 0);
        assert_eq!(dropped, 4, "odd keys dropped (3 already removed)");
        assert_eq!(c.len(), 5);
        assert_eq!(c.stats().invalidations(), 5);
        assert!(c.get(&5).is_none());
        assert!(c.get(&4).is_some());
    }

    #[test]
    fn clear_resets_contents_not_stats() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(2, 4);
        c.put(1, 10);
        let _ = c.get(&1);
        c.clear();
        assert!(c.is_empty());
        assert!(c.stats().hits() > 0, "stats survive clear");
    }
}
