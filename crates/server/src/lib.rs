//! The MapRat demo server: a dependency-free reproduction of the paper's
//! web front-end (§3.1, Figure 1).
//!
//! * [`json`] — a minimal, escaping-correct JSON value type with a writer
//!   and a small parser (used by tests and tooling; `serde_json` is not on
//!   the approved dependency list);
//! * [`http`] — an HTTP/1.1 listener on `std::net::TcpListener` with a
//!   crossbeam-channel worker pool, request parsing (query-string and
//!   percent-decoding included) and graceful shutdown;
//! * [`routes`] — the application: `/api/explain`, `/api/timeline`,
//!   `/api/drill`, `/api/detail`, `/map.svg` and the embedded HTML page;
//! * [`html`] — the single-page front-end (vanilla JS) driving the API.

#![warn(missing_docs)]

pub mod html;
pub mod http;
pub mod json;
pub mod routes;

pub use http::{HttpServer, Request, Response};
pub use json::Json;
pub use routes::AppState;
