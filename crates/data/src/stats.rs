//! Streaming aggregate statistics over rating scores.

use crate::score::Score;
use std::fmt;

/// Count / mean / variance / histogram accumulator for a set of ratings.
///
/// This is the aggregate MapRat attaches to every group: the mean drives the
/// choropleth shading, the histogram feeds the Figure-3 statistics panel and
/// the mean absolute deviation feeds the Similarity-Mining objective.
/// Accumulators merge associatively, which lets the cube layer and the time
/// slider combine precomputed partial aggregates.
///
/// ```
/// use maprat_data::{RatingStats, Score};
/// let stats = RatingStats::from_scores(
///     [5, 5, 4].into_iter().map(|v| Score::new(v).unwrap()),
/// );
/// assert_eq!(stats.count(), 3);
/// assert!((stats.mean().unwrap() - 14.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RatingStats {
    count: u64,
    sum: f64,
    sum_sq: f64,
    hist: [u64; 5],
}

impl RatingStats {
    /// The empty aggregate.
    pub fn new() -> Self {
        RatingStats::default()
    }

    /// Folds one score into the aggregate.
    #[inline]
    pub fn push(&mut self, score: Score) {
        let v = score.as_f64();
        self.count += 1;
        self.sum += v;
        self.sum_sq += v * v;
        self.hist[score.bucket()] += 1;
    }

    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: &RatingStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        for (a, b) in self.hist.iter_mut().zip(other.hist.iter()) {
            *a += b;
        }
    }

    /// Builds the aggregate of an iterator of scores.
    pub fn from_scores<I: IntoIterator<Item = Score>>(scores: I) -> Self {
        let mut s = RatingStats::new();
        for score in scores {
            s.push(score);
        }
        s
    }

    /// Reconstructs the aggregate from a five-bucket histogram
    /// (index 0 = score 1).
    ///
    /// Because scores are small integers, every accumulated term
    /// (`Σ n_b · s_b`, `Σ n_b · s_b²`) is exactly representable in `f64`,
    /// so the result is **bit-identical** to [`push`](Self::push)ing the
    /// same multiset of scores one by one in any order. The cube builder
    /// relies on this: its dense counting pass accumulates per-cell
    /// histograms and rebuilds the stats here, and still compares equal
    /// to the naive per-rating fold.
    pub fn from_histogram(hist: [u64; 5]) -> Self {
        let mut count = 0u64;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for (n, score) in hist.iter().zip(Score::all()) {
            let v = score.as_f64();
            count += n;
            sum += *n as f64 * v;
            sum_sq += *n as f64 * (v * v);
        }
        RatingStats {
            count,
            sum,
            sum_sq,
            hist,
        }
    }

    /// Number of ratings aggregated.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no rating has been aggregated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean score; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Population variance; `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        self.mean().map(|m| {
            // Guard against tiny negative values from floating cancellation.
            (self.sum_sq / self.count as f64 - m * m).max(0.0)
        })
    }

    /// Population standard deviation; `None` when empty.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Mean absolute deviation around the mean, computed exactly from the
    /// histogram; `None` when empty.
    ///
    /// This is the *description error* term of the SM objective (§2.2 /
    /// MRI \[2\]): how far the individual ratings sit from the group average.
    pub fn mean_abs_deviation(&self) -> Option<f64> {
        let mean = self.mean()?;
        let total: f64 = self
            .hist
            .iter()
            .zip(Score::all())
            .map(|(&n, s)| n as f64 * (s.as_f64() - mean).abs())
            .sum();
        Some(total / self.count as f64)
    }

    /// The five-bucket histogram (index 0 = score 1).
    pub fn histogram(&self) -> [u64; 5] {
        self.hist
    }

    /// Fraction of ratings at or above 4 ("loves it" in the paper's
    /// narration).
    pub fn positive_fraction(&self) -> Option<f64> {
        (self.count > 0).then(|| (self.hist[3] + self.hist[4]) as f64 / self.count as f64)
    }
}

impl fmt::Display for RatingStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(m) => write!(
                f,
                "n={} mean={:.2} σ={:.2} hist={:?}",
                self.count,
                m,
                self.std_dev().unwrap_or(0.0),
                self.hist
            ),
            None => write!(f, "n=0"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: u8) -> Score {
        Score::new(v).unwrap()
    }

    #[test]
    fn empty_stats() {
        let st = RatingStats::new();
        assert!(st.is_empty());
        assert_eq!(st.mean(), None);
        assert_eq!(st.variance(), None);
        assert_eq!(st.mean_abs_deviation(), None);
        assert_eq!(st.to_string(), "n=0");
    }

    #[test]
    fn mean_and_histogram() {
        let st = RatingStats::from_scores([s(5), s(5), s(4), s(2)]);
        assert_eq!(st.count(), 4);
        assert!((st.mean().unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(st.histogram(), [0, 1, 0, 1, 2]);
        assert!((st.positive_fraction().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn variance_matches_direct_computation() {
        let scores = [s(1), s(3), s(5), s(5)];
        let st = RatingStats::from_scores(scores);
        let m = 3.5;
        let var_direct: f64 = scores
            .iter()
            .map(|x| (x.as_f64() - m) * (x.as_f64() - m))
            .sum::<f64>()
            / 4.0;
        assert!((st.variance().unwrap() - var_direct).abs() < 1e-12);
        assert!((st.std_dev().unwrap() - var_direct.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mad_matches_direct_computation() {
        let scores = [s(1), s(2), s(4), s(5)];
        let st = RatingStats::from_scores(scores);
        let m = 3.0;
        let mad_direct: f64 = scores.iter().map(|x| (x.as_f64() - m).abs()).sum::<f64>() / 4.0;
        assert!((st.mean_abs_deviation().unwrap() - mad_direct).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_combined_fold() {
        let a = RatingStats::from_scores([s(1), s(2)]);
        let b = RatingStats::from_scores([s(4), s(5), s(5)]);
        let mut merged = a;
        merged.merge(&b);
        let direct = RatingStats::from_scores([s(1), s(2), s(4), s(5), s(5)]);
        assert_eq!(merged, direct);
    }

    #[test]
    fn from_histogram_is_bit_identical_to_pushed_folds() {
        // Any permutation of pushes and the histogram reconstruction
        // must agree exactly (integer terms are exact in f64).
        let scores = [s(5), s(1), s(3), s(5), s(2), s(4), s(4), s(5)];
        let pushed = RatingStats::from_scores(scores);
        let mut reversed = scores;
        reversed.reverse();
        let pushed_rev = RatingStats::from_scores(reversed);
        let rebuilt = RatingStats::from_histogram(pushed.histogram());
        assert_eq!(pushed, pushed_rev);
        assert_eq!(pushed, rebuilt);
        assert_eq!(RatingStats::from_histogram([0; 5]), RatingStats::new());
    }

    #[test]
    fn uniform_scores_have_zero_deviation() {
        let st = RatingStats::from_scores([s(4); 10]);
        assert_eq!(st.variance().unwrap(), 0.0);
        assert_eq!(st.mean_abs_deviation().unwrap(), 0.0);
    }
}
