//! FIG3 — reproduces Figure 3: "MapRat Exploration Result for Explanation
//! *Male reviewers from California*".
//!
//! Paper shape: clicking the CA-males group in the Figure-2 result opens a
//! statistics panel with the group's rating distribution, a comparison
//! against related groups, and (via further exploration) city-level
//! aggregates.
//!
//! Run: `cargo run --release -p maprat-bench --bin fig3_exploration [--check]`

use maprat_bench::{dataset_arc, table::Table, ShapeCheck};
use maprat_core::query::ItemQuery;
use maprat_core::SearchSettings;
use maprat_cube::GroupDesc;
use maprat_data::{Gender, UsState};
use maprat_explore::compare::{group_detail, Relation};
use maprat_explore::drilldown::{drill_group, sparkline};
use maprat_explore::MapRatEngine;

fn main() {
    let mut check = ShapeCheck::new();
    let engine = MapRatEngine::new(dataset_arc());
    let settings = SearchSettings::default().with_min_coverage(0.2);
    let query = ItemQuery::title("Toy Story");

    let result = engine.explain_query(&query, &settings);
    let r = result.as_ref().as_ref().expect("Toy Story explains");

    // The user clicks "Male reviewers from California".
    let desc = GroupDesc::from_pairs([Gender::Male.into(), UsState::CA.into()]);
    let detail = group_detail(r, &desc).expect("CA males are a candidate group");

    println!("=== FIG3: exploration result for '{}' ===\n", detail.label);
    println!(
        "ratings: n={}  avg {:.2}  σ {:.2}",
        detail.stats.count(),
        detail.stats.mean().unwrap_or(0.0),
        detail.stats.std_dev().unwrap_or(0.0)
    );
    let hist = detail.stats.histogram();
    println!("distribution (1..5): {hist:?}  {}", sparkline(&hist));
    println!(
        "vs all reviewers of the item: n={} avg {:.2}\n",
        detail.total.count(),
        detail.total.mean().unwrap_or(0.0)
    );

    println!("--- related groups (the comparison panel) ---");
    let mut t = Table::new(["relation", "group", "avg", "n"]);
    for rg in &detail.related {
        t.row([
            match rg.relation {
                Relation::Parent => "roll-up",
                Relation::Sibling => "sibling",
            }
            .to_string(),
            rg.label.clone(),
            format!("{:.2}", rg.stats.mean().unwrap_or(0.0)),
            rg.stats.count().to_string(),
        ]);
    }
    t.print();

    println!("\n--- city-level drill-down (§3.1) ---");
    let cities = drill_group(&engine.dataset(), r, &desc).expect("geo group drills to cities");
    let mut ct = Table::new(["city", "avg", "n", "hist"]);
    let mut sorted: Vec<_> = cities.iter().filter(|c| !c.stats.is_empty()).collect();
    sorted.sort_by_key(|c| std::cmp::Reverse(c.stats.count()));
    for c in &sorted {
        ct.row([
            c.city.to_string(),
            format!("{:.2}", c.stats.mean().unwrap()),
            c.stats.count().to_string(),
            sparkline(&c.stats.histogram()),
        ]);
    }
    ct.print();

    // --- Shape contract vs the paper.
    check.expect(
        "the CA-males group is large and enthusiastic",
        detail.stats.count() >= 20 && detail.stats.mean().unwrap_or(0.0) > 4.4,
    );
    check.expect(
        "group average exceeds the item's overall average",
        detail.stats.mean().unwrap_or(0.0) > detail.total.mean().unwrap_or(5.0),
    );
    check.expect(
        "comparison panel offers related groups",
        !detail.related.is_empty(),
    );
    check.expect(
        "related groups include a roll-up and a sibling",
        detail
            .related
            .iter()
            .any(|g| g.relation == Relation::Parent)
            && detail
                .related
                .iter()
                .any(|g| g.relation == Relation::Sibling),
    );
    check.expect(
        "drill-down partitions the group's ratings",
        cities.iter().map(|c| c.stats.count()).sum::<u64>() == detail.stats.count(),
    );
    check.expect("several CA cities have ratings", sorted.len() >= 3);
    check.finish();
}
