//! Huge-scale hybrid-cover memory check — the PR 10 acceptance bound.
//!
//! Builds the iceberg cube over the full 10M-rating AQP-scale universe
//! and compares the bytes the hybrid covers actually reference
//! (dense word windows at 8 B/block, sparse run containers at 12 B/entry
//! — [`Bitmap::cover_bytes`]) against what the pre-PR-10 all-dense
//! representation would have spent (`ceil(universe/64) * 8` per cover).
//! The density-chosen representation must cut total cover storage by at
//! least 30%.
//!
//! Rides the scheduled `deep` CI job (`cargo test --workspace --release
//! -- --ignored`); too slow for the per-push suite.

use maprat_cube::{CubeOptions, RatingCube};
use maprat_data::synth::{generate, SynthConfig};

#[test]
#[ignore = "slow: generates a 10M-rating dataset and builds its full cube; exercised by scheduled CI"]
fn hybrid_covers_cut_cover_bytes_at_huge_scale() {
    let d = generate(&SynthConfig::huge(23)).expect("generate huge dataset");
    let universe: Vec<u32> = (0..d.ratings().len() as u32).collect();
    let n = universe.len();
    let cube = RatingCube::build(
        &d,
        universe,
        CubeOptions {
            min_support: 5,
            require_geo: false,
            max_arity: 4,
        },
    );
    assert!(!cube.is_empty(), "huge cube has survivors");

    let hybrid: usize = cube.groups().iter().map(|g| g.cover.cover_bytes()).sum();
    let dense_per_cover = n.div_ceil(64) * 8;
    let all_dense = cube.len() * dense_per_cover;
    let reduction = 1.0 - hybrid as f64 / all_dense as f64;
    let sparse = cube.groups().iter().filter(|g| g.cover.is_sparse()).count();
    println!(
        "huge-scale covers: {} groups over {n} ratings; hybrid {:.1} MiB vs all-dense {:.1} MiB \
         = {:.1}% reduction ({sparse} sparse / {} dense)",
        cube.len(),
        hybrid as f64 / (1 << 20) as f64,
        all_dense as f64 / (1 << 20) as f64,
        reduction * 100.0,
        cube.len() - sparse,
    );
    // Both representations must actually be in play: density selection,
    // not a blanket choice, is what the bound certifies.
    assert!(sparse > 0, "no cover chose the sparse container");
    assert!(sparse < cube.len(), "no cover chose the dense window");
    assert!(
        reduction >= 0.30,
        "hybrid covers must cut cover bytes by >=30%: got {:.1}%",
        reduction * 100.0
    );
}
