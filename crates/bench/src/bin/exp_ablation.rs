//! EXT-ABLATION — the design-choice sweeps DESIGN.md calls out:
//!
//! 1. DM consistency penalty λ (pure gap vs penalized objective);
//! 2. RHE restart count (quality/latency trade-off);
//! 3. iceberg min-support (candidate-pool size vs explanation quality).
//!
//! Run: `cargo run --release -p maprat-bench --bin exp_ablation [--check]`

use maprat_bench::timing::{ms, time_once};
use maprat_bench::{dataset, table::Table, ShapeCheck};
use maprat_core::{rhe, MiningProblem, RheParams, Task};
use maprat_cube::{CubeOptions, RatingCube};

fn main() {
    let mut check = ShapeCheck::new();
    let d = dataset();

    // --- (1) λ sweep on the controversial movie.
    let eclipse = d.find_title("The Twilight Saga: Eclipse").expect("planted");
    let idx: Vec<u32> = d.rating_range_for_item(eclipse).collect();
    let cube = RatingCube::build(
        d,
        idx,
        CubeOptions {
            min_support: 5,
            require_geo: false,
            max_arity: 2,
        },
    );
    println!("=== ABLATION 1: DM consistency penalty λ (Eclipse, k = 2) ===\n");
    let mut t = Table::new(["λ", "gap (pts)", "mean within-group MAD", "selected groups"]);
    let mut mads = Vec::new();
    for lambda in [0.0, 0.25, 0.5, 1.0, 2.0] {
        let problem = MiningProblem::new(&cube, 2, 0.08, lambda);
        let sol = rhe::solve(&problem, Task::Diversity, &RheParams::default()).expect("solves");
        let groups: Vec<_> = sol.indices.iter().map(|&i| &cube.groups()[i]).collect();
        let gap = (groups[0].mean() - groups[groups.len() - 1].mean()).abs();
        let mad = groups
            .iter()
            .map(|g| g.stats.mean_abs_deviation().unwrap_or(0.0))
            .sum::<f64>()
            / groups.len() as f64;
        mads.push(mad);
        t.row([
            format!("{lambda:.2}"),
            format!("{gap:.2}"),
            format!("{mad:.3}"),
            groups
                .iter()
                .map(|g| g.desc.label())
                .collect::<Vec<_>>()
                .join(" | "),
        ]);
    }
    t.print();
    check.expect(
        "higher λ never increases within-group inconsistency",
        mads.windows(2).all(|w| w[1] <= w[0] + 0.05),
    );

    // --- (2) restart sweep on Toy Story SM.
    let toy = d.find_title("Toy Story").expect("planted");
    let idx: Vec<u32> = d.rating_range_for_item(toy).collect();
    let cube = RatingCube::build(
        d,
        idx,
        CubeOptions {
            min_support: 5,
            require_geo: false,
            max_arity: 3,
        },
    );
    let problem = MiningProblem::new(&cube, 3, 0.15, 0.5);
    println!("\n=== ABLATION 2: RHE restart count (Toy Story SM) ===\n");
    let mut t = Table::new(["restarts", "objective", "evaluations", "time ms"]);
    let mut objectives = Vec::new();
    for restarts in [1usize, 2, 4, 8, 16, 32] {
        let params = RheParams {
            restarts,
            max_iterations: 48,
            seed: 0xCAFE,
        };
        let ((sol, stats), elapsed) = time_once(|| {
            rhe::solve_with_stats(&problem, Task::Similarity, &params).expect("solves")
        });
        objectives.push(sol.objective);
        t.row([
            restarts.to_string(),
            format!("{:.4}", sol.objective),
            stats.evaluations.to_string(),
            ms(elapsed),
        ]);
    }
    t.print();
    check.expect(
        "objective is monotone in restarts (same seed prefix)",
        objectives.windows(2).all(|w| w[1] >= w[0] - 1e-9),
    );

    // --- (3) iceberg min-support sweep.
    println!("\n=== ABLATION 3: iceberg min-support (Toy Story SM) ===\n");
    let idx: Vec<u32> = d.rating_range_for_item(toy).collect();
    let mut t = Table::new(["min support", "pool size", "cube ms", "SM objective"]);
    let mut pool_sizes = Vec::new();
    for min_support in [3usize, 5, 10, 20, 40, 80] {
        let (cube, cube_time) = time_once(|| {
            RatingCube::build(
                d,
                idx.clone(),
                CubeOptions {
                    min_support,
                    require_geo: false,
                    max_arity: 3,
                },
            )
        });
        pool_sizes.push(cube.len());
        let objective = if cube.is_empty() {
            f64::NAN
        } else {
            let problem = MiningProblem::new(&cube, 3, 0.15, 0.5);
            rhe::solve(&problem, Task::Similarity, &RheParams::default())
                .map(|s| s.objective)
                .unwrap_or(f64::NAN)
        };
        t.row([
            min_support.to_string(),
            cube.len().to_string(),
            ms(cube_time),
            format!("{objective:.4}"),
        ]);
    }
    t.print();
    check.expect(
        "pool size shrinks monotonically with min-support",
        pool_sizes.windows(2).all(|w| w[1] <= w[0]),
    );
    check.finish();
}
