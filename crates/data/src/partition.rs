//! Month-partition views over the rating column.
//!
//! The rating column is sorted by `(item, ts, user)`, so within one item's
//! contiguous slice each calendar month occupies a contiguous subrange.
//! That makes a *partition* a set of index ranges rather than a copy: the
//! timeline and the delta cube maintainer address per-month subsets of the
//! universe without re-streaming ratings, and ingest commits report which
//! month partitions they touched.

use crate::dataset::Dataset;
use crate::ids::ItemId;
use crate::time::MonthKey;
use std::collections::BTreeMap;
use std::ops::Range;

/// Per-month rating volume over a whole dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonthPartition {
    /// The calendar month.
    pub month: MonthKey,
    /// Number of ratings timestamped inside it.
    pub num_ratings: u64,
}

impl Dataset {
    /// Splits an item's contiguous rating slice into per-month subranges.
    ///
    /// Returned ranges are dense rating indexes (the same coordinate space
    /// as [`rating_range_for_item`](Dataset::rating_range_for_item)),
    /// ascending by month, and concatenate back to the item's full range.
    pub fn month_slices_for_item(&self, item: ItemId) -> Vec<(MonthKey, Range<u32>)> {
        let range = self.rating_range_for_item(item);
        let mut out: Vec<(MonthKey, Range<u32>)> = Vec::new();
        for idx in range {
            let month = self.ratings()[idx as usize].ts.month_key();
            match out.last_mut() {
                Some((m, r)) if *m == month => r.end = idx + 1,
                _ => out.push((month, idx..idx + 1)),
            }
        }
        out
    }

    /// Per-month rating counts over the whole dataset, ascending by month.
    ///
    /// This is the partition inventory `/api/v1/stats` reports and the
    /// ingest watermark is keyed against.
    pub fn month_partitions(&self) -> Vec<MonthPartition> {
        let mut counts: BTreeMap<MonthKey, u64> = BTreeMap::new();
        for r in self.ratings() {
            *counts.entry(r.ts.month_key()).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .map(|(month, num_ratings)| MonthPartition { month, num_ratings })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};

    #[test]
    fn month_slices_partition_each_item_range() {
        let d = generate(&SynthConfig::tiny(7)).unwrap();
        for item in d.items() {
            let full = d.rating_range_for_item(item.id);
            let slices = d.month_slices_for_item(item.id);
            let mut cursor = full.start;
            let mut prev: Option<MonthKey> = None;
            for (month, range) in &slices {
                assert_eq!(range.start, cursor, "contiguous");
                assert!(range.end > range.start);
                if let Some(p) = prev {
                    assert!(*month > p, "ascending months");
                }
                for idx in range.clone() {
                    assert_eq!(d.ratings()[idx as usize].ts.month_key(), *month);
                }
                cursor = range.end;
                prev = Some(*month);
            }
            assert_eq!(cursor, full.end, "slices cover the item range");
        }
    }

    #[test]
    fn month_partitions_sum_to_total() {
        let d = generate(&SynthConfig::tiny(7)).unwrap();
        let parts = d.month_partitions();
        assert!(!parts.is_empty());
        let total: u64 = parts.iter().map(|p| p.num_ratings).sum();
        assert_eq!(total, d.num_ratings() as u64);
        assert!(parts.windows(2).all(|w| w[0].month < w[1].month));
    }
}
