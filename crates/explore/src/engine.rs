//! The owned exploration engine — MapRat's public entry point.
//!
//! [`MapRatEngine`] bundles an [`Arc<Dataset>`], a miner and a sharded
//! result cache into a cheaply-clonable handle: clones share the dataset
//! and the cache, so a server can hand one clone to every worker thread
//! (or serve several datasets side by side) without leaking anything to
//! `'static`. It replaces the old lifetime-parameterized
//! `ExplorationSession<'a>`, which forced the demo binary to
//! `Box::leak` its dataset.
//!
//! Cache entries are keyed by the typed [`ExplainRequest`] itself —
//! its `Hash` encoding, not a hand-formatted string — so every settings
//! field (including the solver seed and the DM λ) participates in the
//! key by construction, and full request equality is verified on every
//! hit. [`RequestFingerprint`] is a compact 128-bit digest of that same
//! encoding, for logging and collision-regression testing.

use maprat_cache::{CacheStats, ShardedCache};
use maprat_core::query::ItemQuery;
use maprat_core::{Explanation, MineError, Miner, SearchSettings};
use maprat_cube::RatingCube;
use maprat_data::{Dataset, ItemId};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// One fully-specified explanation request: the query plus every search
/// setting. This is the unit the engine caches on and the unit the typed
/// HTTP API decodes into.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct ExplainRequest {
    /// The item query (terms, combination mode, time window).
    pub query: ItemQuery,
    /// The search settings (group budget, coverage, solver parameters…).
    pub settings: SearchSettings,
}

/// No field holds a NaN in practice (settings are range-validated at
/// construction boundaries), so the derived `PartialEq` is total here.
impl Eq for ExplainRequest {}

impl ExplainRequest {
    /// Bundles a query with settings.
    pub fn new(query: ItemQuery, settings: SearchSettings) -> Self {
        ExplainRequest { query, settings }
    }

    /// The 128-bit digest of this request (for logging and for the
    /// collision-regression tests; the cache keys on the request itself).
    ///
    /// Combines two structurally different 64-bit hashes (SipHash via
    /// [`DefaultHasher`] and FNV-1a) of the full `Hash` encoding, so
    /// requests differing in *any* field — including `rhe.seed` or
    /// `dm_lambda`, which the old string key silently carried in lossy
    /// `{:.4}` formatting — map to distinct digests.
    pub fn fingerprint(&self) -> RequestFingerprint {
        let mut sip = DefaultHasher::new();
        self.hash(&mut sip);
        let mut fnv = Fnv1a::default();
        self.hash(&mut fnv);
        RequestFingerprint(((sip.finish() as u128) << 64) | fnv.finish() as u128)
    }
}

/// A 128-bit digest of an [`ExplainRequest`], for logging and
/// collision-regression testing (the cache keys on the request itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestFingerprint(u128);

impl RequestFingerprint {
    /// The raw 128-bit value (e.g. for logging).
    pub fn as_u128(self) -> u128 {
        self.0
    }
}

impl std::fmt::Display for RequestFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// FNV-1a, 64-bit — the second, structurally independent leg of the
/// fingerprint (SipHash alone would make the digest as collision-prone
/// as a single 64-bit hash).
struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Everything one explained query produces: the user-facing explanation
/// plus the cube it was mined from (kept for drill-down and comparison,
/// which revisit covers).
#[derive(Debug)]
pub struct ExplorationResult {
    /// The explanation (both tabs).
    pub explanation: Explanation,
    /// The candidate cube (for drill-down / related-group statistics).
    pub cube: RatingCube,
    /// The matched items.
    pub items: Vec<ItemId>,
}

/// The shared state behind every engine clone.
///
/// The cache is keyed by the typed request itself: its `Hash` encoding —
/// the same bits [`ExplainRequest::fingerprint`] digests — selects the
/// shard and bucket, and full equality is verified on every hit, so a
/// fingerprint collision can never serve another request's result.
struct EngineInner {
    dataset: Arc<Dataset>,
    cache: ShardedCache<ExplainRequest, Result<ExplorationResult, MineError>>,
}

/// An owned, cheaply-clonable exploration engine: `Arc<Dataset>` + miner
/// + sharded result cache.
///
/// ```
/// use maprat_explore::MapRatEngine;
/// use maprat_core::query::ItemQuery;
/// use maprat_core::SearchSettings;
/// use maprat_data::synth::{generate, SynthConfig};
/// use std::sync::Arc;
///
/// let dataset = Arc::new(generate(&SynthConfig::tiny(42)).unwrap());
/// let engine = MapRatEngine::new(dataset);
/// let worker = engine.clone(); // shares the dataset and the cache
/// let settings = SearchSettings::builder().min_coverage(0.1).require_geo(false).build().unwrap();
/// let r = worker.explain_query(&ItemQuery::title("Toy Story"), &settings);
/// assert!(r.is_ok());
/// assert!(engine.cache_len() >= 1, "clones share one cache");
/// ```
#[derive(Clone)]
pub struct MapRatEngine {
    inner: Arc<EngineInner>,
}

impl MapRatEngine {
    /// Creates an engine with the default cache geometry (4 shards × 64).
    pub fn new(dataset: Arc<Dataset>) -> Self {
        Self::with_cache_size(dataset, 4, 64)
    }

    /// Creates an engine over a freshly-wrapped dataset (convenience for
    /// binaries that just generated or loaded one).
    pub fn from_dataset(dataset: Dataset) -> Self {
        Self::new(Arc::new(dataset))
    }

    /// Creates an engine with an explicit cache geometry.
    pub fn with_cache_size(dataset: Arc<Dataset>, shards: usize, per_shard: usize) -> Self {
        MapRatEngine {
            inner: Arc::new(EngineInner {
                dataset,
                cache: ShardedCache::new(shards, per_shard),
            }),
        }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.inner.dataset
    }

    /// A shareable handle to the dataset (e.g. for spawning other engines
    /// with different cache geometries over the same data).
    pub fn dataset_arc(&self) -> Arc<Dataset> {
        Arc::clone(&self.inner.dataset)
    }

    /// A borrow-scoped miner over the dataset (for uncached access, e.g.
    /// personalized mining that would thrash the shared cache).
    pub fn miner(&self) -> Miner<'_> {
        Miner::new(&self.inner.dataset)
    }

    /// Cache telemetry.
    pub fn cache_stats(&self) -> Arc<CacheStats> {
        self.inner.cache.stats()
    }

    /// Entries currently cached (across all shards).
    pub fn cache_len(&self) -> usize {
        self.inner.cache.len()
    }

    /// Explains a typed request, serving from the shared cache when
    /// possible.
    pub fn explain(&self, request: &ExplainRequest) -> Arc<Result<ExplorationResult, MineError>> {
        self.inner.cache.get_or_insert_with(request.clone(), || {
            let miner = self.miner();
            miner
                .build_cube(&request.query, &request.settings)
                .and_then(|(items, cube)| {
                    let explanation = miner.explain_cube(
                        &request.query,
                        items.clone(),
                        &cube,
                        &request.settings,
                    )?;
                    Ok(ExplorationResult {
                        explanation,
                        cube,
                        items,
                    })
                })
        })
    }

    /// Convenience: explains a query/settings pair.
    pub fn explain_query(
        &self,
        query: &ItemQuery,
        settings: &SearchSettings,
    ) -> Arc<Result<ExplorationResult, MineError>> {
        self.explain(&ExplainRequest::new(query.clone(), settings.clone()))
    }

    /// Pre-computes explanations for the `n` most-rated items (the paper's
    /// "aggressive … result pre-computation": popular movies answer at
    /// cache latency from the first request).
    ///
    /// Returns the number of items successfully pre-computed.
    pub fn precompute_popular(&self, n: usize, settings: &SearchSettings) -> usize {
        let dataset = self.dataset();
        let mut by_count: Vec<(usize, ItemId)> = dataset
            .items()
            .iter()
            .map(|it| (dataset.ratings_for_item(it.id).len(), it.id))
            .collect();
        by_count.sort_by_key(|&(n, id)| (std::cmp::Reverse(n), id));
        let mut ok = 0;
        for &(_, item) in by_count.iter().take(n) {
            let query = ItemQuery::title(&dataset.item(item).title);
            if self.explain_query(&query, settings).is_ok() {
                ok += 1;
            }
        }
        ok
    }

    /// Drops all cached results (the dataset changed, settings sweep, …).
    pub fn clear_cache(&self) {
        self.inner.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maprat_data::synth::{generate, SynthConfig};

    fn engine() -> MapRatEngine {
        MapRatEngine::from_dataset(generate(&SynthConfig::tiny(111)).unwrap())
    }

    fn settings() -> SearchSettings {
        SearchSettings::default()
            .with_min_coverage(0.1)
            .with_require_geo(false)
    }

    #[test]
    fn repeated_queries_hit_cache() {
        let engine = engine();
        let q = ItemQuery::title("Toy Story");
        let s = settings();
        let first = engine.explain_query(&q, &s);
        assert!(first.is_ok());
        let misses_after_first = engine.cache_stats().misses();
        let second = engine.explain_query(&q, &s);
        assert!(second.is_ok());
        assert_eq!(
            engine.cache_stats().misses(),
            misses_after_first,
            "second query must not miss"
        );
        assert!(engine.cache_stats().hits() >= 1);
        assert!(Arc::ptr_eq(&first, &second), "same cached value");
    }

    #[test]
    fn clones_share_dataset_and_cache() {
        let engine = engine();
        let clone = engine.clone();
        assert!(std::ptr::eq(engine.dataset(), clone.dataset()));
        let q = ItemQuery::title("Toy Story");
        let s = settings();
        let via_original = engine.explain_query(&q, &s);
        let via_clone = clone.explain_query(&q, &s);
        assert!(
            Arc::ptr_eq(&via_original, &via_clone),
            "clone must serve from the shared cache"
        );
        assert!(clone.cache_stats().hits() >= 1);
    }

    #[test]
    fn settings_change_invalidates_key() {
        let engine = engine();
        let q = ItemQuery::title("Toy Story");
        let a = engine.explain_query(&q, &settings());
        let b = engine.explain_query(&q, &settings().with_max_groups(2));
        assert!(
            !Arc::ptr_eq(&a, &b),
            "different settings → different entries"
        );
    }

    #[test]
    fn errors_are_cached_too() {
        let engine = engine();
        let q = ItemQuery::title("No Such Movie");
        let r = engine.explain_query(&q, &settings());
        assert!(matches!(&*r, Err(MineError::NoMatchingItems(_))));
        let _ = engine.explain_query(&q, &settings());
        assert!(engine.cache_stats().hits() >= 1, "negative caching");
    }

    #[test]
    fn precompute_warms_cache() {
        let engine = engine();
        let s = settings();
        let warmed = engine.precompute_popular(3, &s);
        assert!(warmed >= 1);
        let misses_before = engine.cache_stats().misses();
        // The most-rated item is planted Toy Story at tiny scale; query it.
        let top = engine
            .dataset()
            .items()
            .iter()
            .max_by_key(|it| engine.dataset().ratings_for_item(it.id).len())
            .unwrap()
            .title
            .clone();
        let _ = engine.explain_query(&ItemQuery::title(&top), &s);
        assert_eq!(engine.cache_stats().misses(), misses_before);
    }

    #[test]
    fn clear_cache_forces_recompute() {
        let engine = engine();
        let q = ItemQuery::title("Toy Story");
        let s = settings();
        let _ = engine.explain_query(&q, &s);
        engine.clear_cache();
        let misses_before = engine.cache_stats().misses();
        let _ = engine.explain_query(&q, &s);
        assert_eq!(engine.cache_stats().misses(), misses_before + 1);
    }

    #[test]
    fn fingerprint_distinguishes_time_windows() {
        use maprat_data::{TimeRange, Timestamp};
        let s = settings();
        let q1 = ItemQuery::title("Toy Story");
        let q2 =
            ItemQuery::title("Toy Story").within(TimeRange::until(Timestamp::from_ymd(2001, 1, 1)));
        assert_ne!(
            ExplainRequest::new(q1, s.clone()).fingerprint(),
            ExplainRequest::new(q2, s).fingerprint()
        );
    }

    #[test]
    fn fingerprint_covers_seed_and_lambda() {
        // Regression: the old string key formatted dm_lambda with `{:.4}`
        // and could be regenerated without the seed; the typed fingerprint
        // must separate requests differing only in those fields.
        let q = ItemQuery::title("Toy Story");
        let base = ExplainRequest::new(q.clone(), SearchSettings::default());

        let mut seeded = SearchSettings::default();
        seeded.rhe.seed ^= 0x1;
        assert_ne!(
            base.fingerprint(),
            ExplainRequest::new(q.clone(), seeded).fingerprint(),
            "rhe.seed must participate in the cache key"
        );

        let mut lambda = SearchSettings::default();
        lambda.dm_lambda += 1e-9; // far below the old {:.4} resolution
        assert_ne!(
            base.fingerprint(),
            ExplainRequest::new(q.clone(), lambda).fingerprint(),
            "dm_lambda must participate at full precision"
        );

        // And equal requests agree, so caching still works.
        assert_eq!(
            base.fingerprint(),
            ExplainRequest::new(q, SearchSettings::default()).fingerprint()
        );
    }
}
