//! Data-cube group machinery for MapRat.
//!
//! Following §2.1 of the paper, a *group* is the set of rating tuples
//! describable by a conjunction of reviewer attribute/value pairs — a cell
//! of the data cube of Gray et al. \[3\] over the reviewer schema
//! `{age, gender, occupation, state}`. Given the input rating set `R_I` of
//! a query, this crate materializes every non-empty group above a support
//! threshold (an *iceberg cube*), each with:
//!
//! * a rendered, human-meaningful label ("male reviewers from California"),
//! * its cover — the set of `R_I` positions it contains — as a fast
//!   [`bitmap::Bitmap`],
//! * its aggregate [`maprat_data::RatingStats`].
//!
//! The mining layer (`maprat-core`) treats these candidates as the search
//! space of the SM/DM optimization problems.

#![warn(missing_docs)]

pub mod bitmap;
pub mod builder;
pub mod delta;
pub mod derive;
pub mod drill;
pub mod group;
pub mod kernels;
pub mod lattice;
#[doc(hidden)]
pub mod oracle;

pub use bitmap::Bitmap;
pub use builder::{CandidateGroup, CubeOptions, RatingCube};
pub use delta::{AppendDelta, ProfileSummary};
pub use group::GroupDesc;
pub use lattice::{attribute_subsets, Cuboid};
