//! The embedded single-page front-end — the Figure-1 query form plus the
//! Figure-2/Figure-3 result views, in plain HTML + vanilla JS.

/// The index page.
pub const INDEX: &str = r##"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>MapRat — Meaningful Explanation of Collaborative Ratings</title>
<style>
  body { font-family: Helvetica, Arial, sans-serif; margin: 1.5rem; color: #222; }
  h1 { font-size: 1.4rem; }
  fieldset { border: 1px solid #bbb; border-radius: 6px; margin-bottom: 1rem; }
  label { margin-right: .8rem; }
  input, select { margin-right: 1rem; }
  #tabs button { padding: .4rem 1rem; border: 1px solid #888; background: #eee; cursor: pointer; }
  #tabs button.active { background: #2c7fb8; color: white; }
  #map { margin-top: .6rem; }
  #groups li { cursor: pointer; margin: .2rem 0; }
  #groups li:hover { text-decoration: underline; }
  #detail, #timeline { background: #f7f7f7; border: 1px solid #ddd; padding: .6rem; margin-top: .8rem; white-space: pre-wrap; font-family: monospace; font-size: .85rem; }
  .err { color: #a00; }
</style>
</head>
<body>
<h1>MapRat — explore &amp; explain collaborative ratings</h1>
<fieldset>
  <legend>Query (Figure 1)</legend>
  <label>Search <input id="q" size="28" value="Toy Story"></label>
  <label>Type
    <select id="type">
      <option value="movie">Movie Name</option>
      <option value="contains">Title contains</option>
      <option value="actor">Actor</option>
      <option value="director">Director</option>
      <option value="genre">Genre</option>
    </select>
  </label>
  <label>Max groups <input id="k" type="number" value="3" min="1" max="8" style="width:3rem"></label>
  <label>Coverage <input id="coverage" type="number" value="0.25" step="0.05" min="0" max="1" style="width:4rem"></label>
  <label>From <input id="from" size="7" placeholder="YYYY-MM"></label>
  <label>To <input id="to" size="7" placeholder="YYYY-MM"></label>
  <button id="go">Explain Ratings</button>
</fieldset>
<div id="summary"></div>
<div id="tabs">
  <button id="tab-sm" class="active">Similarity Mining</button>
  <button id="tab-dm">Diversity Mining</button>
  <button id="tab-tl">Time slider</button>
</div>
<div id="map"></div>
<ol id="groups"></ol>
<div id="detail" hidden></div>
<div id="timeline" hidden></div>
<script>
"use strict";
let task = "sm";
const $ = id => document.getElementById(id);

function params() {
  const p = new URLSearchParams();
  p.set("q", $("q").value);
  p.set("type", $("type").value);
  p.set("k", $("k").value);
  p.set("coverage", $("coverage").value);
  if ($("from").value) p.set("from", $("from").value);
  if ($("to").value) p.set("to", $("to").value);
  return p;
}

async function explain() {
  $("summary").textContent = "mining…";
  $("detail").hidden = true;
  $("timeline").hidden = true;
  const r = await fetch("/api/v1/explain?" + params());
  const body = await r.json();
  if (!r.ok) {
    $("summary").innerHTML = '<span class="err">' + (body.error ? body.error.message : r.status) + "</span>";
    $("map").innerHTML = ""; $("groups").innerHTML = "";
    return;
  }
  $("summary").textContent =
    `query: ${body.query} — ${body.items} item(s), ${body.ratings} ratings, ` +
    `overall average ${body.overall_mean ? body.overall_mean.toFixed(2) : "—"}`;
  const svg = await fetch("/map.svg?" + params() + "&task=" + task);
  $("map").innerHTML = await svg.text();
  const tab = task === "dm" ? body.diversity : body.similarity;
  $("groups").innerHTML = "";
  tab.groups.forEach((g, i) => {
    const li = document.createElement("li");
    li.textContent = `${g.label} — avg ${g.mean.toFixed(2)} (n=${g.support}, ${(g.share * 100).toFixed(1)}% of ratings)`;
    li.onclick = () => detail(i);
    $("groups").appendChild(li);
  });
}

async function detail(idx) {
  const r = await fetch(`/api/v1/detail?${params()}&task=${task}&idx=${idx}`);
  const d = await r.json();
  const rr = await fetch(`/api/v1/drill?${params()}&task=${task}&idx=${idx}`);
  let lines = [`=== ${d.label} ===`,
    `n=${d.count} avg ${d.mean.toFixed(2)} vs overall ${d.overall_mean.toFixed(2)}`,
    `histogram (1..5): ${d.histogram.join(" ")}`,
    "related groups:"];
  (d.related || []).forEach(g =>
    lines.push(`  [${g.relation}] ${g.label} — avg ${g.mean ? g.mean.toFixed(2) : "—"} (n=${g.count})`));
  if (rr.ok) {
    const dr = await rr.json();
    lines.push("city drill-down:");
    dr.cities.filter(c => c.count > 0)
      .sort((a, b) => b.count - a.count)
      .forEach(c => lines.push(`  ${c.city}: avg ${c.mean.toFixed(2)} (n=${c.count})`));
  }
  $("detail").textContent = lines.join("\n");
  $("detail").hidden = false;
}

async function timeline() {
  $("timeline").textContent = "sweeping time windows…";
  $("timeline").hidden = false;
  const r = await fetch(`/api/v1/timeline?${params()}&window=6&step=6`);
  const body = await r.json();
  if (!r.ok) { $("timeline").textContent = body.error ? body.error.message : r.status; return; }
  $("timeline").textContent = body.points.map(p =>
    `${p.from}..${p.to}  n=${String(p.ratings).padStart(5)}  mean=${p.mean ? p.mean.toFixed(2) : "  — "}  ` +
    p.groups.map(g => `${g.label} (${g.mean.toFixed(2)})`).join("; ")
  ).join("\n");
}

$("go").onclick = explain;
$("tab-sm").onclick = () => { task = "sm"; setTab("tab-sm"); explain(); };
$("tab-dm").onclick = () => { task = "dm"; setTab("tab-dm"); explain(); };
$("tab-tl").onclick = () => { setTab("tab-tl"); timeline(); };
function setTab(id) {
  for (const b of document.querySelectorAll("#tabs button")) b.classList.remove("active");
  $(id).classList.add("active");
}
explain();
</script>
</body>
</html>
"##;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_contains_figure1_controls() {
        assert!(INDEX.contains("Explain Ratings"));
        assert!(INDEX.contains("Movie Name"));
        assert!(INDEX.contains("Max groups"));
        assert!(INDEX.contains("Coverage"));
        assert!(INDEX.contains("Similarity Mining"));
        assert!(INDEX.contains("Diversity Mining"));
        assert!(INDEX.contains("Time slider"));
    }

    #[test]
    fn page_is_self_contained() {
        assert!(!INDEX.contains("http://"), "no external resources");
        assert!(!INDEX.contains("https://"), "no external resources");
    }
}
