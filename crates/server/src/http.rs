//! A small HTTP/1.1 server on `std::net` with a crossbeam worker pool.
//!
//! Scope: exactly what the demo front-end needs — `GET` requests with
//! percent-decoded query strings, `POST` requests with `Content-Length`
//! bodies (the typed JSON API), fixed-length responses, graceful
//! shutdown. Not a general-purpose web server. Method policy (which
//! routes accept which verbs) lives in the handler, so error responses
//! can use the application's structured shape.

use crossbeam::channel::{bounded, Sender};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// HTTP method (`GET`, …).
    pub method: String,
    /// Decoded path, without the query string.
    pub path: String,
    /// Decoded query parameters (last value wins).
    pub query: HashMap<String, String>,
    /// Raw header lines, lower-cased names.
    pub headers: HashMap<String, String>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// A query parameter.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }

    /// A query parameter parsed to a type.
    pub fn param_as<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.param(name)?.parse().ok()
    }

    /// The body as UTF-8 text (lossy).
    pub fn body_text(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }
}

/// A response to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// 200 with a JSON body.
    pub fn json(body: String) -> Response {
        Response {
            status: 200,
            content_type: "application/json; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    /// 200 with an HTML body.
    pub fn html(body: String) -> Response {
        Response {
            status: 200,
            content_type: "text/html; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    /// 200 with an SVG body.
    pub fn svg(body: String) -> Response {
        Response {
            status: 200,
            content_type: "image/svg+xml",
            body: body.into_bytes(),
        }
    }

    /// An error response with a plain-text body.
    pub fn error(status: u16, message: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: message.into().into_bytes(),
        }
    }

    fn status_text(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            _ => "Internal Server Error",
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.status_text(),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Percent-decodes a URL component (`%41` → `A`, `+` → space).
pub fn percent_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                // Need two ASCII hex digits after '%'; fall through to a
                // literal '%' when they are absent or invalid. Checked on
                // raw bytes — the following characters may be multi-byte.
                if i + 2 < bytes.len()
                    && bytes[i + 1].is_ascii_hexdigit()
                    && bytes[i + 2].is_ascii_hexdigit()
                {
                    let hex = |b: u8| (b as char).to_digit(16).expect("hex checked") as u8;
                    out.push(hex(bytes[i + 1]) * 16 + hex(bytes[i + 2]));
                    i += 3;
                } else {
                    out.push(b'%');
                    i += 1;
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parses a query string into a map.
pub fn parse_query(query: &str) -> HashMap<String, String> {
    let mut map = HashMap::new();
    for pair in query.split('&') {
        if pair.is_empty() {
            continue;
        }
        let (k, v) = match pair.split_once('=') {
            Some((k, v)) => (k, v),
            None => (pair, ""),
        };
        map.insert(percent_decode(k), percent_decode(v));
    }
    map
}

/// Upper bound on accepted request bodies (the typed API's JSON requests
/// are tiny; anything bigger is abuse).
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Parses an HTTP/1.1 request (head plus `Content-Length` body) from a
/// buffered stream.
pub fn parse_request(reader: &mut impl BufRead) -> Result<Request, String> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read error: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("missing method")?.to_string();
    let target = parts.next().ok_or("missing target")?;
    let version = parts.next().ok_or("missing version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported version {version}"));
    }
    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut headers = HashMap::new();
    loop {
        let mut hline = String::new();
        reader
            .read_line(&mut hline)
            .map_err(|e| format!("read error: {e}"))?;
        let trimmed = hline.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            headers.insert(name.trim().to_lowercase(), value.trim().to_string());
        }
    }
    let mut body = Vec::new();
    if let Some(len_raw) = headers.get("content-length") {
        let len: usize = len_raw
            .parse()
            .map_err(|_| format!("bad content-length {len_raw:?}"))?;
        if len > MAX_BODY_BYTES {
            return Err(format!("body of {len} bytes exceeds {MAX_BODY_BYTES}"));
        }
        body.resize(len, 0);
        reader
            .read_exact(&mut body)
            .map_err(|e| format!("short body: {e}"))?;
    }
    Ok(Request {
        method,
        path: percent_decode(path_raw),
        query: parse_query(query_raw),
        headers,
        body,
    })
}

/// The request handler signature.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// A running server (worker pool + acceptor thread).
pub struct HttpServer {
    port: u16,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    _conn_tx: Sender<TcpStream>,
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `handler` on `workers` threads.
    pub fn start(addr: &str, workers: usize, handler: Handler) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let port = listener.local_addr()?.port();
        let shutdown = Arc::new(AtomicBool::new(false));
        let (conn_tx, conn_rx) = bounded::<TcpStream>(64);

        let worker_handles: Vec<JoinHandle<()>> = (0..workers.max(1))
            .map(|_| {
                let rx = conn_rx.clone();
                let handler = Arc::clone(&handler);
                std::thread::spawn(move || {
                    while let Ok(mut stream) = rx.recv() {
                        let mut reader = BufReader::new(match stream.try_clone() {
                            Ok(s) => s,
                            Err(_) => continue,
                        });
                        let response = match parse_request(&mut reader) {
                            Ok(req) => handler(&req),
                            Err(e) => Response::error(400, e),
                        };
                        let _ = response.write_to(&mut stream);
                    }
                })
            })
            .collect();

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let tx = conn_tx.clone();
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                }
            })
        };

        Ok(HttpServer {
            port,
            shutdown,
            acceptor: Some(acceptor),
            workers: worker_handles,
            _conn_tx: conn_tx,
        })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Requests shutdown and joins the acceptor (workers drain and exit
    /// when the connection channel closes on drop).
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Kick the blocking accept with a dummy connection.
        let _ = TcpStream::connect(("127.0.0.1", self.port));
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
        // Close the channel so workers exit, then join them.
        // (The Sender field drops after this body; workers join on a
        // best-effort basis via detached threads.)
        self.workers.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(port: u16, target: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
        write!(stream, "GET {target} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        let status: u16 = buf
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap();
        let body = buf.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
        (status, body)
    }

    fn echo_server() -> HttpServer {
        HttpServer::start(
            "127.0.0.1:0",
            2,
            Arc::new(|req: &Request| {
                let q = req.param("q").unwrap_or("-");
                Response::json(format!("{{\"path\":\"{}\",\"q\":\"{}\"}}", req.path, q))
            }),
        )
        .unwrap()
    }

    #[test]
    fn serves_and_parses_query() {
        let server = echo_server();
        let (status, body) = get(server.port(), "/api/test?q=Toy%20Story&x=1");
        assert_eq!(status, 200);
        assert!(body.contains("\"q\":\"Toy Story\""));
        assert!(body.contains("\"path\":\"/api/test\""));
    }

    #[test]
    fn plus_decodes_to_space() {
        let server = echo_server();
        let (_, body) = get(server.port(), "/x?q=Tom+Hanks");
        assert!(body.contains("Tom Hanks"));
    }

    #[test]
    fn post_body_reaches_handler() {
        let server = HttpServer::start(
            "127.0.0.1:0",
            1,
            Arc::new(|req: &Request| {
                Response::json(format!(
                    "{{\"method\":\"{}\",\"body\":\"{}\"}}",
                    req.method,
                    req.body_text()
                ))
            }),
        )
        .unwrap();
        let mut stream = TcpStream::connect(("127.0.0.1", server.port())).unwrap();
        let body = "hello=world";
        write!(
            stream,
            "POST /x HTTP/1.1\r\nHost: l\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 200"), "{buf}");
        assert!(buf.contains("\"method\":\"POST\""));
        assert!(buf.contains("hello=world"));
    }

    #[test]
    fn oversized_body_rejected() {
        let server = echo_server();
        let mut stream = TcpStream::connect(("127.0.0.1", server.port())).unwrap();
        write!(
            stream,
            "POST /x HTTP/1.1\r\nHost: l\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        )
        .unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");
    }

    #[test]
    fn malformed_request_is_400() {
        let server = echo_server();
        let mut stream = TcpStream::connect(("127.0.0.1", server.port())).unwrap();
        write!(stream, "GARBAGE\r\n\r\n").unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");
    }

    #[test]
    fn concurrent_requests() {
        let server = echo_server();
        let port = server.port();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let (status, body) = get(port, &format!("/t?q=v{i}"));
                    assert_eq!(status, 200);
                    assert!(body.contains(&format!("v{i}")));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn percent_decode_edge_cases() {
        assert_eq!(percent_decode("a%20b"), "a b");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("caf%C3%A9"), "café");
    }

    #[test]
    fn parse_query_pairs() {
        let q = parse_query("a=1&b=&c&a=2");
        assert_eq!(q.get("a").map(String::as_str), Some("2"));
        assert_eq!(q.get("b").map(String::as_str), Some(""));
        assert_eq!(q.get("c").map(String::as_str), Some(""));
    }

    #[test]
    fn shutdown_stops_accepting() {
        let mut server = echo_server();
        let port = server.port();
        server.shutdown();
        // After shutdown the acceptor is gone; connects may succeed at the
        // TCP level (backlog) but never get served. Just assert shutdown
        // returned and a follow-up shutdown is a no-op.
        server.shutdown();
        let _ = port;
    }
}
