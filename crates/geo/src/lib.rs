//! US geography substrate and choropleth rendering for MapRat.
//!
//! The paper's Visualization module (§2.3) renders each interpretation as a
//! Choropleth map shaded on a red→green Likert scale by average group
//! rating, annotated with icons for the non-geo attribute/value pairs and a
//! colored pin encoding the age bucket. This crate reproduces that channel
//! with two dependency-free back-ends:
//!
//! * [`svg`] — a tile-grid US map (one tile per state, the layout used by
//!   newsroom graphics) rendered to standalone SVG;
//! * [`ascii`] — the same map for terminals, with ANSI-256 shading.
//!
//! [`tiles`] provides the layout, [`color`] the Likert scale, [`icons`] the
//! attribute glyphs, and [`choropleth`] the render-model both back-ends
//! consume.

#![warn(missing_docs)]

pub mod ascii;
pub mod choropleth;
pub mod citymap;
pub mod color;
pub mod icons;
pub mod svg;
pub mod tiles;

pub use choropleth::{Choropleth, StateShade};
pub use color::{likert_color, Rgb};
pub use tiles::{tile_position, GRID_COLS, GRID_ROWS};
