//! Sequence helpers: the [`SliceRandom`] extension trait.

use crate::Rng;

/// Random operations on slices (the `choose`/`shuffle` subset).
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// A uniformly random element, or `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(4);
        let v: Vec<u32> = Vec::new();
        assert!(v.choose(&mut rng).is_none());
        assert!([7u8].choose(&mut rng).is_some());
    }
}
