//! EXT-SCALING — end-to-end explain latency as `|R_I|` and the candidate
//! pool grow, plus the cube-materialization share of the cost.
//!
//! Shape expectations: cube build is linear-ish in `|R_I|`; RHE cost grows
//! with the pool (universe-sized bitmap unions dominate); total stays
//! interactive at MovieLens scale.
//!
//! Run: `cargo run --release -p maprat-bench --bin exp_scaling [--check]`

use maprat_bench::timing::{ms, time_once};
use maprat_bench::{dataset, table::Table, ShapeCheck};
use maprat_core::{rhe, MiningProblem, RheParams, Task};
use maprat_cube::{CubeOptions, RatingCube};

fn main() {
    let mut check = ShapeCheck::new();
    let d = dataset();
    let item = d.find_title("Toy Story").expect("planted");
    let full: Vec<u32> = d.rating_range_for_item(item).collect();

    // Grow |R_I| by prefix-slicing the item's (time-ordered) ratings, then
    // top up with other items' ratings for the larger sizes.
    let mut universe: Vec<u32> = full.clone();
    for other in d.items().iter().take(400) {
        if other.id != item {
            universe.extend(d.rating_range_for_item(other.id));
        }
    }
    let sizes: Vec<usize> = [500usize, 2_000, 8_000, 32_000, 128_000, 512_000]
        .into_iter()
        .filter(|&n| n <= universe.len())
        .collect();

    println!(
        "=== EXT-SCALING: cost vs |R_I| (universe available: {}) ===\n",
        universe.len()
    );
    let mut t = Table::new([
        "|R_I|",
        "pool",
        "cube ms",
        "RHE(SM) ms",
        "RHE(DM) ms",
        "total ms",
    ]);
    let mut rows: Vec<(usize, f64)> = Vec::new();

    for &n in &sizes {
        let slice: Vec<u32> = universe[..n].to_vec();
        let (cube, cube_time) = time_once(|| {
            RatingCube::build(
                d,
                slice.clone(),
                CubeOptions {
                    min_support: 5.max(n / 2000),
                    require_geo: false,
                    max_arity: 2,
                },
            )
        });
        let problem = MiningProblem::new(&cube, 3, 0.15, 0.5);
        let params = RheParams::default();
        let (_, sm_time) = time_once(|| rhe::solve(&problem, Task::Similarity, &params));
        let (_, dm_time) = time_once(|| rhe::solve(&problem, Task::Diversity, &params));
        let total = cube_time + sm_time + dm_time;
        rows.push((n, total.as_secs_f64()));
        t.row([
            n.to_string(),
            cube.len().to_string(),
            ms(cube_time),
            ms(sm_time),
            ms(dm_time),
            ms(total),
        ]);
    }
    t.print();

    // Shape checks: super-linear blowup would break interactivity.
    if rows.len() >= 3 {
        let (n0, t0) = rows[0];
        let (n_last, t_last) = rows[rows.len() - 1];
        let growth = (t_last / t0.max(1e-9)) / (n_last as f64 / n0 as f64);
        println!("\ncost growth per unit of |R_I| growth: {growth:.2}× (≈1 is linear)");
        check.expect(
            "total cost grows at most ~quadratically in |R_I|",
            growth < (n_last as f64 / n0 as f64), // strictly below n² behaviour
        );
    }
    check.expect(
        "largest configuration stays interactive (< 5 s)",
        rows.last().is_some_and(|&(_, t)| t < 5.0),
    );
    check.finish();
}
