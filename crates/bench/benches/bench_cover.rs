//! Criterion bench: ablation 4 — bitmap covers vs sorted-vector covers for
//! the mining loop's hot operation (union cardinality of k covers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maprat_cube::Bitmap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Sorted-vector union-count baseline (k-way merge).
fn sorted_union_count(covers: &[Vec<u32>]) -> usize {
    let mut cursors = vec![0usize; covers.len()];
    let mut count = 0usize;
    loop {
        let mut min: Option<u32> = None;
        for (c, cover) in covers.iter().enumerate() {
            if let Some(&v) = cover.get(cursors[c]) {
                min = Some(min.map_or(v, |m: u32| m.min(v)));
            }
        }
        let Some(v) = min else { break };
        count += 1;
        for (c, cover) in covers.iter().enumerate() {
            if cover.get(cursors[c]) == Some(&v) {
                cursors[c] += 1;
            }
        }
    }
    count
}

fn bench_cover(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let universe = 50_000usize;

    let mut group = c.benchmark_group("cover_union3");
    for &density in &[0.01f64, 0.1, 0.3] {
        let positions: Vec<Vec<u32>> = (0..3)
            .map(|_| {
                let mut v: Vec<u32> = (0..universe as u32)
                    .filter(|_| rng.gen_bool(density))
                    .collect();
                v.sort_unstable();
                v
            })
            .collect();
        let bitmaps: Vec<Bitmap> = positions
            .iter()
            .map(|p| Bitmap::from_positions(universe, p.iter().map(|&x| x as usize)))
            .collect();

        // Consistency guard: both representations agree.
        let mut union = bitmaps[0].clone();
        union.union_with(&bitmaps[1]);
        union.union_with(&bitmaps[2]);
        assert_eq!(union.count(), sorted_union_count(&positions));

        group.bench_with_input(
            BenchmarkId::new("bitmap", format!("{density}")),
            &bitmaps,
            |b, bm| {
                b.iter(|| {
                    let mut u = bm[0].clone();
                    u.union_with(&bm[1]);
                    u.union_with(&bm[2]);
                    black_box(u.count())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sorted_vec", format!("{density}")),
            &positions,
            |b, p| b.iter(|| black_box(sorted_union_count(p))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cover);
criterion_main!(benches);
