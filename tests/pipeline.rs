//! End-to-end integration: synthetic dataset → query → mining →
//! geo-visualization → HTTP demo server, all through the public facade.

use maprat::core::query::ItemQuery;
use maprat::core::{Miner, SearchSettings};
use maprat::data::synth::{generate, SynthConfig};
use maprat::data::Dataset;
use maprat::explore::exploration_maps;
use maprat::geo::ascii::{self, AsciiOptions};
use maprat::geo::svg::{render as render_svg, SvgOptions};
use maprat::server::{AppState, HttpServer, Json};
use maprat::MapRatEngine;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};

fn dataset() -> Arc<Dataset> {
    static DATASET: OnceLock<Arc<Dataset>> = OnceLock::new();
    Arc::clone(DATASET.get_or_init(|| Arc::new(generate(&SynthConfig::small(42)).unwrap())))
}

fn settings() -> SearchSettings {
    SearchSettings::default().with_min_coverage(0.2)
}

#[test]
fn mine_render_and_serve() {
    let d = dataset();
    let miner = Miner::new(&d);
    let explanation = miner
        .explain(&ItemQuery::title("Toy Story"), &settings())
        .expect("planted movie explains");
    assert_eq!(explanation.similarity.groups.len(), 3);

    // Geo rendering.
    let (sm, dm) = exploration_maps(&explanation);
    let svg = render_svg(&sm, &SvgOptions::default());
    assert!(svg.contains("Similarity Mining"));
    assert!(svg.len() > 5_000, "all 51 tiles rendered");
    let text = ascii::render(
        &dm,
        &AsciiOptions {
            color: false,
            caption: true,
        },
    );
    assert!(text.contains("Diversity Mining"));

    // HTTP round trip against the same dataset (the versioned route).
    let state = AppState::new(MapRatEngine::new(dataset()));
    let server = HttpServer::start("127.0.0.1:0", 2, state.into_handler()).unwrap();
    let mut stream = TcpStream::connect(("127.0.0.1", server.port())).unwrap();
    write!(
        stream,
        "GET /api/v1/explain?q=Toy+Story&coverage=0.2 HTTP/1.1\r\nHost: l\r\n\r\n"
    )
    .unwrap();
    let mut buf = String::new();
    stream.read_to_string(&mut buf).unwrap();
    assert!(buf.starts_with("HTTP/1.1 200"), "{buf}");
    let body = buf.split("\r\n\r\n").nth(1).unwrap();
    let v = Json::parse(body).unwrap();
    // The served result and the direct mining agree on the rating volume.
    assert_eq!(
        v.get("ratings").unwrap().as_f64().unwrap() as usize,
        explanation.num_ratings
    );
    let served_groups = v
        .get("similarity")
        .unwrap()
        .get("groups")
        .unwrap()
        .len()
        .unwrap();
    assert_eq!(served_groups, explanation.similarity.groups.len());
}

#[test]
fn cache_makes_repeat_queries_cheap() {
    let engine = MapRatEngine::new(dataset());
    let q = ItemQuery::title("Forrest Gump");
    let s = settings();

    let t0 = std::time::Instant::now();
    let first = engine.explain_query(&q, &s);
    assert!(first.is_ok());
    let cold = t0.elapsed();

    let t1 = std::time::Instant::now();
    for _ in 0..50 {
        let again = engine.explain_query(&q, &s);
        assert!(again.is_ok());
    }
    let warm_each = t1.elapsed() / 50;

    // The paper's latency claim, as an order-of-magnitude assertion (kept
    // loose: CI machines vary).
    assert!(
        warm_each < cold,
        "cached {warm_each:?} should beat cold {cold:?}"
    );
    assert!(engine.cache_stats().hits() >= 50);
}

#[test]
fn facade_reexports_are_usable() {
    // Each workspace crate is reachable through the facade.
    let d = dataset();
    let _cube = maprat::cube::RatingCube::build(
        &d,
        d.rating_range_for_item(d.find_title("Jaws").unwrap())
            .collect(),
        maprat::cube::CubeOptions::default(),
    );
    let _color = maprat::geo::likert_color(4.2);
    let _lru: maprat::cache::LruCache<u32, u32> = maprat::cache::LruCache::new(4);
    let _json = maprat::server::Json::Null.render();
}

#[test]
fn movielens_loader_integrates_with_mining() {
    // Write a micro MovieLens directory, load it, and mine it — proving
    // the real-data path works end to end.
    let dir = std::env::temp_dir().join(format!("maprat-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut users = String::new();
    let mut ratings = String::new();
    // 30 users: CA males love movie 1 (score 5), NY females hate it
    // (score 1), everyone rates movie 2 as 3.
    for i in 1..=30 {
        let (gender, zip) = if i % 2 == 0 {
            ("M", "94103")
        } else {
            ("F", "10001")
        };
        users.push_str(&format!("{i}::{gender}::25::12::{zip}\n"));
        let score = if i % 2 == 0 { 5 } else { 1 };
        ratings.push_str(&format!("{i}::1::{score}::96530000{}\n", i % 10));
        ratings.push_str(&format!("{i}::2::3::96530000{}\n", i % 10));
    }
    std::fs::write(dir.join("users.dat"), users).unwrap();
    std::fs::write(
        dir.join("movies.dat"),
        "1::Split Opinion (1999)::Drama\n2::Consensus (1999)::Comedy\n",
    )
    .unwrap();
    std::fs::write(dir.join("ratings.dat"), ratings).unwrap();

    let loaded = maprat::data::loader::load_movielens_dir(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let miner = Miner::new(&loaded);
    let mut s = SearchSettings::default()
        .with_min_coverage(0.5)
        .with_max_groups(2);
    s.min_support = 3;
    let e = miner
        .explain(&ItemQuery::title("Split Opinion"), &s)
        .expect("loaded data mines");
    // DM must find the planted controversy.
    let means: Vec<f64> = e
        .diversity
        .groups
        .iter()
        .map(|g| g.stats.mean().unwrap())
        .collect();
    let spread = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - means.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread > 3.0, "CA-male 5s vs NY-female 1s, got {means:?}");
}
