//! Criterion bench: RHE solve cost per task and candidate-pool size
//! (EXT-QUALITY / EXT-SCALING companion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maprat_bench::dataset;
use maprat_core::{rhe, MiningProblem, RheParams, Task};
use maprat_cube::{CubeOptions, RatingCube};
use std::hint::black_box;

fn bench_rhe(c: &mut Criterion) {
    let d = dataset();
    let item = d.find_title("Toy Story").expect("planted");
    let idx: Vec<u32> = d.rating_range_for_item(item).collect();

    let mut group = c.benchmark_group("rhe_solve");
    group.sample_size(10);
    for (label, min_support, max_arity) in [
        ("pool_s", 40usize, 1usize),
        ("pool_m", 10, 2),
        ("pool_l", 5, 3),
    ] {
        let cube = RatingCube::build(
            d,
            idx.clone(),
            CubeOptions {
                min_support,
                require_geo: false,
                max_arity,
            },
        );
        let problem = MiningProblem::new(&cube, 3, 0.15, 0.5);
        let params = RheParams::default();
        for task in Task::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("{task:?}"), format!("{label}_{}", cube.len())),
                &problem,
                |b, p| b.iter(|| black_box(rhe::solve(p, task, &params))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_rhe);
criterion_main!(benches);
