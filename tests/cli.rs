//! Integration tests driving the compiled `maprat` CLI binary end to end.

use std::process::Command;

fn maprat(args: &[&str]) -> (bool, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_maprat"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = maprat(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("explain"));
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let (ok, _, stderr) = maprat(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown subcommand"));
}

#[test]
fn explain_runs_on_synthetic_data() {
    let (ok, stdout, stderr) = maprat(&["explain", "Toy Story", "--coverage", "0.2"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("Similarity Mining"));
    assert!(stdout.contains("Diversity Mining"));
    assert!(
        stdout.contains("California"),
        "planted group expected:\n{stdout}"
    );
}

#[test]
fn explain_unknown_movie_fails_cleanly() {
    let (ok, _, stderr) = maprat(&["explain", "No Such Movie Whatsoever"]);
    assert!(!ok);
    assert!(stderr.contains("no item matches"));
}

#[test]
fn generate_then_explain_round_trip() {
    let dir = std::env::temp_dir().join(format!("maprat-cli-{}", std::process::id()));
    let dir_str = dir.to_str().unwrap();
    let (ok, _, stderr) = maprat(&[
        "generate", "--out", dir_str, "--scale", "tiny", "--seed", "9",
    ]);
    assert!(ok, "{stderr}");
    assert!(dir.join("ratings.dat").exists());
    assert!(dir.join("people.dat").exists());

    let (ok, stdout, stderr) = maprat(&[
        "explain",
        "Toy Story",
        "--data",
        dir_str,
        "--coverage",
        "0.1",
        "--no-geo",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("Similarity Mining"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn timeline_renders_windows() {
    let (ok, stdout, stderr) = maprat(&[
        "timeline",
        "Toy Story",
        "--window",
        "9",
        "--coverage",
        "0.1",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("window"));
    assert!(stdout.lines().count() >= 3);
}

#[test]
fn drill_prints_city_table() {
    let (ok, stdout, stderr) = maprat(&["drill", "Toy Story", "--index", "0", "--coverage", "0.2"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("city-level statistics"));
}

#[test]
fn explain_writes_svg() {
    let path = std::env::temp_dir().join(format!("maprat-cli-svg-{}.svg", std::process::id()));
    let path_str = path.to_str().unwrap();
    let (ok, stdout, stderr) = maprat(&[
        "explain",
        "Toy Story",
        "--coverage",
        "0.2",
        "--svg",
        path_str,
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("wrote"));
    let svg = std::fs::read_to_string(&path).unwrap();
    assert!(svg.starts_with("<svg"));
    std::fs::remove_file(&path).ok();
}
