//! Error bounds for mined groups: exact population counts from the
//! stratum census, confidence intervals on sampled means.
//!
//! Group membership in MapRat is a pure function of the reviewer's packed
//! demographic profile — a [`GroupDesc`] either matches a stratum code or
//! it doesn't, so every mined group is a union of *whole* strata. That
//! structure buys two things. First, group *support* and *coverage* are
//! computed **exactly** from the per-stratum populations the sampler
//! recorded; only score aggregates are estimated. Second, the group mean
//! admits a design-unbiased stratified estimator (the one-per-stratum
//! floor guarantees every member stratum contributes):
//!
//! ```text
//! mean = Σ_s (N_s/N) · ȳ_s
//! Var  = Σ_s (N_s/N)² · (1 − n_s/N_s) · s_s² / n_s
//! ```
//!
//! over the group's member strata, with `N_s`/`n_s` the stratum's exact
//! population/sampled count, `ȳ_s`/`s_s²` the stratum's sample mean and
//! Bessel-corrected variance, `N = Σ N_s` the exact group support, and
//! `(1 − n_s/N_s)` the finite-population correction (fully-read strata
//! contribute zero variance). The reported interval is `mean ±
//! t(dof)·√Var` at [`DEFAULT_CONFIDENCE`], with `dof = Σ (n_s − 1)` over
//! partially-read strata sampled at least twice. Strata sampled once use
//! the group's pooled within-stratum variance as a proxy; when *no*
//! member stratum was sampled twice the bound falls back to the full
//! score range. This weighting matters: the raw pooled sample mean is
//! biased whenever per-stratum sampling rates differ (the floor makes
//! rare cells heavily over-sampled) and stratum means correlate with
//! demographics — which is precisely the signal MapRat mines.
//!
//! Two further guards keep the intervals honest:
//!
//! * **Sample splitting.** Mined groups are *selected because* their
//!   sampled aggregates look extreme, so an interval computed from the
//!   mining sample undercovers (winner's curse). Bounds are therefore
//!   estimated from an independent *validation* sample
//!   ([`StratifiedSampler::validation`](crate::StratifiedSampler::validation))
//!   with identical allocations but independent phases — conditional on
//!   the selection, its estimates are unbiased.
//! * **Variance floor.** Scores are 1–5 integers; a handful of sampled
//!   ratings frequently agree exactly, and a literal `s² = 0` would
//!   collapse the interval to a point. Sampled variances are floored at
//!   [`MIN_SAMPLE_VAR`] (half a score point, squared).
//!
//! See `docs/APPROX.md` for the contract's fine print.
//!
//! ```
//! use maprat_approx::bounds::GroupBound;
//! let b = GroupBound {
//!     token: "state=CA".into(),
//!     label: "reviewers from California".into(),
//!     sampled_support: 200,
//!     exact_support: 2000,
//!     mean: 4.1,
//!     mean_lo: 3.9,
//!     mean_hi: 4.3,
//! };
//! assert!(b.contains(4.0) && !b.contains(3.5));
//! assert!((b.half_width() - 0.2).abs() < 1e-9);
//! ```

use crate::sampler::{StratifiedSample, STRATUM_SPACE};
use maprat_core::{Explanation, Interpretation, Task};
use maprat_cube::GroupDesc;
use maprat_data::packed::PackedUserCode;
use maprat_data::{Dataset, UserAttr};

/// Confidence level of every reported interval.
pub const DEFAULT_CONFIDENCE: f64 = 0.95;

/// Two-sided normal quantile for [`DEFAULT_CONFIDENCE`].
const Z_95: f64 = 1.959_963_984_540_054;

/// Two-sided Student-t 97.5% quantiles for 1–30 degrees of freedom —
/// rare groups sample a handful of ratings and a normal interval would
/// be overconfident there.
#[rustfmt::skip]
const T_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
];

/// The two-sided 95% quantile for `dof` degrees of freedom.
fn t_quantile(dof: u64) -> f64 {
    match dof {
        0 => f64::INFINITY,
        1..=30 => T_95[(dof - 1) as usize],
        31..=60 => 2.0,
        _ => Z_95,
    }
}

/// Valid score range — interval endpoints are clamped into it.
const SCORE_MIN: f64 = 1.0;
const SCORE_MAX: f64 = 5.0;

/// Floor on every sampled score variance (half a point, squared): scores
/// are 1–5 integers, so small samples routinely agree exactly and a raw
/// `s² = 0` would report a zero-width interval from almost no evidence.
pub const MIN_SAMPLE_VAR: f64 = 0.25;

/// Whether a stratum code satisfies every constraint of a descriptor.
pub fn desc_matches_code(desc: &GroupDesc, code: PackedUserCode) -> bool {
    UserAttr::ALL.iter().all(|&attr| match desc.value(attr) {
        None => true,
        Some(v) => usize::from(code.field(attr)) == v.value_index(),
    })
}

/// The error bound of one mined group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupBound {
    /// The group's compact token (`gender=M ∧ state=CA`) — the join key
    /// against the interpretation's group list.
    pub token: String,
    /// The group's natural-language label.
    pub label: String,
    /// Sampled ratings in the group (what the cube counted).
    pub sampled_support: u64,
    /// Exact ratings of `R_I` in the group, from the stratum census.
    pub exact_support: u64,
    /// Point estimate of the group mean: the design-weighted stratified
    /// estimator (`Σ N_s·ȳ_s / N`), unbiased under the sampler's unequal
    /// per-stratum rates — unlike the raw pooled mean the mined tab
    /// displays.
    pub mean: f64,
    /// Lower confidence limit (clamped to the score range).
    pub mean_lo: f64,
    /// Upper confidence limit (clamped to the score range).
    pub mean_hi: f64,
}

impl GroupBound {
    /// Half the interval width.
    pub fn half_width(&self) -> f64 {
        (self.mean_hi - self.mean_lo) / 2.0
    }

    /// Whether a value lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        (self.mean_lo..=self.mean_hi).contains(&value)
    }
}

/// Bounds for one interpretation (one mining tab).
#[derive(Debug, Clone, PartialEq)]
pub struct InterpretationBounds {
    /// Exact coverage of the selected groups' union over `R_I` — counted
    /// from the stratum census, not estimated.
    pub coverage_exact: f64,
    /// Per-group bounds, in the interpretation's group order.
    pub groups: Vec<GroupBound>,
}

/// The `approx` block attached to a sampled explanation: what fraction
/// was read, how it was stratified, and how far off each reported mean
/// can be at the documented confidence.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxInfo {
    /// The sampling fraction that was requested.
    pub requested_frac: f64,
    /// The fraction of `R_I` actually read (mining ∪ validation samples;
    /// ceilings and the one-per-stratum floor round the allocation up).
    pub achieved_frac: f64,
    /// Number of distinct ratings the sampled pipeline read across the
    /// mining and validation samples.
    pub sampled: u64,
    /// Exact `|R_I|`.
    pub population: u64,
    /// Number of nonempty strata (base demographic cells of `R_I`).
    pub strata: u64,
    /// Confidence level of every interval (currently always 0.95).
    pub confidence: f64,
    /// The sampling seed (derived from the request's RHE seed).
    pub seed: u64,
    /// Bounds for the Similarity Mining tab.
    pub similarity: InterpretationBounds,
    /// Bounds for the Diversity Mining tab.
    pub diversity: InterpretationBounds,
}

impl ApproxInfo {
    /// Computes the approx block for an explanation that was mined on
    /// `sample` (the explanation's cube must have been built over
    /// `sample.rating_idx`, which must index into `dataset`), with score
    /// estimates taken from the paired `validation` sample — same
    /// universe, same allocations, independent phases (see
    /// [`StratifiedSampler::validation`](crate::StratifiedSampler::validation)).
    /// One pass over the validation ratings collects per-stratum score
    /// moments; every group bound is then a census lookup plus a
    /// weighted sum.
    pub fn for_explanation(
        dataset: &Dataset,
        explanation: &Explanation,
        sample: &StratifiedSample,
        validation: &StratifiedSample,
    ) -> ApproxInfo {
        debug_assert_eq!(
            sample.strata, validation.strata,
            "paired samples must share universe, fraction and census"
        );
        let moments = StratumMoments::compute(dataset, validation);
        let read: std::collections::HashSet<u32> = sample
            .rating_idx
            .iter()
            .chain(&validation.rating_idx)
            .copied()
            .collect();
        let sampled = read.len() as u64;
        ApproxInfo {
            requested_frac: sample.requested_frac,
            achieved_frac: if sample.population == 0 {
                0.0
            } else {
                sampled as f64 / sample.population as f64
            },
            sampled,
            population: sample.population as u64,
            strata: sample.strata.len() as u64,
            confidence: DEFAULT_CONFIDENCE,
            seed: sample.seed,
            similarity: interpretation_bounds(&explanation.similarity, sample, &moments),
            diversity: interpretation_bounds(&explanation.diversity, sample, &moments),
        }
    }

    /// The bounds for a task's tab.
    pub fn interpretation(&self, task: Task) -> &InterpretationBounds {
        match task {
            Task::Similarity => &self.similarity,
            Task::Diversity => &self.diversity,
        }
    }

    /// The widest group interval half-width across both tabs — a single
    /// scalar summary of how approximate the answer is.
    pub fn max_half_width(&self) -> f64 {
        self.similarity
            .groups
            .iter()
            .chain(&self.diversity.groups)
            .map(GroupBound::half_width)
            .fold(0.0, f64::max)
    }
}

/// Per-stratum sample-score moments (count, running mean, sum of squared
/// deviations), collected in one Welford pass over the sampled ratings.
/// Indexed parallel to `sample.strata`.
struct StratumMoments {
    n: Vec<u64>,
    mean: Vec<f64>,
    m2: Vec<f64>,
}

impl StratumMoments {
    fn compute(dataset: &Dataset, sample: &StratifiedSample) -> StratumMoments {
        let mut index = vec![u32::MAX; STRATUM_SPACE];
        for (i, s) in sample.strata.iter().enumerate() {
            index[usize::from(s.code)] = i as u32;
        }
        let codes = dataset.rating_user_codes();
        let ratings = dataset.ratings();
        let k = sample.strata.len();
        let mut moments = StratumMoments {
            n: vec![0; k],
            mean: vec![0.0; k],
            m2: vec![0.0; k],
        };
        for &r in &sample.rating_idx {
            let i = index[usize::from(codes[r as usize])] as usize;
            let x = ratings[r as usize].score.as_f64();
            moments.n[i] += 1;
            let delta = x - moments.mean[i];
            moments.mean[i] += delta / moments.n[i] as f64;
            moments.m2[i] += delta * (x - moments.mean[i]);
        }
        moments
    }
}

fn interpretation_bounds(
    interp: &Interpretation,
    sample: &StratifiedSample,
    moments: &StratumMoments,
) -> InterpretationBounds {
    let groups: Vec<GroupBound> = interp
        .groups
        .iter()
        .map(|g| {
            // Walk the group's member strata once, accumulating the
            // stratified estimator of the module docs: the exact
            // population N, the sampled count n, the weighted mean, the
            // variance over strata with a real variance estimate
            // (sampled ≥ twice, not fully read), and the weight mass of
            // singleton-sampled strata whose variance needs the pooled
            // proxy.
            let mut exact = 0u64;
            let mut n = 0u64;
            let mut weighted_mean = 0.0;
            let mut weighted_var = 0.0; // Σ N_s²·fpc·s_s²/n_s
            let mut proxy_weight = 0.0; // Σ N_s²·fpc/n_s over singleton strata
            let mut pool_m2 = 0.0;
            let mut dof = 0u64;
            for (i, s) in sample.strata.iter().enumerate() {
                if !desc_matches_code(&g.desc, PackedUserCode::from_raw(s.code)) {
                    continue;
                }
                let n_s = moments.n[i];
                let pop = u64::from(s.population).max(n_s);
                exact += pop;
                n += n_s;
                let w = pop as f64;
                weighted_mean += w * moments.mean[i];
                if n_s >= pop {
                    continue; // fully read: contributes no sampling error
                }
                let fpc = 1.0 - n_s as f64 / pop as f64;
                if n_s >= 2 {
                    let s2 = (moments.m2[i] / (n_s - 1) as f64).max(MIN_SAMPLE_VAR);
                    weighted_var += w * w * fpc * s2 / n_s as f64;
                    pool_m2 += moments.m2[i];
                    dof += n_s - 1;
                } else {
                    proxy_weight += w * w * fpc / n_s.max(1) as f64;
                }
            }
            let mean = if exact > 0 {
                weighted_mean / exact as f64
            } else {
                0.0
            };
            let half = if n >= exact {
                0.0
            } else if dof == 0 {
                // Every partially-read stratum was sampled once: no
                // variance information anywhere — report the full range.
                SCORE_MAX - SCORE_MIN
            } else {
                let proxy_s2 = (pool_m2 / dof as f64).max(MIN_SAMPLE_VAR);
                let var = (weighted_var + proxy_weight * proxy_s2) / (exact as f64 * exact as f64);
                t_quantile(dof) * var.sqrt()
            };
            GroupBound {
                token: g.desc.token(),
                label: g.label.clone(),
                sampled_support: n,
                exact_support: exact,
                mean,
                mean_lo: (mean - half).max(SCORE_MIN),
                mean_hi: (mean + half).min(SCORE_MAX),
            }
        })
        .collect();
    let coverage_exact = if sample.population == 0 {
        0.0
    } else {
        let covered = sample
            .population_where(|c| interp.groups.iter().any(|g| desc_matches_code(&g.desc, c)));
        covered as f64 / sample.population as f64
    };
    InterpretationBounds {
        coverage_exact,
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::StratifiedSampler;
    use maprat_core::query::ItemQuery;
    use maprat_core::{Miner, SearchSettings};
    use maprat_cube::{CubeOptions, RatingCube};
    use maprat_data::synth::{generate, SynthConfig};
    use maprat_data::{Dataset, Gender};

    fn dataset() -> Dataset {
        generate(&SynthConfig::small(101)).unwrap()
    }

    #[test]
    fn desc_matching_agrees_with_user_matching() {
        let d = dataset();
        let desc = GroupDesc::from_pairs([Gender::Male.into()]);
        for user in d.users().iter().take(200) {
            let code = PackedUserCode::pack(user);
            assert_eq!(desc.matches(user), desc_matches_code(&desc, code));
        }
        // The empty descriptor matches every code.
        assert!(desc_matches_code(
            &GroupDesc::ALL,
            PackedUserCode::from_raw(0)
        ));
    }

    #[test]
    fn bounds_contain_exact_means_on_planted_data() {
        let d = dataset();
        let settings = SearchSettings::default().with_min_coverage(0.15);
        let query = ItemQuery::title("Toy Story");
        let miner = Miner::new(&d);
        let exact = miner.explain(&query, &settings).unwrap();

        let universe = query.rating_indexes(&d);
        let sampler = StratifiedSampler::new(0.3, settings.rhe.seed);
        let sample = sampler.sample(&d, &universe);
        let validation = sampler.validation().sample(&d, &universe);
        let cube = RatingCube::build(
            &d,
            sample.rating_idx.clone(),
            CubeOptions {
                min_support: 2,
                require_geo: settings.require_geo,
                max_arity: settings.max_arity,
            },
        );
        let approx = miner
            .explain_cube(&query, exact.items.clone(), &cube, &settings)
            .unwrap();
        let info = ApproxInfo::for_explanation(&d, &approx, &sample, &validation);

        assert_eq!(info.population, universe.len() as u64);
        assert!(info.sampled < info.population);
        assert!(info.strata > 0);
        assert_eq!(info.confidence, DEFAULT_CONFIDENCE);
        assert!(info.max_half_width() > 0.0);
        for (tab, bounds) in [("sm", &info.similarity), ("dm", &info.diversity)] {
            assert!(
                (0.0..=1.0).contains(&bounds.coverage_exact),
                "{tab} coverage {}",
                bounds.coverage_exact
            );
            for b in &bounds.groups {
                assert!(b.exact_support >= b.sampled_support, "{tab} {}", b.token);
                assert!(
                    b.mean_lo <= b.mean && b.mean <= b.mean_hi,
                    "{tab} {}",
                    b.token
                );
                // The group's TRUE mean over all of R_I must sit inside
                // the reported interval (this is the contract; with 95%
                // intervals and a handful of groups a violation on this
                // fixed seed would be a bug, not bad luck).
                let desc = &b.token;
                let true_stats = exact_group_stats(&d, &universe, b);
                if let Some(true_mean) = true_stats {
                    assert!(
                        b.contains(true_mean),
                        "{tab} {desc}: true mean {true_mean} outside [{}, {}]",
                        b.mean_lo,
                        b.mean_hi
                    );
                }
            }
        }
    }

    /// Recomputes a group's exact mean by rescanning the universe with the
    /// token re-parsed from the bound's matching strata — here we match by
    /// re-deriving membership from the label's descriptor via the census
    /// (population_where already validated against rescans in sampler
    /// tests), so use sampled bound token → find the cube group desc.
    fn exact_group_stats(d: &Dataset, universe: &[u32], bound: &GroupBound) -> Option<f64> {
        // Re-derive the descriptor by brute force: scan all ratings whose
        // code the bound's exact_support counted. Simplest faithful check:
        // recompute mean over ratings whose user matches the token string
        // by rebuilding the exact cube and looking the token up.
        let cube = RatingCube::build(
            d,
            universe.to_vec(),
            CubeOptions {
                min_support: 1,
                require_geo: false,
                max_arity: 4,
            },
        );
        cube.groups()
            .iter()
            .find(|g| g.desc.token() == bound.token)
            .and_then(|g| g.stats.mean())
    }

    #[test]
    fn exhaustive_sample_gives_zero_width_bounds() {
        let d = dataset();
        let settings = SearchSettings::default().with_min_coverage(0.15);
        let query = ItemQuery::title("Toy Story");
        let universe = query.rating_indexes(&d);
        let sampler = StratifiedSampler::new(1.0, 0);
        let sample = sampler.sample(&d, &universe);
        let validation = sampler.validation().sample(&d, &universe);
        assert!(sample.is_exhaustive());
        let miner = Miner::new(&d);
        let (items, cube) = miner.build_cube(&query, &settings).unwrap();
        let e = miner.explain_cube(&query, items, &cube, &settings).unwrap();
        let info = ApproxInfo::for_explanation(&d, &e, &sample, &validation);
        for b in info.similarity.groups.iter().chain(&info.diversity.groups) {
            assert_eq!(b.sampled_support, b.exact_support, "{}", b.token);
            assert!(b.half_width() < 1e-12, "{}", b.token);
        }
        assert!((info.achieved_frac - 1.0).abs() < 1e-12);
    }
}
