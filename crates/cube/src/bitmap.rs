//! A fixed-size bitset over rating-tuple positions.
//!
//! Group covers are subsets of `0..|R_I|`; the mining loop's hot operations
//! are union (for the coverage constraint) and popcount, so covers are
//! stored as dense `u64`-block bitmaps. At MovieLens scale (`|R_I|` in the
//! tens of thousands) a cover is a few KiB, and unions run at memory
//! bandwidth.

use std::sync::{Arc, Mutex};

/// Cap on recycled chunk buffers parked in [`CHUNK_FREELIST`] (≈ 16 MiB
/// at the builder's 64 KiB chunk size).
const FREELIST_MAX: usize = 256;

/// Only buffers up to the standard chunk size are parked (keeping the
/// freelist's worst case at `FREELIST_MAX × 64 KiB` = the documented
/// 16 MiB); the oversized single-cover chunks of outsized universes
/// free normally instead of pinning megabytes each.
const FREELIST_MAX_WORDS: usize = 8 * 1024;

/// Recycled cover-block buffers.
///
/// A cube build materializes megabytes of cover blocks and a dropped
/// cube frees them all at once; handing that memory back to the
/// allocator lets glibc trim the heap top, so the *next* build
/// page-faults every block back in (kernel-zeroing included) — measured
/// at more than half the whole materialization cost. Parking the
/// buffers here instead keeps the pages mapped and warm.
static CHUNK_FREELIST: Mutex<Vec<Vec<u64>>> = Mutex::new(Vec::new());

/// A cover-block chunk that returns its buffer to the freelist on drop.
#[derive(Debug)]
pub(crate) struct PooledBlocks(Vec<u64>);

impl PooledBlocks {
    #[inline]
    fn blocks(&self) -> &[u64] {
        &self.0
    }
}

impl Drop for PooledBlocks {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.0);
        if buf.capacity() > 0 && buf.capacity() <= FREELIST_MAX_WORDS {
            let mut freelist = CHUNK_FREELIST.lock().unwrap();
            if freelist.len() < FREELIST_MAX {
                freelist.push(buf);
            }
        }
    }
}

/// Hands out a zeroed `words`-long chunk buffer, recycling a parked one
/// when available (zeroing warm pages streams at memory bandwidth;
/// faulting fresh ones does not).
pub(crate) fn alloc_chunk(words: usize) -> Vec<u64> {
    let recycled = CHUNK_FREELIST.lock().unwrap().pop();
    match recycled {
        Some(mut buf) => {
            buf.clear();
            buf.resize(words, 0);
            buf
        }
        None => vec![0u64; words],
    }
}

/// Wraps a filled chunk buffer for sharing between its covers.
pub(crate) fn seal_chunk(blocks: Vec<u64>) -> Arc<PooledBlocks> {
    Arc::new(PooledBlocks(blocks))
}

/// Block storage of a bitmap: privately owned, or a slice of a shared
/// columnar block pool.
///
/// The cube builder materializes every cover of a cuboid into **one**
/// flat allocation (thousands of 2 KiB covers otherwise cost more in
/// `malloc` traffic than the whole counting pass) and hands each
/// candidate a `Shared` window into it. Reads see a plain `&[u64]`
/// either way; the first mutation of a shared bitmap copies its window
/// out (copy-on-write), so scratch bitmaps in the mining loops — which
/// are constructed owned — never pay the branch-and-copy.
#[derive(Debug, Clone)]
enum Blocks {
    Owned(Vec<u64>),
    Shared {
        /// The whole columnar pool chunk (shared, never reallocated;
        /// recycled through the chunk freelist when the last cover
        /// drops). `Arc<PooledBlocks>` wraps a moved-in buffer — never a
        /// copy (the pools are megabytes at catalogue scale).
        pool: Arc<PooledBlocks>,
        /// First block of this bitmap's window inside `pool`.
        start: usize,
        /// Number of blocks in the window.
        words: usize,
    },
}

/// A fixed-universe bitset.
///
/// ```
/// use maprat_cube::Bitmap;
/// let mut a = Bitmap::from_positions(100, [1, 5, 70]);
/// let b = Bitmap::from_positions(100, [5, 99]);
/// assert_eq!(a.union_count(&b), 4);
/// assert_eq!(a.intersection_count(&b), 1);
/// a.union_with(&b);
/// assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 5, 70, 99]);
/// ```
#[derive(Debug, Clone)]
pub struct Bitmap {
    len: usize,
    blocks: Blocks,
}

impl PartialEq for Bitmap {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.blocks() == other.blocks()
    }
}

impl Eq for Bitmap {}

impl Bitmap {
    /// Creates an empty bitmap over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        Bitmap {
            len,
            blocks: Blocks::Owned(vec![0; len.div_ceil(64)]),
        }
    }

    /// Wraps a window of a shared block pool as a read-optimized bitmap
    /// over `0..len` (blocks `start..start + ceil(len/64)` of `pool`).
    /// Mutation copies the window out first (copy-on-write).
    pub(crate) fn from_shared_pool(len: usize, pool: Arc<PooledBlocks>, start: usize) -> Self {
        let words = len.div_ceil(64);
        debug_assert!(start + words <= pool.blocks().len());
        Bitmap {
            len,
            blocks: Blocks::Shared { pool, start, words },
        }
    }

    /// The block slice (either representation).
    #[inline]
    fn blocks(&self) -> &[u64] {
        match &self.blocks {
            Blocks::Owned(v) => v,
            Blocks::Shared { pool, start, words } => &pool.blocks()[*start..*start + *words],
        }
    }

    /// Mutable blocks; a shared window is copied out (once) first.
    #[inline]
    fn blocks_mut(&mut self) -> &mut [u64] {
        if let Blocks::Shared { .. } = self.blocks {
            self.blocks = Blocks::Owned(self.blocks().to_vec());
        }
        match &mut self.blocks {
            Blocks::Owned(v) => v,
            Blocks::Shared { .. } => unreachable!("just converted to owned"),
        }
    }

    /// The universe size (number of addressable positions).
    #[inline]
    pub fn universe(&self) -> usize {
        self.len
    }

    /// The shared-pool parts of a pooled window (`None` for owned
    /// blocks) — the delta builder re-shares whole unchanged chunks
    /// across incremental rebuilds through this.
    #[inline]
    pub(crate) fn shared_parts(&self) -> Option<(&Arc<PooledBlocks>, usize, usize)> {
        match &self.blocks {
            Blocks::Shared { pool, start, words } => Some((pool, *start, *words)),
            Blocks::Owned(_) => None,
        }
    }

    /// Sets position `i`.
    ///
    /// # Panics
    /// Panics if `i` is outside the universe.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} outside universe {}", self.len);
        self.blocks_mut()[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether position `i` is set.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} outside universe {}", self.len);
        self.blocks()[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set positions.
    #[inline]
    pub fn count(&self) -> usize {
        self.blocks().iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether no position is set.
    pub fn is_empty(&self) -> bool {
        self.blocks().iter().all(|&b| b == 0)
    }

    /// Clears all positions (keeps the universe).
    pub fn clear(&mut self) {
        self.blocks_mut().fill(0);
    }

    /// Overwrites `self` with the contents of `other` without allocating
    /// (the mining loop's scratch bitmaps are assigned this way on every
    /// hill-climbing step, so reusing the block buffer matters).
    ///
    /// # Panics
    /// Panics on universe mismatch.
    #[inline]
    pub fn copy_from(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "universe mismatch");
        self.blocks_mut().copy_from_slice(other.blocks());
    }

    /// In-place union: `self |= other`.
    ///
    /// # Panics
    /// Panics on universe mismatch.
    #[inline]
    pub fn union_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "universe mismatch");
        for (a, b) in self.blocks_mut().iter_mut().zip(other.blocks()) {
            *a |= b;
        }
    }

    /// In-place intersection: `self &= other`.
    #[inline]
    pub fn intersect_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "universe mismatch");
        for (a, b) in self.blocks_mut().iter_mut().zip(other.blocks()) {
            *a &= b;
        }
    }

    /// In-place difference: `self &= !other`.
    #[inline]
    pub fn subtract(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "universe mismatch");
        for (a, b) in self.blocks_mut().iter_mut().zip(other.blocks()) {
            *a &= !b;
        }
    }

    /// `|self ∩ other|` without allocating.
    #[inline]
    pub fn intersection_count(&self, other: &Bitmap) -> usize {
        assert_eq!(self.len, other.len, "universe mismatch");
        self.blocks()
            .iter()
            .zip(other.blocks())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `|self ∪ other|` without allocating.
    #[inline]
    pub fn union_count(&self, other: &Bitmap) -> usize {
        assert_eq!(self.len, other.len, "universe mismatch");
        self.blocks()
            .iter()
            .zip(other.blocks())
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// Whether every set position of `self` is also set in `other`.
    #[inline]
    pub fn is_subset_of(&self, other: &Bitmap) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        self.blocks()
            .iter()
            .zip(other.blocks())
            .all(|(a, b)| a & !b == 0)
    }

    /// The raw `u64` blocks (64 positions per block, little-endian bit
    /// order). Read-only: the mining layer's sparse probes intersect
    /// candidate word entries against scratch blocks directly.
    #[inline]
    pub fn block_slice(&self) -> &[u64] {
        self.blocks()
    }

    /// Iterates the set positions in ascending order.
    pub fn iter(&self) -> BitmapIter<'_> {
        let blocks = self.blocks();
        BitmapIter {
            blocks,
            block_idx: 0,
            current: blocks.first().copied().unwrap_or(0),
        }
    }

    /// Builds a bitmap from set positions.
    pub fn from_positions<I: IntoIterator<Item = usize>>(len: usize, positions: I) -> Self {
        let mut bm = Bitmap::new(len);
        for p in positions {
            bm.set(p);
        }
        bm
    }
}

/// Ascending iterator over set positions.
pub struct BitmapIter<'a> {
    blocks: &'a [u64],
    block_idx: usize,
    current: u64,
}

impl Iterator for BitmapIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                return Some(self.block_idx * 64 + bit);
            }
            self.block_idx += 1;
            if self.block_idx >= self.blocks.len() {
                return None;
            }
            self.current = self.blocks[self.block_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut bm = Bitmap::new(130);
        assert!(bm.is_empty());
        bm.set(0);
        bm.set(64);
        bm.set(129);
        assert!(bm.get(0) && bm.get(64) && bm.get(129));
        assert!(!bm.get(1));
        assert_eq!(bm.count(), 3);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_universe_panics() {
        let mut bm = Bitmap::new(10);
        bm.set(10);
    }

    #[test]
    fn union_and_intersection() {
        let a = Bitmap::from_positions(100, [1, 5, 70]);
        let b = Bitmap::from_positions(100, [5, 70, 99]);
        assert_eq!(a.intersection_count(&b), 2);
        assert_eq!(a.union_count(&b), 4);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 4);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.count(), 2);
        assert!(i.is_subset_of(&a));
        assert!(i.is_subset_of(&b));
    }

    #[test]
    fn subtract_removes() {
        let mut a = Bitmap::from_positions(10, [1, 2, 3]);
        let b = Bitmap::from_positions(10, [2]);
        a.subtract(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn iter_ascending_across_blocks() {
        let positions = vec![0, 63, 64, 65, 127, 128, 199];
        let bm = Bitmap::from_positions(200, positions.clone());
        assert_eq!(bm.iter().collect::<Vec<_>>(), positions);
    }

    #[test]
    fn copy_from_overwrites_in_place() {
        let a = Bitmap::from_positions(100, [1, 5, 70]);
        let mut b = Bitmap::from_positions(100, [2, 99]);
        b.copy_from(&a);
        assert_eq!(b, a);
        b.copy_from(&Bitmap::new(100));
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn copy_from_checks_universe() {
        let mut a = Bitmap::new(10);
        a.copy_from(&Bitmap::new(20));
    }

    #[test]
    fn clear_resets() {
        let mut bm = Bitmap::from_positions(50, [3, 30]);
        bm.clear();
        assert!(bm.is_empty());
        assert_eq!(bm.universe(), 50);
    }

    #[test]
    fn shared_pool_windows_behave_like_owned_bitmaps() {
        // Two bitmaps carved out of one flat pool (the builder's cover
        // layout): reads see their windows, mutation copies out.
        let universe = 70; // 2 blocks per window
        let pool = seal_chunk(vec![0b1011u64, 0, 0b100u64, 1 << 5]);
        let a = Bitmap::from_shared_pool(universe, Arc::clone(&pool), 0);
        let b = Bitmap::from_shared_pool(universe, Arc::clone(&pool), 2);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 1, 3]);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![2, 69]);
        assert_eq!(a.count(), 3);
        assert_eq!(a, Bitmap::from_positions(universe, [0, 1, 3]));

        // Copy-on-write: mutating one window leaves the pool (and the
        // sibling) untouched.
        let mut c = a.clone();
        c.set(42);
        assert!(c.get(42));
        assert!(!a.get(42), "mutation must not write through the pool");
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![2, 69]);

        // Owned/shared mixes interoperate in set algebra.
        let owned = Bitmap::from_positions(universe, [1, 2]);
        assert_eq!(a.intersection_count(&owned), 1);
        let mut u = owned.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 69]);
    }

    #[test]
    fn empty_universe_ok() {
        let bm = Bitmap::new(0);
        assert_eq!(bm.count(), 0);
        assert_eq!(bm.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn mismatched_universe_panics() {
        let mut a = Bitmap::new(10);
        let b = Bitmap::new(20);
        a.union_with(&b);
    }
}
