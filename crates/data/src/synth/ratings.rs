//! Synthetic rating-tuple generation.
//!
//! Background ratings pair a Zipf-popular movie with a long-tail-active
//! reviewer and sample the score from the movie's demographic affinity
//! model. Planted movies receive a fixed share of the rating volume from a
//! bias-weighted reviewer distribution and sample scores from their planted
//! rules.

use crate::dataset::DatasetBuilder;
use crate::ids::{ItemId, UserId};
use crate::rating::Rating;
use crate::synth::affinity::{randn, sample_around};
use crate::synth::config::SynthConfig;
use crate::synth::movies::MovieWorld;
use crate::time::Timestamp;
use crate::user::User;
use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use std::collections::HashSet;

#[inline]
fn pair_key(user: UserId, item: ItemId) -> u64 {
    (u64::from(user.0) << 32) | u64::from(item.0)
}

/// Fractional position → timestamp within the configured window.
fn ts_at(config: &SynthConfig, frac: f64) -> Timestamp {
    let span = config.time_end.secs() - config.time_start.secs();
    let frac = frac.clamp(0.0, 0.999_999);
    Timestamp(config.time_start.secs() + (span as f64 * frac) as i64)
}

/// Samples a rating-time fraction given the movie's arrival fraction:
/// volume is highest right after arrival and decays.
fn sample_frac<R: Rng>(rng: &mut R, arrival: f64) -> f64 {
    let u: f64 = rng.gen();
    arrival + (1.0 - arrival) * u.powf(1.6)
}

/// Appends ~`config.num_ratings` rating tuples to the builder.
pub fn generate_ratings<R: Rng>(
    config: &SynthConfig,
    rng: &mut R,
    builder: &mut DatasetBuilder,
    world: &MovieWorld,
) {
    // Snapshot the user table: the rating loop needs immutable access to
    // demographics while mutably appending ratings to the same builder.
    let users: Vec<User> = builder.users().to_vec();
    assert_eq!(users.len(), config.num_users);
    let users = &users[..];
    builder.reserve_ratings(config.num_ratings + 1024);
    let mut seen: HashSet<u64> = HashSet::with_capacity(config.num_ratings * 2);

    // Long-tailed user activity (lognormal).
    let activity: Vec<f64> = (0..users.len()).map(|_| (randn(rng) * 1.1).exp()).collect();
    let user_dist = WeightedIndex::new(&activity).expect("positive activities");

    // --- Planted movies: fixed volume, biased raters, rule-driven scores.
    let mut planted_total = 0usize;
    for (item_id, scenario) in &world.planted {
        let target = ((config.num_ratings as f64) * scenario.rating_share).round() as usize;
        planted_total += target;
        let weights: Vec<f64> = users
            .iter()
            .zip(&activity)
            .map(|(u, &a)| a * scenario.bias_for(u))
            .collect();
        let dist = WeightedIndex::new(&weights).expect("positive weights");
        let mut produced = 0usize;
        let mut attempts = 0usize;
        let max_attempts = target * 20 + 100;
        while produced < target && attempts < max_attempts {
            attempts += 1;
            let uidx = dist.sample(rng);
            let user = &users[uidx];
            if !seen.insert(pair_key(user.id, *item_id)) {
                continue;
            }
            let frac = sample_frac(rng, 0.0);
            let (mean, sigma) = scenario.latent_for(user, frac);
            let score = sample_around(mean, sigma, rng);
            builder.add_rating(Rating::new(user.id, *item_id, score, ts_at(config, frac)));
            produced += 1;
        }
    }

    // --- Background ratings.
    let background_target = config.num_ratings.saturating_sub(planted_total);
    let item_dist = match WeightedIndex::new(&world.popularity) {
        Ok(d) => d,
        Err(_) => return, // all weight planted (degenerate config)
    };
    // Per-movie arrival fraction.
    let arrivals: Vec<f64> = (0..world.popularity.len())
        .map(|_| rng.gen::<f64>() * 0.5)
        .collect();

    let mut produced = 0usize;
    let mut attempts = 0usize;
    let max_attempts = background_target * 4 + 1000;
    while produced < background_target && attempts < max_attempts {
        attempts += 1;
        let iidx = item_dist.sample(rng);
        let uidx = user_dist.sample(rng);
        let user = &users[uidx];
        let item = ItemId::from_index(iidx);
        if !seen.insert(pair_key(user.id, item)) {
            continue;
        }
        let frac = sample_frac(rng, arrivals[iidx]);
        let score = world.affinities[iidx].sample_score(user, config.noise_sigma, rng);
        builder.add_rating(Rating::new(user.id, item, score, ts_at(config, frac)));
        produced += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_key_injective_enough() {
        assert_ne!(
            pair_key(UserId(1), ItemId(2)),
            pair_key(UserId(2), ItemId(1))
        );
    }

    #[test]
    fn ts_at_bounds() {
        let cfg = SynthConfig::tiny(1);
        assert_eq!(ts_at(&cfg, 0.0), cfg.time_start);
        assert!(ts_at(&cfg, 1.0) < cfg.time_end);
        assert!(ts_at(&cfg, 0.5) > cfg.time_start);
    }

    #[test]
    fn sample_frac_after_arrival() {
        let mut rng = rand::rngs::mock::StepRng::new(0, 0x1111_1111_1111_1111);
        for _ in 0..100 {
            let f = sample_frac(&mut rng, 0.3);
            assert!((0.3..=1.0).contains(&f));
        }
    }
}
