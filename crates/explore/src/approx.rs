//! The engine's approximation policy: when a request is served from a
//! stratified sample instead of the full `R_I`.
//!
//! The mechanism (sampler, bounds, refinement ledger) lives in
//! [`maprat_approx`]; this module holds the *serving* decisions — the
//! per-request [`ApproxMode`] directive and the process-wide
//! [`ApproxPolicy`] read from the environment. The contract's prose is
//! `docs/APPROX.md`.

pub use maprat_approx::{ApproxInfo, GroupBound, InterpretationBounds};

/// Per-request approximation directive (the HTTP `approx` parameter).
///
/// Like a deadline [`Budget`](maprat_core::Budget), the mode is a serving
/// directive, **not** part of the cache key: one logical request has one
/// cache entry, which is exactly what lets a background refinement
/// upgrade an approximate entry to the exact answer in place
/// (`X-MapRat-Cache: hit-approx` → `hit`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ApproxMode {
    /// Engine decides: approximate when the universe clears the policy
    /// threshold, exact otherwise. The default.
    #[default]
    Auto,
    /// Never serve sampled answers to this request; an approximate cache
    /// entry is treated as a miss and upgraded by the exact solve.
    Off,
    /// Approximate regardless of universe size (benchmarks, tests).
    Force,
}

impl ApproxMode {
    /// Parses the HTTP `approx` parameter (`auto`/`on`, `off`/`exact`,
    /// `force`). Unknown values are `None` (the API layer rejects them).
    pub fn parse(s: &str) -> Option<ApproxMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" | "on" | "1" | "true" => Some(ApproxMode::Auto),
            "off" | "exact" | "0" | "false" => Some(ApproxMode::Off),
            "force" => Some(ApproxMode::Force),
            _ => None,
        }
    }

    /// Stable lowercase label.
    pub fn as_str(self) -> &'static str {
        match self {
            ApproxMode::Auto => "auto",
            ApproxMode::Off => "off",
            ApproxMode::Force => "force",
        }
    }

    /// Compact discriminant — folded into the flight-group key so only
    /// requests under the same directive coalesce (an `approx=off` caller
    /// must never receive a sampled leader's answer).
    pub(crate) fn class(self) -> u8 {
        match self {
            ApproxMode::Auto => 0,
            ApproxMode::Off => 1,
            ApproxMode::Force => 2,
        }
    }
}

impl std::fmt::Display for ApproxMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Process-wide approximation policy, read once at engine construction.
///
/// Environment knobs:
///
/// | Variable               | Default   | Meaning                                        |
/// |------------------------|-----------|------------------------------------------------|
/// | `MAPRAT_APPROX`        | `on`      | Master switch for `auto`-mode approximation    |
/// | `MAPRAT_SAMPLE_FRAC`   | `0.1`     | Per-stratum sampling fraction (clamped (0,1])  |
/// | `MAPRAT_APPROX_MIN`    | `2000000` | Smallest `\|R_I\|` `auto` mode will sample     |
/// | `MAPRAT_APPROX_REFINE` | `on`      | Background exact refinement of sampled answers |
///
/// `approx=force` bypasses the master switch and the size threshold (it
/// exists for benchmarks and tests); `approx=off` always bypasses
/// sampling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxPolicy {
    /// Whether `auto` mode may approximate at all (`MAPRAT_APPROX`).
    pub enabled: bool,
    /// Target per-stratum sampling fraction (`MAPRAT_SAMPLE_FRAC`).
    pub sample_frac: f64,
    /// Smallest universe `auto` mode samples (`MAPRAT_APPROX_MIN`); kept
    /// above MovieLens-1M scale by default so sub-huge workloads keep
    /// their exact behavior unless a caller opts in with `approx=force`.
    pub min_ratings: usize,
    /// Whether sampled serves schedule a background exact re-solve
    /// (`MAPRAT_APPROX_REFINE`).
    pub refine: bool,
}

impl Default for ApproxPolicy {
    fn default() -> Self {
        ApproxPolicy {
            enabled: true,
            sample_frac: 0.1,
            min_ratings: 2_000_000,
            refine: true,
        }
    }
}

fn env_flag(name: &str, default: bool) -> bool {
    match std::env::var(name) {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "off" | "0" | "false" | "no"
        ),
        Err(_) => default,
    }
}

impl ApproxPolicy {
    /// Reads the policy from the environment (defaults above).
    pub fn from_env() -> Self {
        let d = ApproxPolicy::default();
        ApproxPolicy {
            enabled: env_flag("MAPRAT_APPROX", d.enabled),
            sample_frac: std::env::var("MAPRAT_SAMPLE_FRAC")
                .ok()
                .and_then(|v| v.trim().parse::<f64>().ok())
                .filter(|f| f.is_finite() && *f > 0.0 && *f <= 1.0)
                .unwrap_or(d.sample_frac),
            min_ratings: std::env::var("MAPRAT_APPROX_MIN")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(d.min_ratings),
            refine: env_flag("MAPRAT_APPROX_REFINE", d.refine),
        }
    }

    /// Whether a universe of `len` ratings should be sampled under `mode`.
    pub fn should_sample(&self, mode: ApproxMode, len: usize) -> bool {
        match mode {
            ApproxMode::Off => false,
            ApproxMode::Force => true,
            ApproxMode::Auto => self.enabled && len >= self.min_ratings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing_round_trips() {
        for mode in [ApproxMode::Auto, ApproxMode::Off, ApproxMode::Force] {
            assert_eq!(ApproxMode::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(ApproxMode::parse("on"), Some(ApproxMode::Auto));
        assert_eq!(ApproxMode::parse("exact"), Some(ApproxMode::Off));
        assert_eq!(ApproxMode::parse(" FORCE "), Some(ApproxMode::Force));
        assert_eq!(ApproxMode::parse("maybe"), None);
        assert_eq!(ApproxMode::default(), ApproxMode::Auto);
    }

    #[test]
    fn mode_classes_are_distinct() {
        let classes: std::collections::HashSet<u8> =
            [ApproxMode::Auto, ApproxMode::Off, ApproxMode::Force]
                .into_iter()
                .map(ApproxMode::class)
                .collect();
        assert_eq!(classes.len(), 3);
    }

    #[test]
    fn policy_gates_by_mode_and_size() {
        let p = ApproxPolicy {
            enabled: true,
            sample_frac: 0.1,
            min_ratings: 1000,
            refine: true,
        };
        assert!(!p.should_sample(ApproxMode::Off, usize::MAX));
        assert!(p.should_sample(ApproxMode::Force, 1));
        assert!(p.should_sample(ApproxMode::Auto, 1000));
        assert!(!p.should_sample(ApproxMode::Auto, 999));
        let disabled = ApproxPolicy {
            enabled: false,
            ..p
        };
        assert!(!disabled.should_sample(ApproxMode::Auto, usize::MAX));
        assert!(
            disabled.should_sample(ApproxMode::Force, 1),
            "force overrides"
        );
    }

    #[test]
    fn default_threshold_spares_movielens_scale() {
        let d = ApproxPolicy::default();
        assert!(d.min_ratings > 1_000_000, "MovieLens-1M stays exact");
        assert!(
            d.should_sample(ApproxMode::Auto, 10_000_000),
            "huge samples"
        );
    }
}
