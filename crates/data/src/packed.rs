//! Packed per-reviewer attribute codes — the dense-columnar representation
//! the cube layer's hot loop runs on.
//!
//! The reviewer schema is tiny and fully enumerable (7 ages × 2 genders ×
//! 21 occupations × 51 states), so a reviewer's whole demographic profile
//! fits in 15 bits of a `u16`:
//!
//! ```text
//! bit 14 … 9   8 … 4        3       2 … 0
//!     state    occupation   gender  age
//!     (6 b)    (5 b)        (1 b)   (3 b)
//! ```
//!
//! The dataset precomputes one such code per *rating* (aligned with the
//! rating column — see [`crate::Dataset::rating_user_codes`]), so cube
//! materialization never chases `rating → user → attr_value` pointers:
//! each cuboid maps a packed code to a dense cell id with shift/mask
//! field extraction and mixed-radix multipliers, no hashing involved.

use crate::attrs::UserAttr;
use crate::user::User;

/// A reviewer's four attribute value indexes packed into 15 bits.
///
/// ```
/// use maprat_data::packed::PackedUserCode;
/// use maprat_data::{ids::UserId, zipcode::Zip};
/// use maprat_data::{AgeGroup, Gender, Occupation, UsState, User, UserAttr};
/// let user = User {
///     id: UserId(0),
///     age: AgeGroup::From25To34,
///     gender: Gender::Female,
///     occupation: Occupation::Programmer,
///     zip: Zip::new(94103),
///     state: UsState::CA,
///     city: 0,
/// };
/// let code = PackedUserCode::pack(&user);
/// for attr in UserAttr::ALL {
///     assert_eq!(
///         usize::from(code.field(attr)),
///         user.attr_value(attr).value_index()
///     );
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedUserCode(u16);

impl PackedUserCode {
    /// Number of significant bits in a code (bit 15 is always zero).
    pub const BITS: u32 = 15;

    /// The bit offset of an attribute's field inside the code.
    #[inline]
    pub const fn shift(attr: UserAttr) -> u32 {
        match attr {
            UserAttr::Age => 0,
            UserAttr::Gender => 3,
            UserAttr::Occupation => 4,
            UserAttr::State => 9,
        }
    }

    /// The (unshifted) bit mask of an attribute's field. Each field is
    /// wide enough for the attribute's cardinality (7, 2, 21, 51).
    #[inline]
    pub const fn mask(attr: UserAttr) -> u16 {
        match attr {
            UserAttr::Age => 0b111,
            UserAttr::Gender => 0b1,
            UserAttr::Occupation => 0b1_1111,
            UserAttr::State => 0b11_1111,
        }
    }

    /// Packs a reviewer's profile.
    #[inline]
    pub fn pack(user: &User) -> PackedUserCode {
        PackedUserCode(
            (user.age as u16) << Self::shift(UserAttr::Age)
                | (user.gender as u16) << Self::shift(UserAttr::Gender)
                | (user.occupation as u16) << Self::shift(UserAttr::Occupation)
                | (user.state as u16) << Self::shift(UserAttr::State),
        )
    }

    /// The raw packed bits (what the dataset's per-rating column stores).
    #[inline]
    pub fn get(self) -> u16 {
        self.0
    }

    /// Reconstructs a code from raw column bits.
    #[inline]
    pub fn from_raw(raw: u16) -> PackedUserCode {
        PackedUserCode(raw)
    }

    /// Extracts one attribute's value index.
    #[inline]
    pub fn field(self, attr: UserAttr) -> u16 {
        (self.0 >> Self::shift(attr)) & Self::mask(attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{AgeGroup, Gender, Occupation, UsState};
    use crate::ids::UserId;
    use crate::zipcode::Zip;

    fn user(age: usize, gender: usize, occ: usize, state: usize) -> User {
        User {
            id: UserId(0),
            age: AgeGroup::from_index(age).unwrap(),
            gender: Gender::from_index(gender).unwrap(),
            occupation: Occupation::from_index(occ).unwrap(),
            zip: Zip::new(0),
            state: UsState::from_index(state).unwrap(),
            city: 0,
        }
    }

    #[test]
    fn fields_round_trip_over_the_full_domain_product() {
        for age in 0..UserAttr::Age.cardinality() {
            for gender in 0..UserAttr::Gender.cardinality() {
                for occ in 0..UserAttr::Occupation.cardinality() {
                    for state in 0..UserAttr::State.cardinality() {
                        let u = user(age, gender, occ, state);
                        let code = PackedUserCode::pack(&u);
                        for attr in UserAttr::ALL {
                            assert_eq!(
                                usize::from(code.field(attr)),
                                u.attr_value(attr).value_index()
                            );
                        }
                        assert!(u32::from(code.get()).leading_zeros() >= 32 - PackedUserCode::BITS);
                    }
                }
            }
        }
    }

    #[test]
    fn fields_do_not_overlap_and_cover_cardinalities() {
        let mut seen: u16 = 0;
        for attr in UserAttr::ALL {
            let field = PackedUserCode::mask(attr) << PackedUserCode::shift(attr);
            assert_eq!(seen & field, 0, "{attr} overlaps another field");
            seen |= field;
            assert!(
                usize::from(PackedUserCode::mask(attr)) + 1 >= attr.cardinality(),
                "{attr} field too narrow"
            );
        }
        assert_eq!(u32::from(seen).count_ones(), PackedUserCode::BITS);
    }

    #[test]
    fn distinct_profiles_get_distinct_codes() {
        let a = PackedUserCode::pack(&user(1, 0, 3, 7));
        let b = PackedUserCode::pack(&user(1, 0, 3, 8));
        let c = PackedUserCode::pack(&user(1, 1, 3, 7));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, PackedUserCode::from_raw(a.get()));
    }
}
