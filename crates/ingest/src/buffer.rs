//! The ingest buffer: typed rating events, validated as they arrive.

use crate::IngestError;
use maprat_data::{AgeGroup, Gender, GenreSet, ItemId, Occupation, Score, Timestamp, UserId, Zip};

/// The demographic profile of a previously unseen reviewer. State and
/// city are derived from the zip code at commit time, exactly as the
/// loader derives them at load time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewUser {
    /// Age bucket.
    pub age: AgeGroup,
    /// Gender.
    pub gender: Gender,
    /// Occupation.
    pub occupation: Occupation,
    /// Zip code (resolves the geo attribute).
    pub zip: Zip,
}

/// The metadata of a previously unseen item.
#[derive(Debug, Clone, PartialEq)]
pub struct NewItem {
    /// Title (must be non-empty).
    pub title: String,
    /// Release year.
    pub year: u16,
    /// Genre set.
    pub genres: GenreSet,
}

/// Who rated: an existing reviewer by dense id, or a new reviewer to be
/// allocated at commit time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UserSpec {
    /// An existing reviewer (or one introduced earlier in this batch).
    Existing(UserId),
    /// A previously unseen reviewer.
    New(NewUser),
}

/// What was rated: an existing item by id or exact title, or a new item
/// to be allocated at commit time.
#[derive(Debug, Clone, PartialEq)]
pub enum ItemSpec {
    /// An existing item (or one introduced earlier in this batch).
    Existing(ItemId),
    /// An existing item, referenced by exact (case-insensitive) title.
    ByTitle(String),
    /// A previously unseen item.
    New(NewItem),
}

/// One incoming rating: who, what, the score and when.
#[derive(Debug, Clone, PartialEq)]
pub struct RatingEvent {
    /// The reviewer.
    pub user: UserSpec,
    /// The item.
    pub item: ItemSpec,
    /// The score (already range-validated by [`Score`]).
    pub score: Score,
    /// When the rating was given.
    pub ts: Timestamp,
}

/// An append buffer of rating events. Structural validation (non-empty
/// titles, well-formed specs) happens at [`push`](IngestBuffer::push);
/// referential validation (do the ids/titles exist?) happens at
/// [`IngestService::commit`](crate::IngestService::commit), against the
/// dataset snapshot the commit will extend.
#[derive(Debug, Clone, Default)]
pub struct IngestBuffer {
    events: Vec<RatingEvent>,
}

impl IngestBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Validates and buffers one rating event.
    pub fn push(&mut self, event: RatingEvent) -> Result<(), IngestError> {
        match &event.item {
            ItemSpec::ByTitle(title) if title.trim().is_empty() => {
                return Err(IngestError::Invalid("empty title reference".into()));
            }
            ItemSpec::New(item) if item.title.trim().is_empty() => {
                return Err(IngestError::Invalid("new item with empty title".into()));
            }
            _ => {}
        }
        self.events.push(event);
        Ok(())
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consumes the buffer into its events.
    pub(crate) fn into_events(self) -> Vec<RatingEvent> {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_rejects_empty_titles() {
        let mut buffer = IngestBuffer::new();
        let event = RatingEvent {
            user: UserSpec::Existing(UserId(0)),
            item: ItemSpec::ByTitle("  ".into()),
            score: Score::new(4).unwrap(),
            ts: Timestamp::from_ymd(2001, 1, 1),
        };
        assert!(matches!(buffer.push(event), Err(IngestError::Invalid(_))));
        assert!(buffer.is_empty());
    }

    #[test]
    fn push_accepts_well_formed_events() {
        let mut buffer = IngestBuffer::new();
        buffer
            .push(RatingEvent {
                user: UserSpec::Existing(UserId(0)),
                item: ItemSpec::Existing(ItemId(0)),
                score: Score::new(5).unwrap(),
                ts: Timestamp::from_ymd(2001, 1, 1),
            })
            .unwrap();
        assert_eq!(buffer.len(), 1);
    }
}
