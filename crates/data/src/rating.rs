//! Rating tuples.

use crate::ids::{ItemId, UserId};
use crate::score::Score;
use crate::time::Timestamp;

/// A rating tuple `⟨i, u, s⟩` (§2.1), timestamped for the time slider.
///
/// The struct is 16 bytes and `Copy`; the dataset stores ratings in one
/// contiguous column sorted by `(item, timestamp)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rating {
    /// Rated item.
    pub item: ItemId,
    /// Rating reviewer.
    pub user: UserId,
    /// Score on the 1..=5 scale.
    pub score: Score,
    /// When the rating was entered.
    pub ts: Timestamp,
}

impl Rating {
    /// Creates a rating tuple.
    pub fn new(user: UserId, item: ItemId, score: Score, ts: Timestamp) -> Self {
        Rating {
            item,
            user,
            score,
            ts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_preserves_fields() {
        let r = Rating::new(
            UserId(3),
            ItemId(7),
            Score::new(4).unwrap(),
            Timestamp::from_ymd(2001, 5, 1),
        );
        assert_eq!(r.user, UserId(3));
        assert_eq!(r.item, ItemId(7));
        assert_eq!(r.score.get(), 4);
    }

    #[test]
    fn rating_is_compact() {
        // Rating tuples are materialized by the million; keep them lean.
        assert!(std::mem::size_of::<Rating>() <= 24);
    }
}
