//! The top-level explanation API — the "Rating Mining" module of the
//! architecture (§2.3): accept items from the front-end, collect `R_I`,
//! construct the candidate groups, and run RHE for both sub-problems.

use crate::budget::Budget;
use crate::error::MineError;
use crate::problem::{MiningProblem, Task};
use crate::query::ItemQuery;
use crate::rhe;
use crate::settings::SearchSettings;
use crate::solution::Interpretation;
use maprat_cube::{CubeOptions, RatingCube};
use maprat_data::{Dataset, ItemId, RatingStats};

/// A complete explanation: both interpretations plus query context.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Human-readable query description.
    pub query: String,
    /// The matched items.
    pub items: Vec<ItemId>,
    /// Size of `R_I`.
    pub num_ratings: usize,
    /// Aggregate over all of `R_I` (the site-style "overall average" the
    /// paper contrasts against).
    pub total: RatingStats,
    /// The Similarity Mining tab.
    pub similarity: Interpretation,
    /// The Diversity Mining tab.
    pub diversity: Interpretation,
}

impl Explanation {
    /// The interpretation for a task.
    pub fn interpretation(&self, task: Task) -> &Interpretation {
        match task {
            Task::Similarity => &self.similarity,
            Task::Diversity => &self.diversity,
        }
    }

    /// Multi-line text rendering for CLI front-ends.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "query: {}", self.query);
        let _ = writeln!(
            out,
            "matched {} item(s), {} ratings, overall average {:.2}",
            self.items.len(),
            self.num_ratings,
            self.total.mean().unwrap_or(0.0)
        );
        out.push_str(&self.similarity.render_text());
        out.push_str(&self.diversity.render_text());
        out
    }
}

/// The mining façade over a dataset.
pub struct Miner<'a> {
    dataset: &'a Dataset,
}

impl<'a> Miner<'a> {
    /// Creates a miner over a dataset.
    pub fn new(dataset: &'a Dataset) -> Self {
        Miner { dataset }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &'a Dataset {
        self.dataset
    }

    /// Collects the matched items and `R_I` for a query *without*
    /// materializing the cube — the approximate path samples this
    /// universe first and builds the cube over the sample.
    pub fn collect_universe(
        &self,
        query: &ItemQuery,
        settings: &SearchSettings,
    ) -> Result<(Vec<ItemId>, Vec<u32>), MineError> {
        settings.validate()?;
        let items = query.items(self.dataset);
        if items.is_empty() {
            return Err(MineError::NoMatchingItems(query.describe()));
        }
        let rating_idx = query.rating_indexes(self.dataset);
        if rating_idx.is_empty() {
            return Err(MineError::NoRatings);
        }
        Ok((items, rating_idx))
    }

    /// Collects `R_I` and materializes the candidate cube for a query.
    pub fn build_cube(
        &self,
        query: &ItemQuery,
        settings: &SearchSettings,
    ) -> Result<(Vec<ItemId>, RatingCube), MineError> {
        let (items, rating_idx) = self.collect_universe(query, settings)?;
        let cube = RatingCube::build(
            self.dataset,
            rating_idx,
            CubeOptions {
                min_support: settings.min_support,
                require_geo: settings.require_geo,
                max_arity: settings.max_arity,
            },
        );
        if cube.is_empty() {
            return Err(MineError::NoCandidates);
        }
        Ok((items, cube))
    }

    /// Runs both mining tasks over an already-built cube.
    pub fn explain_cube(
        &self,
        query: &ItemQuery,
        items: Vec<ItemId>,
        cube: &RatingCube,
        settings: &SearchSettings,
    ) -> Result<Explanation, MineError> {
        self.explain_cube_budget(query, items, cube, settings, &Budget::unlimited())
    }

    /// Like [`Miner::explain_cube`] under a request [`Budget`]: the solver
    /// checks the deadline every climb iteration and an expired budget
    /// aborts with [`MineError::DeadlineExceeded`] instead of producing a
    /// partially-optimized (schedule-dependent) answer.
    pub fn explain_cube_budget(
        &self,
        query: &ItemQuery,
        items: Vec<ItemId>,
        cube: &RatingCube,
        settings: &SearchSettings,
        budget: &Budget,
    ) -> Result<Explanation, MineError> {
        let problem = MiningProblem::new(
            cube,
            settings.max_groups,
            settings.min_coverage,
            settings.dm_lambda,
        );
        let mut interpretations = Vec::with_capacity(2);
        for task in Task::ALL {
            let solution = rhe::solve_budget(&problem, task, &settings.rhe, budget)?
                .ok_or(MineError::NoCandidates)?;
            interpretations.push(Interpretation::from_solution(&problem, task, &solution));
        }
        let diversity = interpretations.pop().expect("two tasks");
        let similarity = interpretations.pop().expect("two tasks");
        Ok(Explanation {
            query: query.describe(),
            items,
            num_ratings: cube.universe(),
            total: *cube.total_stats(),
            similarity,
            diversity,
        })
    }

    /// One-call API: query → explanation.
    pub fn explain(
        &self,
        query: &ItemQuery,
        settings: &SearchSettings,
    ) -> Result<Explanation, MineError> {
        let (items, cube) = self.build_cube(query, settings)?;
        self.explain_cube(query, items, &cube, settings)
    }

    /// One-call API under a request [`Budget`].
    pub fn explain_budget(
        &self,
        query: &ItemQuery,
        settings: &SearchSettings,
        budget: &Budget,
    ) -> Result<Explanation, MineError> {
        if budget.expired() {
            return Err(MineError::DeadlineExceeded);
        }
        let (items, cube) = self.build_cube(query, settings)?;
        self.explain_cube_budget(query, items, &cube, settings, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maprat_data::synth::{generate, SynthConfig};
    use maprat_data::{AttrValue, Gender, UsState, UserAttr};

    fn dataset() -> Dataset {
        generate(&SynthConfig::small(101)).unwrap()
    }

    #[test]
    fn toy_story_explanation_recovers_planted_sm_groups() {
        let d = dataset();
        let miner = Miner::new(&d);
        let settings = SearchSettings::default().with_min_coverage(0.15);
        let e = miner
            .explain(&ItemQuery::title("Toy Story"), &settings)
            .unwrap();
        assert_eq!(e.similarity.groups.len(), 3);
        // All SM groups carry the geo anchor and rate positively.
        for g in &e.similarity.groups {
            assert!(g.desc.state().is_some(), "geo condition required");
            assert!(g.stats.mean().unwrap() > 3.0, "{}", g.label);
        }
        // The planted CA-male signal should surface in at least one group
        // (as {M, CA} itself or a CA-anchored refinement of it).
        let has_ca_male = e.similarity.groups.iter().any(|g| {
            g.desc.state() == Some(UsState::CA)
                && g.desc.value(UserAttr::Gender) == Some(AttrValue::Gender(Gender::Male))
        });
        let has_planted_state = e.similarity.groups.iter().any(|g| {
            matches!(
                g.desc.state(),
                Some(UsState::CA) | Some(UsState::MA) | Some(UsState::NY)
            )
        });
        assert!(
            has_ca_male || has_planted_state,
            "expected planted structure, got: {:?}",
            e.similarity
                .groups
                .iter()
                .map(|g| g.label.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn eclipse_diversity_tab_shows_controversy() {
        let d = dataset();
        let miner = Miner::new(&d);
        let settings = SearchSettings::default()
            .with_require_geo(false)
            .with_min_coverage(0.15)
            .with_max_groups(2);
        let e = miner
            .explain(&ItemQuery::title("The Twilight Saga: Eclipse"), &settings)
            .unwrap();
        let means: Vec<f64> = e
            .diversity
            .groups
            .iter()
            .map(|g| g.stats.mean().unwrap())
            .collect();
        assert_eq!(means.len(), 2);
        assert!(
            (means[0] - means[1]).abs() > 1.2,
            "controversial movie should split, got {means:?}"
        );
        // The overall mean sits in the middle — the "useless average" the
        // paper motivates against (4.8/10 ≈ 2.4/5).
        let overall = e.total.mean().unwrap();
        assert!((1.8..=3.2).contains(&overall), "overall {overall}");
    }

    #[test]
    fn unknown_title_errors() {
        let d = dataset();
        let miner = Miner::new(&d);
        let err = miner
            .explain(
                &ItemQuery::title("No Such Movie"),
                &SearchSettings::default(),
            )
            .unwrap_err();
        assert!(matches!(err, MineError::NoMatchingItems(_)));
    }

    #[test]
    fn invalid_settings_propagate() {
        let d = dataset();
        let miner = Miner::new(&d);
        let err = miner
            .explain(
                &ItemQuery::title("Toy Story"),
                &SearchSettings::default().with_max_groups(0),
            )
            .unwrap_err();
        assert!(matches!(err, MineError::InvalidSettings(_)));
    }

    #[test]
    fn multi_item_query_mines_union_of_ratings() {
        let d = dataset();
        let miner = Miner::new(&d);
        let settings = SearchSettings::default().with_min_coverage(0.1);
        let single = miner
            .explain(
                &ItemQuery::title("The Lord of the Rings: The Two Towers"),
                &settings,
            )
            .unwrap();
        let trilogy = miner
            .explain(
                &ItemQuery::new(crate::query::QueryTerm::TitleContains(
                    "Lord of the Rings".into(),
                )),
                &settings,
            )
            .unwrap();
        assert_eq!(trilogy.items.len(), 3);
        assert!(trilogy.num_ratings > single.num_ratings);
    }

    #[test]
    fn budgeted_explain_matches_plain_explain_and_expires_cleanly() {
        let d = dataset();
        let miner = Miner::new(&d);
        let settings = SearchSettings::default().with_min_coverage(0.1);
        let query = ItemQuery::title("Toy Story");
        let plain = miner.explain(&query, &settings).unwrap();
        let generous = Budget::from_deadline_ms(120_000);
        let budgeted = miner.explain_budget(&query, &settings, &generous).unwrap();
        assert_eq!(
            format!("{:?}", plain.similarity.groups),
            format!("{:?}", budgeted.similarity.groups)
        );
        assert_eq!(plain.diversity.objective, budgeted.diversity.objective);

        let expired = Budget::with_deadline(std::time::Duration::ZERO);
        let err = miner
            .explain_budget(&query, &settings, &expired)
            .unwrap_err();
        assert!(matches!(err, MineError::DeadlineExceeded));
    }

    #[test]
    fn render_text_is_complete() {
        let d = dataset();
        let miner = Miner::new(&d);
        let e = miner
            .explain(
                &ItemQuery::title("Toy Story"),
                &SearchSettings::default().with_min_coverage(0.1),
            )
            .unwrap();
        let text = e.render_text();
        assert!(text.contains("Similarity Mining"));
        assert!(text.contains("Diversity Mining"));
        assert!(text.contains("overall average"));
    }
}
