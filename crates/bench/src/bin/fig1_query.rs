//! FIG1 — reproduces Figure 1, the primary user interface of MapRat.
//!
//! The figure shows the query form: a search box ("Toy Story"), a query
//! type selector (Movie Name), additional search settings (maximum number
//! of groups, rating coverage) and the time slider. This binary builds the
//! same form state, validates it the way the UI does, then drives the
//! *actual* demo server through an HTTP round trip — proving the Figure-1
//! pipeline (form → HTTP → mining → JSON) end to end.
//!
//! Run: `cargo run --release -p maprat-bench --bin fig1_query [--check]`

use maprat_bench::{check_mode, dataset_arc, table::Table, ShapeCheck};
use maprat_core::query::ItemQuery;
use maprat_core::SearchSettings;
use maprat_data::{MonthKey, TimeRange};
use maprat_explore::MapRatEngine;
use maprat_server::{AppState, HttpServer, Json};
use std::io::{Read, Write};
use std::net::TcpStream;

fn http_get(port: u16, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).expect("connect demo server");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: l\r\n\r\n").expect("send request");
    let mut buf = String::new();
    stream.read_to_string(&mut buf).expect("read response");
    let status: u16 = buf
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (
        status,
        buf.split("\r\n\r\n").nth(1).unwrap_or("").to_string(),
    )
}

fn main() {
    let mut check = ShapeCheck::new();

    // --- The Figure-1 form state.
    println!("=== FIG1: primary user interface state ===\n");
    let mut form = Table::new(["control", "value"]);
    form.row(["Search", "Toy Story"]);
    form.row(["Type of query", "Movie Name"]);
    form.row(["Max groups", "3"]);
    form.row(["Rating coverage", "0.20"]);
    form.row(["Time slider", "2000-04 .. 2003-02"]);
    form.print();

    // The same state as typed API objects, validated like the UI does.
    let query = ItemQuery::title("Toy Story").within(TimeRange::months(
        MonthKey::new(2000, 4)..=MonthKey::new(2003, 2),
    ));
    let settings = SearchSettings::default()
        .with_max_groups(3)
        .with_min_coverage(0.2);
    check.expect("settings validate", settings.validate().is_ok());
    println!("\nparsed query: {query}");

    // Invalid settings are rejected with a message (the UI's error path).
    let bad = SearchSettings::default().with_min_coverage(1.4);
    check.expect("invalid coverage rejected", bad.validate().is_err());

    // --- Drive the real server, exactly as the web form does.
    let state = AppState::new(MapRatEngine::new(dataset_arc()));
    let server =
        HttpServer::start("127.0.0.1:0", 2, state.into_handler()).expect("start demo server");
    println!("\ndemo server on 127.0.0.1:{}", server.port());

    let (status, page) = http_get(server.port(), "/");
    check.expect("index page serves", status == 200);
    check.expect(
        "page carries the Figure-1 controls",
        page.contains("Explain Ratings") && page.contains("Movie Name"),
    );

    let (status, body) = http_get(
        server.port(),
        "/api/v1/explain?q=Toy+Story&type=movie&k=3&coverage=0.2&from=2000-04&to=2003-02",
    );
    check.expect("explain round trip is 200", status == 200);
    let v = Json::parse(&body).expect("valid JSON from the API");
    println!(
        "\nAPI answer: {} item(s), {} ratings, overall mean {:.2}",
        v.get("items").and_then(Json::as_f64).unwrap_or(0.0),
        v.get("ratings").and_then(Json::as_f64).unwrap_or(0.0),
        v.get("overall_mean").and_then(Json::as_f64).unwrap_or(0.0),
    );
    let groups = v
        .get("similarity")
        .and_then(|s| s.get("groups"))
        .and_then(Json::len)
        .unwrap_or(0);
    check.expect("clicking Explain Ratings returns groups", groups >= 1);
    println!("similarity groups returned: {groups}");

    if check_mode() {
        check.finish();
    } else {
        check.finish();
        println!("\n(open the UI yourself: cargo run --release --example serve_demo)");
    }
}
