//! Criterion bench: end-to-end explain latency, cold vs cached
//! (TXT-LATENCY companion — the §2.3 latency claim).

use criterion::{criterion_group, criterion_main, Criterion};
use maprat_bench::{dataset, dataset_arc};
use maprat_core::query::ItemQuery;
use maprat_core::{Miner, SearchSettings};
use maprat_explore::MapRatEngine;
use std::hint::black_box;

fn bench_explain(c: &mut Criterion) {
    let d = dataset();
    let settings = SearchSettings::default().with_min_coverage(0.15);
    let query = ItemQuery::title("Toy Story");

    let mut group = c.benchmark_group("explain");
    group.sample_size(10);

    group.bench_function("cold_miner", |b| {
        let miner = Miner::new(d);
        b.iter(|| black_box(miner.explain(&query, &settings)))
    });

    group.bench_function("cached_engine", |b| {
        let engine = MapRatEngine::new(dataset_arc());
        let _ = engine.explain_query(&query, &settings); // warm
        b.iter(|| black_box(engine.explain_query(&query, &settings)))
    });

    group.finish();
}

criterion_group!(benches, bench_explain);
criterion_main!(benches);
