//! Deterministic synthetic name generation for movie titles and people.
//!
//! Titles combine adjective/noun pools keyed by genre flavour; person names
//! combine first/last pools. Collisions are resolved by appending a roman
//! numeral, mirroring how real catalogues disambiguate sequels.

use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

const TITLE_ADJECTIVES: &[&str] = &[
    "Crimson",
    "Silent",
    "Golden",
    "Broken",
    "Midnight",
    "Electric",
    "Forgotten",
    "Burning",
    "Hidden",
    "Savage",
    "Winter",
    "Paper",
    "Iron",
    "Hollow",
    "Distant",
    "Neon",
    "Wandering",
    "Lucky",
    "Final",
    "Restless",
    "Velvet",
    "Quiet",
    "Stolen",
    "Wild",
    "Lonely",
    "Emerald",
    "Shattered",
    "Rising",
    "Falling",
    "Secret",
];

const TITLE_NOUNS: &[&str] = &[
    "Horizon",
    "Garden",
    "River",
    "Empire",
    "Letter",
    "Promise",
    "Shadow",
    "Station",
    "Harvest",
    "Voyage",
    "Symphony",
    "Detective",
    "Kingdom",
    "Carnival",
    "Frontier",
    "Mirage",
    "Echo",
    "Orchard",
    "Lighthouse",
    "Avenue",
    "Winter",
    "Engine",
    "Harbor",
    "Meadow",
    "Cathedral",
    "Compass",
    "Labyrinth",
    "Tempest",
    "Parade",
    "Satellite",
];

const TITLE_PATTERNS: &[&str] = &["{a} {n}", "The {a} {n}", "{n} of the {a}", "A {a} {n}"];

const FIRST_NAMES: &[&str] = &[
    "James",
    "Mary",
    "Robert",
    "Patricia",
    "John",
    "Jennifer",
    "Michael",
    "Linda",
    "David",
    "Elizabeth",
    "William",
    "Barbara",
    "Richard",
    "Susan",
    "Joseph",
    "Jessica",
    "Thomas",
    "Sarah",
    "Charles",
    "Karen",
    "Daniel",
    "Nancy",
    "Matthew",
    "Lisa",
    "Anthony",
    "Betty",
    "Mark",
    "Margaret",
    "Steven",
    "Sandra",
    "Andrew",
    "Ashley",
    "Kenneth",
    "Kimberly",
    "Paul",
    "Emily",
    "Joshua",
    "Donna",
    "Kevin",
    "Michelle",
];

const LAST_NAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzalez",
    "Wilson",
    "Anderson",
    "Thomas",
    "Taylor",
    "Moore",
    "Jackson",
    "Martin",
    "Lee",
    "Perez",
    "Thompson",
    "White",
    "Harris",
    "Sanchez",
    "Clark",
    "Ramirez",
    "Lewis",
    "Robinson",
    "Walker",
    "Young",
    "Allen",
    "King",
    "Wright",
    "Scott",
    "Torres",
    "Nguyen",
    "Hill",
    "Flores",
];

fn roman(mut n: usize) -> String {
    // Only small numerals are ever needed (collision suffixes).
    const TABLE: &[(usize, &str)] = &[(10, "X"), (9, "IX"), (5, "V"), (4, "IV"), (1, "I")];
    let mut out = String::new();
    for &(v, s) in TABLE {
        while n >= v {
            out.push_str(s);
            n -= v;
        }
    }
    out
}

/// Mints `count` distinct movie titles.
pub fn unique_titles<R: Rng>(rng: &mut R, count: usize) -> Vec<String> {
    let mut seen: HashSet<String> = HashSet::with_capacity(count);
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let a = *TITLE_ADJECTIVES.choose(rng).expect("non-empty pool");
        let n = *TITLE_NOUNS.choose(rng).expect("non-empty pool");
        let pattern = *TITLE_PATTERNS.choose(rng).expect("non-empty pool");
        let base = pattern.replace("{a}", a).replace("{n}", n);
        let mut candidate = base.clone();
        let mut suffix = 1;
        while seen.contains(&candidate) {
            suffix += 1;
            candidate = format!("{} {}", base, roman(suffix));
        }
        seen.insert(candidate.clone());
        out.push(candidate);
    }
    out
}

/// Mints `count` distinct person names.
pub fn unique_person_names<R: Rng>(rng: &mut R, count: usize) -> Vec<String> {
    let mut seen: HashSet<String> = HashSet::with_capacity(count);
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let f = *FIRST_NAMES.choose(rng).expect("non-empty pool");
        let l = *LAST_NAMES.choose(rng).expect("non-empty pool");
        let base = format!("{f} {l}");
        let mut candidate = base.clone();
        let mut suffix = 1;
        while seen.contains(&candidate) {
            suffix += 1;
            candidate = format!("{base} {}", roman(suffix));
        }
        seen.insert(candidate.clone());
        out.push(candidate);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn titles_unique_even_beyond_pool_product() {
        let mut rng = StdRng::seed_from_u64(1);
        let titles = unique_titles(&mut rng, 5000);
        let set: HashSet<_> = titles.iter().collect();
        assert_eq!(set.len(), 5000);
    }

    #[test]
    fn person_names_unique() {
        let mut rng = StdRng::seed_from_u64(2);
        let names = unique_person_names(&mut rng, 3000);
        let set: HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 3000);
    }

    #[test]
    fn roman_numerals() {
        assert_eq!(roman(2), "II");
        assert_eq!(roman(4), "IV");
        assert_eq!(roman(9), "IX");
        assert_eq!(roman(13), "XIII");
    }

    #[test]
    fn deterministic_for_seed() {
        let a = unique_titles(&mut StdRng::seed_from_u64(9), 50);
        let b = unique_titles(&mut StdRng::seed_from_u64(9), 50);
        assert_eq!(a, b);
    }
}
