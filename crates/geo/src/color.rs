//! The red→green Likert scale of §2.3: "Dark red corresponds to lowest
//! rating while dark green denotes the highest and the intermediate values
//! are represented by the red-green gradient."

/// An sRGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rgb {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Rgb {
    /// CSS hex form, e.g. `#a50026`.
    pub fn hex(self) -> String {
        format!("#{:02x}{:02x}{:02x}", self.r, self.g, self.b)
    }

    /// Nearest ANSI-256 color index (6×6×6 cube region), for terminals.
    pub fn ansi256(self) -> u8 {
        let q = |v: u8| -> u8 {
            // Map 0..=255 onto the 0..=5 cube levels (0, 95, 135, 175, 215, 255).
            match v {
                0..=47 => 0,
                48..=114 => 1,
                115..=154 => 2,
                155..=194 => 3,
                195..=234 => 4,
                _ => 5,
            }
        };
        16 + 36 * q(self.r) + 6 * q(self.g) + q(self.b)
    }
}

/// Gradient stops at scores 1..=5 (ColorBrewer RdYlGn-style).
const STOPS: [(f64, Rgb); 5] = [
    (
        1.0,
        Rgb {
            r: 165,
            g: 0,
            b: 38,
        },
    ),
    // ColorBrewer's stock stop is (215, 48, 39); the red channel is dialed
    // back slightly so the green-minus-red balance increases monotonically
    // across stops — "more green = better rated" holds exactly.
    (
        2.0,
        Rgb {
            r: 205,
            g: 48,
            b: 39,
        },
    ),
    (
        3.0,
        Rgb {
            r: 254,
            g: 224,
            b: 139,
        },
    ),
    (
        4.0,
        Rgb {
            r: 102,
            g: 189,
            b: 99,
        },
    ),
    (
        5.0,
        Rgb {
            r: 0,
            g: 104,
            b: 55,
        },
    ),
];

/// The Likert color for an average rating on the `[1, 5]` scale; values
/// outside the scale clamp to the endpoints.
///
/// ```
/// use maprat_geo::likert_color;
/// assert_eq!(likert_color(1.0).hex(), "#a50026"); // dark red = hates it
/// assert_eq!(likert_color(5.0).hex(), "#006837"); // dark green = loves it
/// ```
pub fn likert_color(rating: f64) -> Rgb {
    let rating = if rating.is_nan() {
        3.0
    } else {
        rating.clamp(1.0, 5.0)
    };
    let mut lo = STOPS[0];
    for &hi in &STOPS[1..] {
        if rating <= hi.0 {
            let t = (rating - lo.0) / (hi.0 - lo.0);
            let lerp = |a: u8, b: u8| -> u8 {
                (f64::from(a) + (f64::from(b) - f64::from(a)) * t).round() as u8
            };
            return Rgb {
                r: lerp(lo.1.r, hi.1.r),
                g: lerp(lo.1.g, hi.1.g),
                b: lerp(lo.1.b, hi.1.b),
            };
        }
        lo = hi;
    }
    STOPS[4].1
}

/// Neutral fill for states without data.
pub const NO_DATA: Rgb = Rgb {
    r: 224,
    g: 224,
    b: 224,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_match_paper_semantics() {
        assert_eq!(likert_color(1.0).hex(), "#a50026"); // dark red = lowest
        assert_eq!(likert_color(5.0).hex(), "#006837"); // dark green = highest
    }

    #[test]
    fn midpoint_is_yellowish() {
        let c = likert_color(3.0);
        assert!(c.r > 200 && c.g > 200 && c.b < 160, "{:?}", c);
    }

    #[test]
    fn clamps_out_of_scale() {
        assert_eq!(likert_color(0.0), likert_color(1.0));
        assert_eq!(likert_color(9.0), likert_color(5.0));
        assert_eq!(likert_color(f64::NAN), likert_color(3.0));
    }

    #[test]
    fn stops_are_monotonic_in_green_minus_red() {
        // The gradient wiggles *within* a segment (dark red → bright red
        // raises both channels), but across the integer stops the red→green
        // balance must strictly increase.
        let balance = |r: f64| {
            let c = likert_color(r);
            f64::from(c.g) - f64::from(c.r)
        };
        for s in 1..5 {
            assert!(balance(s as f64 + 1.0) > balance(s as f64), "stop {s}");
        }
    }

    #[test]
    fn interpolation_between_stops() {
        let c = likert_color(4.5);
        let lo = likert_color(4.0);
        let hi = likert_color(5.0);
        assert!(c.g <= lo.g && c.g >= hi.g);
    }

    #[test]
    fn ansi256_in_cube_range() {
        for i in 0..=40 {
            let idx = likert_color(1.0 + i as f64 * 0.1).ansi256();
            assert!((16..=231).contains(&idx));
        }
        assert_ne!(likert_color(1.0).ansi256(), likert_color(5.0).ansi256());
    }

    #[test]
    fn hex_format() {
        assert_eq!(
            Rgb {
                r: 0,
                g: 255,
                b: 16
            }
            .hex(),
            "#00ff10"
        );
    }
}
