//! EXT-SCALING — end-to-end explain latency as `|R_I|` and the candidate
//! pool grow, plus the exact-vs-approximate crossover the sampling layer
//! exists for (docs/APPROX.md).
//!
//! Section 1 times the exact pipeline's components (cube build, RHE per
//! task) per universe size. Section 2 races the exact cold explain
//! against the stratified-sampling path (`MAPRAT_SAMPLE_FRAC`-style
//! frac 0.1) at every size, verifies the reported confidence intervals
//! contain the exact group means, and records where sampling starts
//! paying for itself — at `--scale huge` (10M ratings) the approximate
//! answer must be ≥10× faster than the exact one.
//!
//! Shape expectations: cube build is linear-ish in `|R_I|`; RHE cost grows
//! with the pool (universe-sized bitmap unions dominate); total stays
//! interactive at MovieLens scale; every approx bound contains the exact
//! mean it estimates.
//!
//! Run: `cargo run --release -p maprat-bench --bin exp_scaling
//! [-- [out.json] [--check] [--scale huge] [--baseline committed.json
//! [--max-regress 0.5]]]` (default output: `BENCH_scaling_head.json` —
//! deliberately *not* the committed `BENCH_pr9.json` baseline, so a bare
//! local run can never clobber what the gate compares against).

use maprat_approx::{ApproxInfo, StratifiedSampler, DEFAULT_CONFIDENCE};
use maprat_bench::timing::{ms, time_once};
use maprat_bench::{dataset, table::Table, Scale, ShapeCheck};
use maprat_core::query::ItemQuery;
use maprat_core::{parallel, rhe, Miner, MiningProblem, RheParams, SearchSettings, Task};
use maprat_cube::{CubeOptions, RatingCube};
use maprat_server::Json;
use std::fmt::Write as _;

/// The sampling fraction the crossover is measured at — the
/// `MAPRAT_SAMPLE_FRAC` default, so the bench reports what the serving
/// default would do.
const FRAC: f64 = 0.1;

/// The metrics the CI `quick-bench` gate fails on.
const GATED_KEYS: [&str; 2] = ["exact_cold_ms", "approx_cold_ms"];

/// One crossover measurement.
struct CrossoverRow {
    n: usize,
    exact_ms: f64,
    approx_ms: f64,
    achieved_frac: f64,
    max_half_width: f64,
    joined: usize,
    contained: usize,
    exhaustive: bool,
}

/// Compares the gated metrics of `snapshot` against `baseline_path`;
/// returns the failure messages (empty = gate passes). Improvements
/// never fail the gate.
fn gate_against_baseline(snapshot: &Json, baseline_path: &str, max_regress: f64) -> Vec<String> {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
    let baseline = Json::parse(&text).expect("baseline must be valid JSON");
    let mut failures = Vec::new();
    for key in GATED_KEYS {
        let Some(base) = baseline.get(key).and_then(Json::as_f64) else {
            println!("[gate] {key:<16} absent from baseline — skipped");
            continue;
        };
        let new = snapshot
            .get(key)
            .and_then(Json::as_f64)
            .expect("snapshot carries every gated key");
        let limit = base * (1.0 + max_regress);
        let verdict = if new <= limit { "ok" } else { "REGRESSED" };
        println!(
            "[gate] {key:<16} baseline {base:>9.4} ms | now {new:>9.4} ms | limit {limit:>9.4} ms | {verdict}"
        );
        if new > limit {
            failures.push(format!(
                "{key}: {new:.4} ms exceeds {limit:.4} ms (baseline {base:.4} ms +{:.0}%)",
                max_regress * 100.0
            ));
        }
    }
    failures
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut max_regress = 0.5f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline = args.next(),
            "--max-regress" => {
                max_regress = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(max_regress)
            }
            "--scale" => {
                args.next(); // consumed by Scale::from_args_or_env
            }
            "--check" => {} // read by check_mode
            bare if !bare.starts_with("--") => out_path = Some(bare.to_string()),
            unknown => eprintln!("[exp_scaling] ignoring unknown flag {unknown}"),
        }
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_scaling_head.json".to_string());
    let scale = Scale::from_args_or_env();

    let mut check = ShapeCheck::new();
    let d = dataset();
    let item = d.find_title("Toy Story").expect("planted");
    let full: Vec<u32> = d.rating_range_for_item(item).collect();

    // Grow |R_I| by prefix-slicing the item's (time-ordered) ratings, then
    // top up with every other item's ratings for the larger sizes (at
    // `huge` scale the top-up reaches multi-million-rating universes).
    let mut universe: Vec<u32> = full.clone();
    for other in d.items() {
        if other.id != item {
            universe.extend(d.rating_range_for_item(other.id));
        }
    }
    let sizes: Vec<usize> = [
        500usize, 2_000, 8_000, 32_000, 128_000, 512_000, 2_048_000, 8_192_000,
    ]
    .into_iter()
    .filter(|&n| n <= universe.len())
    .collect();

    println!(
        "=== EXT-SCALING: cost vs |R_I| (universe available: {}) ===\n",
        universe.len()
    );
    let mut t = Table::new([
        "|R_I|",
        "pool",
        "cube ms",
        "RHE(SM) ms",
        "RHE(DM) ms",
        "total ms",
    ]);
    let mut rows: Vec<(usize, f64)> = Vec::new();

    for &n in &sizes {
        let slice: Vec<u32> = universe[..n].to_vec();
        let (cube, cube_time) = time_once(|| {
            RatingCube::build(
                d,
                slice.clone(),
                CubeOptions {
                    min_support: 5.max(n / 2000),
                    require_geo: false,
                    max_arity: 2,
                },
            )
        });
        let problem = MiningProblem::new(&cube, 3, 0.15, 0.5);
        let params = RheParams::default();
        let (_, sm_time) = time_once(|| rhe::solve(&problem, Task::Similarity, &params));
        let (_, dm_time) = time_once(|| rhe::solve(&problem, Task::Diversity, &params));
        let total = cube_time + sm_time + dm_time;
        rows.push((n, total.as_secs_f64()));
        t.row([
            n.to_string(),
            cube.len().to_string(),
            ms(cube_time),
            ms(sm_time),
            ms(dm_time),
            ms(total),
        ]);
    }
    t.print();

    // Shape checks: super-linear blowup would break interactivity.
    if rows.len() >= 3 {
        let (n0, t0) = rows[0];
        let (n_last, t_last) = rows[rows.len() - 1];
        let growth = (t_last / t0.max(1e-9)) / (n_last as f64 / n0 as f64);
        println!("\ncost growth per unit of |R_I| growth: {growth:.2}× (≈1 is linear)");
        check.expect(
            "total cost grows at most ~quadratically in |R_I|",
            growth < (n_last as f64 / n0 as f64), // strictly below n² behaviour
        );
    }
    check.expect(
        "largest configuration stays interactive (< 30 s)",
        rows.last().is_some_and(|&(_, t)| t < 30.0),
    );

    // === Exact vs approximate crossover (docs/APPROX.md) ===
    //
    // Per size, the exact cold path (cube over the full slice + both
    // solves) races the sampled path (stratified sample at FRAC + cube
    // over the sample + both solves + bound computation). Containment is
    // checked by joining each reported group bound against the exact
    // cube's group of the same token.
    println!("\n=== EXT-SCALING: exact vs approx cold explain (frac {FRAC}) ===\n");
    let mut settings = SearchSettings::default()
        .with_min_coverage(0.15)
        .with_require_geo(false);
    settings.max_arity = 2;
    let query = ItemQuery::title("Toy Story");
    let items = query.items(d);
    let miner = Miner::new(d);
    let mut t2 = Table::new([
        "|R_I|",
        "exact ms",
        "approx ms",
        "speedup",
        "read frac",
        "max ±",
        "contained",
    ]);
    let mut cross: Vec<CrossoverRow> = Vec::new();

    for &n in &sizes {
        let slice: Vec<u32> = universe[..n].to_vec();
        let min_support = 5.max(n / 2000);
        settings.min_support = min_support;

        // Exact cold path.
        let (exact_cube, exact_cube_time) = time_once(|| {
            RatingCube::build(
                d,
                slice.clone(),
                CubeOptions {
                    min_support,
                    require_geo: false,
                    max_arity: 2,
                },
            )
        });
        let (_exact, exact_mine_time) = time_once(|| {
            miner
                .explain_cube(&query, items.clone(), &exact_cube, &settings)
                .expect("exact explain")
        });
        let exact_ms = (exact_cube_time + exact_mine_time).as_secs_f64() * 1e3;

        // Approximate cold path: sample + sampled cube + solves + bounds
        // (including the validation-sample pass the bounds are priced on).
        let ((_approx, info), approx_time) = time_once(|| {
            let sampler = StratifiedSampler::new(FRAC, settings.rhe.seed);
            let sample = sampler.sample(d, &slice);
            // Same support-density threshold as the engine: scale the
            // iceberg floor by the fraction actually read.
            let scaled = ((min_support as f64) * sample.achieved_frac())
                .round()
                .max(1.0) as usize;
            let cube = RatingCube::build(
                d,
                sample.rating_idx.clone(),
                CubeOptions {
                    min_support: scaled,
                    require_geo: false,
                    max_arity: 2,
                },
            );
            let e = miner
                .explain_cube(&query, items.clone(), &cube, &settings)
                .expect("approx explain");
            let validation = sampler.validation().sample(d, &slice);
            let info = ApproxInfo::for_explanation(d, &e, &sample, &validation);
            (e, info)
        });
        let approx_ms = approx_time.as_secs_f64() * 1e3;

        // Containment: every reported interval must hold the group's
        // exact mean over the full slice (looked up in the exact cube by
        // token; groups the exact cube pruned are skipped).
        let mut joined = 0usize;
        let mut contained = 0usize;
        for bounds in [&info.similarity, &info.diversity] {
            for b in &bounds.groups {
                let exact_mean = exact_cube
                    .groups()
                    .iter()
                    .find(|g| g.desc.token() == b.token)
                    .and_then(|g| g.stats.mean());
                if let Some(m) = exact_mean {
                    joined += 1;
                    if b.contains(m) {
                        contained += 1;
                    }
                }
            }
        }

        let exhaustive = info.sampled >= info.population;
        t2.row([
            n.to_string(),
            format!("{exact_ms:.2}"),
            format!("{approx_ms:.2}"),
            format!("{:.2}×", exact_ms / approx_ms.max(1e-9)),
            format!("{:.3}", info.achieved_frac),
            format!("{:.3}", info.max_half_width()),
            format!("{contained}/{joined}"),
        ]);
        cross.push(CrossoverRow {
            n,
            exact_ms,
            approx_ms,
            achieved_frac: info.achieved_frac,
            max_half_width: info.max_half_width(),
            joined,
            contained,
            exhaustive,
        });
    }
    t2.print();

    let last = cross.last().expect("at least one size");
    let speedup = last.exact_ms / last.approx_ms.max(1e-9);
    println!(
        "\ncrossover at |R_I| = {}: exact {:.2} ms vs approx {:.2} ms ({speedup:.2}× speedup, read {:.1}% of R_I)",
        last.n,
        last.exact_ms,
        last.approx_ms,
        last.achieved_frac * 100.0
    );

    // The intervals are 95% *per group*: across a table of a few dozen
    // bounds a fixed seed is expected to produce the occasional ~2-SE
    // near-miss, so the shape check asserts the containment *rate* the
    // contract promises, not perfection.
    let joined: usize = cross.iter().map(|r| r.joined).sum();
    let contained: usize = cross.iter().map(|r| r.contained).sum();
    println!(
        "bound containment: {contained}/{joined} ({:.0}% nominal per-interval)",
        DEFAULT_CONFIDENCE * 100.0
    );
    check.expect(
        "≥85% of approx bounds contain their exact group mean",
        contained as f64 >= 0.85 * joined as f64,
    );
    check.expect(
        "every size joined at least one group against the exact cube",
        cross.iter().all(|r| r.joined > 0),
    );
    // Small slices are singleton-strata heavy and the one-per-stratum
    // floor reads most of them — sampling only pays off once strata fill
    // up, which is the crossover the table shows. Only the big scales
    // get hard latency expectations.
    if matches!(scale, Scale::Full | Scale::Huge) {
        check.expect("largest universe samples a strict subset", !last.exhaustive);
        check.expect(
            "approx is faster than exact at the largest universe",
            last.approx_ms < last.exact_ms,
        );
    }
    if scale == Scale::Huge {
        check.expect(
            "approx cold explain ≥10× faster than exact at huge scale",
            speedup >= 10.0,
        );
    }

    // Machine-readable snapshot (largest universe = the headline numbers).
    let snapshot_label: String = std::path::Path::new(&out_path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("BENCH")
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect();
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"snapshot\": \"{snapshot_label}\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale.name());
    let _ = writeln!(json, "  \"threads\": {},", parallel::num_threads());
    let _ = writeln!(json, "  \"sample_frac\": {FRAC},");
    let _ = writeln!(json, "  \"largest_universe\": {},", last.n);
    let _ = writeln!(json, "  \"exact_cold_ms\": {:.4},", last.exact_ms);
    let _ = writeln!(json, "  \"approx_cold_ms\": {:.4},", last.approx_ms);
    let _ = writeln!(json, "  \"speedup\": {speedup:.4},");
    let _ = writeln!(json, "  \"achieved_frac\": {:.6},", last.achieved_frac);
    let _ = writeln!(json, "  \"max_half_width\": {:.6},", last.max_half_width);
    let _ = writeln!(
        json,
        "  \"bound_containment\": {:.6}",
        if joined == 0 {
            1.0
        } else {
            contained as f64 / joined as f64
        }
    );
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, &json).expect("write scaling snapshot");
    println!("\nwrote {out_path}:\n{json}");

    if let Some(baseline_path) = baseline {
        let snapshot = Json::parse(&json).expect("own snapshot is valid JSON");
        let failures = gate_against_baseline(&snapshot, &baseline_path, max_regress);
        if failures.is_empty() {
            println!(
                "[gate] pass: no gated metric regressed more than {:.0}% vs {baseline_path}",
                max_regress * 100.0
            );
        } else {
            eprintln!("[gate] FAIL vs {baseline_path}:");
            for f in &failures {
                eprintln!("[gate]   {f}");
            }
            std::process::exit(1);
        }
    }
    check.finish();
}
