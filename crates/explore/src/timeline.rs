//! The time slider (§3.1): "Moving the time slider over the range of
//! values allows the user to observe reviewer groups that provide best
//! interpretations for the movie and how they change over time."
//!
//! A [`TimeSlider`] splits the dataset's rating history into month windows
//! and re-mines the query inside each, producing a [`TimelinePoint`]
//! series: window, volume, overall mean and the top SM groups.
//!
//! Windows are independent engine calls against the already-thread-safe
//! sharded cache, so [`TimeSlider::sweep`] mines them on the shared
//! worker pool, up to [`maprat_core::parallel::num_threads`] workers
//! (sized by `MAPRAT_THREADS`, read once at first use; no per-sweep
//! OS-thread spawn). Points come back in slider order and are
//! bit-identical for any thread count.

use crate::engine::MapRatEngine;
use maprat_core::query::ItemQuery;
use maprat_core::{parallel, MineError, Miner, SearchSettings};
use maprat_cube::{CubeOptions, ProfileSummary};
use maprat_data::{Dataset, MonthKey, TimeRange};
use std::collections::BTreeMap;

/// One position of the slider.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelinePoint {
    /// First month of the window (inclusive).
    pub from: MonthKey,
    /// Last month of the window (inclusive).
    pub to: MonthKey,
    /// Ratings in the window.
    pub num_ratings: usize,
    /// Overall mean in the window.
    pub overall_mean: Option<f64>,
    /// The SM groups of the window: `(label, mean, support)`.
    pub top_groups: Vec<(String, f64, usize)>,
    /// Why the window produced no groups, when it did not.
    pub skipped: Option<String>,
}

/// A slider over a query.
pub struct TimeSlider {
    months: Vec<MonthKey>,
    /// Window length in months.
    pub window: usize,
    /// Step between consecutive windows in months.
    pub step: usize,
}

impl TimeSlider {
    /// Builds a slider spanning the whole dataset history.
    pub fn over_dataset(dataset: &Dataset, window: usize, step: usize) -> Option<TimeSlider> {
        let (lo, hi) = dataset.time_span()?;
        let months: Vec<MonthKey> = lo.month_key().iter_through(hi.month_key()).collect();
        (window >= 1 && step >= 1).then_some(TimeSlider {
            months,
            window,
            step,
        })
    }

    /// The window start months.
    pub fn positions(&self) -> Vec<MonthKey> {
        if self.months.is_empty() {
            return Vec::new();
        }
        self.months.iter().copied().step_by(self.step).collect()
    }

    /// The inclusive month range of the window starting at `from`.
    pub fn window_at(&self, from: MonthKey) -> (MonthKey, MonthKey) {
        let mut to = from;
        for _ in 1..self.window {
            to = to.succ();
        }
        (from, to)
    }

    /// Mines every window through the engine's cache, in parallel on the
    /// default worker count, and returns the evolution series in slider
    /// order.
    pub fn sweep(
        &self,
        engine: &MapRatEngine,
        query: &ItemQuery,
        settings: &SearchSettings,
    ) -> Vec<TimelinePoint> {
        self.sweep_with_threads(engine, query, settings, parallel::num_threads())
    }

    /// Like [`sweep`](TimeSlider::sweep) with an explicit worker-thread
    /// cap. The returned points are identical for every `threads` value.
    pub fn sweep_with_threads(
        &self,
        engine: &MapRatEngine,
        query: &ItemQuery,
        settings: &SearchSettings,
        threads: usize,
    ) -> Vec<TimelinePoint> {
        let positions = self.positions();
        parallel::parallel_map(positions.len(), threads, |i| {
            let (from, to) = self.window_at(positions[i]);
            let windowed = query.clone().within(TimeRange::months(from..=to));
            let result = engine.explain_query(&windowed, settings);
            match &*result {
                Ok(r) => TimelinePoint {
                    from,
                    to,
                    num_ratings: r.explanation.num_ratings,
                    overall_mean: r.explanation.total.mean(),
                    top_groups: r
                        .explanation
                        .similarity
                        .groups
                        .iter()
                        .map(|g| (g.label.clone(), g.stats.mean().unwrap_or(0.0), g.support))
                        .collect(),
                    skipped: None,
                },
                Err(MineError::NoRatings) | Err(MineError::NoCandidates) => TimelinePoint {
                    from,
                    to,
                    num_ratings: 0,
                    overall_mean: None,
                    top_groups: Vec::new(),
                    skipped: Some("too few ratings in window".into()),
                },
                Err(e) => TimelinePoint {
                    from,
                    to,
                    num_ratings: 0,
                    overall_mean: None,
                    top_groups: Vec::new(),
                    skipped: Some(e.to_string()),
                },
            }
        })
    }

    /// Like [`sweep`](TimeSlider::sweep), but instead of re-streaming
    /// the query's ratings per window it scans each *month partition*
    /// once into a [`ProfileSummary`] and mines every window from the
    /// merged partition summaries ([`ProfileSummary::merge`]). All mined
    /// quantities are invariant under universe permutation, so the
    /// points are identical to [`sweep`](TimeSlider::sweep)'s — pinned
    /// by an equality test — while the per-rating work drops from
    /// `O(windows × |R_I|)` to one pass over `|R_I|`.
    ///
    /// Bypasses the engine's cache tiers (each window is mined directly
    /// from the merged summaries against the pinned dataset).
    pub fn sweep_merged(
        &self,
        engine: &MapRatEngine,
        query: &ItemQuery,
        settings: &SearchSettings,
    ) -> Vec<TimelinePoint> {
        self.sweep_merged_with_threads(engine, query, settings, parallel::num_threads())
    }

    /// [`sweep_merged`](TimeSlider::sweep_merged) with an explicit
    /// worker-thread cap. Points are identical for every `threads`
    /// value.
    pub fn sweep_merged_with_threads(
        &self,
        engine: &MapRatEngine,
        query: &ItemQuery,
        settings: &SearchSettings,
        threads: usize,
    ) -> Vec<TimelinePoint> {
        let dataset = engine.dataset();
        let positions = self.positions();
        let skipped_all = |reason: String| -> Vec<TimelinePoint> {
            positions
                .iter()
                .map(|&p| {
                    let (from, to) = self.window_at(p);
                    TimelinePoint {
                        from,
                        to,
                        num_ratings: 0,
                        overall_mean: None,
                        top_groups: Vec::new(),
                        skipped: Some(reason.clone()),
                    }
                })
                .collect()
        };
        if let Err(e) = settings.validate() {
            return skipped_all(e.to_string());
        }
        // Windowing never changes which items match, so resolve once.
        let items = query.items(&dataset);
        if items.is_empty() {
            return skipped_all(MineError::NoMatchingItems(query.describe()).to_string());
        }
        // One scan per month partition — the only per-rating work of the
        // whole sweep. Every window below mines from merged summaries.
        let mut by_month: BTreeMap<MonthKey, Vec<u32>> = BTreeMap::new();
        for &item in &items {
            for (month, range) in dataset.month_slices_for_item(item) {
                by_month.entry(month).or_default().extend(range);
            }
        }
        let summaries: BTreeMap<MonthKey, ProfileSummary> = by_month
            .into_iter()
            .map(|(month, idx)| (month, ProfileSummary::scan(&dataset, idx)))
            .collect();
        let options = CubeOptions {
            min_support: settings.min_support,
            require_geo: settings.require_geo,
            max_arity: settings.max_arity,
        };
        let miner = Miner::new(&dataset);
        parallel::parallel_map(positions.len(), threads, |i| {
            let (from, to) = self.window_at(positions[i]);
            let skip = |reason: String| TimelinePoint {
                from,
                to,
                num_ratings: 0,
                overall_mean: None,
                top_groups: Vec::new(),
                skipped: Some(reason),
            };
            let merged =
                ProfileSummary::merge(from.iter_through(to).filter_map(|m| summaries.get(&m)));
            if merged.universe() == 0 {
                return skip("too few ratings in window".into());
            }
            let cube = merged.build(options.clone());
            if cube.is_empty() {
                return skip("too few ratings in window".into());
            }
            let windowed = query.clone().within(TimeRange::months(from..=to));
            match miner.explain_cube(&windowed, items.clone(), &cube, settings) {
                Ok(explanation) => TimelinePoint {
                    from,
                    to,
                    num_ratings: explanation.num_ratings,
                    overall_mean: explanation.total.mean(),
                    top_groups: explanation
                        .similarity
                        .groups
                        .iter()
                        .map(|g| (g.label.clone(), g.stats.mean().unwrap_or(0.0), g.support))
                        .collect(),
                    skipped: None,
                },
                Err(MineError::NoRatings) | Err(MineError::NoCandidates) => {
                    skip("too few ratings in window".into())
                }
                Err(e) => skip(e.to_string()),
            }
        })
    }
}

/// Renders a sweep as a compact text table (CLI examples / experiments).
pub fn render_sweep(points: &[TimelinePoint]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>8} {:>6}  top similarity groups",
        "window", "ratings", "mean"
    );
    for p in points {
        let groups = if let Some(reason) = &p.skipped {
            format!("— ({reason})")
        } else {
            p.top_groups
                .iter()
                .map(|(label, mean, _)| format!("{label} ({mean:.2})"))
                .collect::<Vec<_>>()
                .join("; ")
        };
        let _ = writeln!(
            out,
            "{:<18} {:>8} {:>6}  {}",
            format!("{}..{}", p.from, p.to),
            p.num_ratings,
            p.overall_mean
                .map(|m| format!("{m:.2}"))
                .unwrap_or_else(|| "—".into()),
            groups
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use maprat_data::synth::{generate, SynthConfig};

    fn settings() -> SearchSettings {
        SearchSettings::default()
            .with_min_coverage(0.1)
            .with_require_geo(false)
    }

    #[test]
    fn slider_covers_dataset_span() {
        let d = generate(&SynthConfig::tiny(131)).unwrap();
        let slider = TimeSlider::over_dataset(&d, 6, 6).unwrap();
        let positions = slider.positions();
        assert!(!positions.is_empty());
        let (lo, hi) = d.time_span().unwrap();
        assert_eq!(positions[0], lo.month_key());
        assert!(*positions.last().unwrap() <= hi.month_key());
    }

    #[test]
    fn windows_have_requested_length() {
        let d = generate(&SynthConfig::tiny(132)).unwrap();
        let slider = TimeSlider::over_dataset(&d, 6, 3).unwrap();
        let (from, to) = slider.window_at(MonthKey::new(2001, 2));
        assert_eq!(from.months_until(to), 5);
    }

    #[test]
    fn sweep_produces_point_per_position() {
        let engine = MapRatEngine::from_dataset(generate(&SynthConfig::small(133)).unwrap());
        let slider = TimeSlider::over_dataset(&engine.dataset(), 9, 9).unwrap();
        let points = slider.sweep(
            &engine,
            &maprat_core::query::ItemQuery::title("Toy Story"),
            &settings(),
        );
        assert_eq!(points.len(), slider.positions().len());
        // Planted Toy Story spans the full history: most windows non-empty.
        let non_empty = points.iter().filter(|p| p.num_ratings > 0).count();
        assert!(
            non_empty * 2 >= points.len(),
            "{non_empty}/{}",
            points.len()
        );
        for p in &points {
            if p.num_ratings > 0 && p.skipped.is_none() {
                assert!(!p.top_groups.is_empty());
            }
        }
    }

    #[test]
    fn sweep_windows_differ_in_volume() {
        let engine = MapRatEngine::from_dataset(generate(&SynthConfig::small(134)).unwrap());
        let slider = TimeSlider::over_dataset(&engine.dataset(), 6, 6).unwrap();
        let points = slider.sweep(
            &engine,
            &maprat_core::query::ItemQuery::title("Toy Story"),
            &settings(),
        );
        let volumes: Vec<usize> = points.iter().map(|p| p.num_ratings).collect();
        let total: usize = volumes.iter().sum();
        let full = engine.explain_query(
            &maprat_core::query::ItemQuery::title("Toy Story"),
            &settings(),
        );
        if let Ok(r) = &*full {
            // Non-overlapping windows partition the history.
            assert_eq!(total, r.explanation.num_ratings);
        }
    }

    #[test]
    fn parallel_sweep_is_deterministic_in_thread_count() {
        let engine = MapRatEngine::from_dataset(generate(&SynthConfig::tiny(136)).unwrap());
        let slider = TimeSlider::over_dataset(&engine.dataset(), 6, 6).unwrap();
        let query = maprat_core::query::ItemQuery::title("Toy Story");
        let single = slider.sweep_with_threads(&engine, &query, &settings(), 1);
        for threads in [2, 3, 8] {
            // A fresh engine per run: identical results must not rely on
            // the earlier sweep's warm cache.
            let cold = MapRatEngine::from_dataset(generate(&SynthConfig::tiny(136)).unwrap());
            let multi = slider.sweep_with_threads(&cold, &query, &settings(), threads);
            assert_eq!(single, multi, "sweep diverged at {threads} threads");
        }
    }

    #[test]
    fn merged_sweep_equals_direct_sweep() {
        // The partition-merge path must reproduce the per-window
        // re-mining path point for point: same volumes, same means, same
        // mined groups in the same order.
        let engine = MapRatEngine::from_dataset(generate(&SynthConfig::small(137)).unwrap());
        let query = maprat_core::query::ItemQuery::title("Toy Story");
        for (window, step) in [(6, 6), (9, 3)] {
            let slider = TimeSlider::over_dataset(&engine.dataset(), window, step).unwrap();
            let direct = slider.sweep(&engine, &query, &settings());
            let merged = slider.sweep_merged(&engine, &query, &settings());
            assert_eq!(direct, merged, "window={window} step={step}");
        }
    }

    #[test]
    fn merged_sweep_is_deterministic_in_thread_count() {
        let engine = MapRatEngine::from_dataset(generate(&SynthConfig::tiny(138)).unwrap());
        let slider = TimeSlider::over_dataset(&engine.dataset(), 6, 6).unwrap();
        let query = maprat_core::query::ItemQuery::title("Toy Story");
        let single = slider.sweep_merged_with_threads(&engine, &query, &settings(), 1);
        for threads in [2, 8] {
            let multi = slider.sweep_merged_with_threads(&engine, &query, &settings(), threads);
            assert_eq!(single, multi, "merged sweep diverged at {threads} threads");
        }
    }

    #[test]
    fn merged_sweep_skips_unknown_title() {
        let engine = MapRatEngine::from_dataset(generate(&SynthConfig::tiny(139)).unwrap());
        let slider = TimeSlider::over_dataset(&engine.dataset(), 6, 6).unwrap();
        let points = slider.sweep_merged(
            &engine,
            &maprat_core::query::ItemQuery::title("No Such Movie"),
            &settings(),
        );
        assert_eq!(points.len(), slider.positions().len());
        assert!(points.iter().all(|p| p.skipped.is_some()));
    }

    #[test]
    fn render_sweep_is_tabular() {
        let engine = MapRatEngine::from_dataset(generate(&SynthConfig::tiny(135)).unwrap());
        let slider = TimeSlider::over_dataset(&engine.dataset(), 12, 12).unwrap();
        let points = slider.sweep(
            &engine,
            &maprat_core::query::ItemQuery::title("Toy Story"),
            &settings(),
        );
        let text = render_sweep(&points);
        assert!(text.contains("window"));
        assert!(text.lines().count() >= points.len());
    }
}
