//! The crash-safety half of ingestion: a per-partition append-only
//! write-ahead log.
//!
//! [`IngestService::commit`](crate::IngestService::commit) serializes
//! each validated batch — the raw [`RatingEvent`]s plus the post-commit
//! table sizes the [`maprat_data::IdAllocator`] will produce — into a
//! CRC-framed record and fsyncs it **before** the dataset splice and
//! snapshot publish. Because `resolve` is deterministic (ids are
//! allocated sequentially, titles are looked up against the snapshot the
//! sequence numbers order), replaying the log over the same base dataset
//! reproduces the exact same snapshots, so a `kill -9` at any point
//! yields a dataset that explains byte-identically to an uncrashed run.
//! The recorded table sizes double as a replay consistency check: if a
//! replayed commit allocates differently than the original did, recovery
//! refuses loudly instead of serving silently diverged data.
//!
//! # Layout
//!
//! One segment file per *month partition* (`wal-<year>-<month>.seg`, the
//! partition axis of the dataset itself), so compaction can drop whole
//! cold partitions. Each segment starts with an 8-byte magic + format
//! version, followed by length-prefixed records:
//!
//! ```text
//! [ payload_len: u32 | crc32(payload): u32 | payload ]
//! payload = seq u64 | year i32 | month u32
//!         | expect_users u32 | expect_items u32 | expect_ratings u32
//!         | n_events u32 | event…
//! ```
//!
//! All integers little-endian. A crash can tear at most the *last* frame
//! written (commits are serialized by the writer lock); [`Wal::open`]
//! repairs by scanning every segment and truncating after the last valid
//! frame, counting what it dropped. Fsync order is: segment data, then —
//! for freshly created segments — the directory entry.
//!
//! # Compaction
//!
//! The `CHECKPOINT` file records the *durability watermark*: the highest
//! commit sequence already baked into a persisted base snapshot (see
//! [`IngestService::checkpoint_into`](crate::IngestService::checkpoint_into)).
//! [`Wal::compact`] advances it atomically (tmp + rename + dir fsync)
//! and deletes segments whose records all sit at or below it; replay
//! skips any record the watermark already covers.

use crate::buffer::{ItemSpec, NewItem, NewUser, RatingEvent, UserSpec};
use maprat_data::{
    AgeGroup, Gender, Genre, GenreSet, ItemId, MonthKey, Occupation, Score, Timestamp, UserId, Zip,
};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const SEGMENT_MAGIC: &[u8; 8] = b"MRWALSEG";
const SEGMENT_VERSION: u32 = 1;
const HEADER_LEN: u64 = 12;
/// Upper bound on one record's payload (a safety valve against reading
/// a garbage length field as a multi-gigabyte allocation).
const MAX_PAYLOAD: u32 = 64 << 20;

/// One durable commit: everything needed to re-run the commit
/// deterministically, plus the table sizes it must reproduce.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// The commit sequence number (first commit = 1).
    pub seq: u64,
    /// The commit's month partition (month of its newest rating).
    pub month: MonthKey,
    /// `(users, items, ratings)` table lengths *after* this commit — the
    /// id-allocation consistency check replay verifies.
    pub expect: (u32, u32, u32),
    /// The raw, pre-resolution events of the commit.
    pub events: Vec<RatingEvent>,
}

/// What [`Wal::replay`] found.
#[derive(Debug, Clone, Default)]
pub struct WalReplay {
    /// Unapplied records, sorted by sequence number.
    pub records: Vec<WalRecord>,
    /// Torn/corrupt tail frames dropped during segment repair.
    pub truncated: u64,
    /// The durability watermark (records at or below it were skipped).
    pub checkpoint: u64,
}

/// Durability counters for `/api/v1/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Live segment files.
    pub segments: usize,
    /// Torn frames dropped by segment repair at open.
    pub truncated: u64,
    /// Highest sequence number appended or replayed.
    pub last_seq: u64,
    /// The compaction watermark.
    pub checkpoint: u64,
}

struct Segment {
    path: PathBuf,
    max_seq: u64,
}

/// The per-partition write-ahead log (see the [module docs](self)).
pub struct Wal {
    dir: PathBuf,
    checkpoint: u64,
    truncated: u64,
    last_seq: u64,
    segments: BTreeMap<i32, Segment>,
    /// Cached handle for the partition currently being appended to.
    open: Option<(i32, File)>,
    /// Set when a failed append could not be rolled back; every further
    /// append is refused (fail closed) until the process restarts.
    broken: bool,
}

impl Wal {
    /// Opens (creating if needed) the log in `dir`, repairing torn
    /// segment tails in place.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Wal> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let checkpoint = read_checkpoint(&dir)?;
        let mut wal = Wal {
            dir: dir.clone(),
            checkpoint,
            truncated: 0,
            last_seq: checkpoint,
            segments: BTreeMap::new(),
            open: None,
            broken: false,
        };
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let Some(raw) = parse_segment_name(&path) else {
                continue;
            };
            let (records, valid_len, dropped) = scan_segment(&path)?;
            let file_len = std::fs::metadata(&path)?.len();
            if valid_len < file_len {
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(valid_len)?;
                f.sync_data()?;
            }
            wal.truncated += dropped;
            let max_seq = records.iter().map(|r| r.seq).max().unwrap_or(0);
            wal.last_seq = wal.last_seq.max(max_seq);
            wal.segments.insert(raw, Segment { path, max_seq });
        }
        Ok(wal)
    }

    /// Reads every unapplied record (sequence above the checkpoint),
    /// sorted by sequence number. Duplicate sequence numbers are refused:
    /// recovery must never have to guess which of two histories to serve.
    pub fn replay(&self) -> io::Result<WalReplay> {
        let mut records = Vec::new();
        for seg in self.segments.values() {
            let (recs, _, _) = scan_segment(&seg.path)?;
            records.extend(recs.into_iter().filter(|r| r.seq > self.checkpoint));
        }
        records.sort_by_key(|r| r.seq);
        for pair in records.windows(2) {
            if pair[0].seq == pair[1].seq {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("duplicate commit seq {} in WAL", pair[0].seq),
                ));
            }
        }
        Ok(WalReplay {
            records,
            truncated: self.truncated,
            checkpoint: self.checkpoint,
        })
    }

    /// Appends one record and fsyncs it. On any failure the partial
    /// frame is rolled back (or, if rollback itself fails, the log is
    /// marked broken and refuses further appends) — a frame is either
    /// fully durable or not on disk at all.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        if self.broken {
            return Err(io::Error::other(
                "WAL broken by an earlier failed append; restart to repair",
            ));
        }
        // Injected fsync failure: fail before touching the file, the
        // fail-closed path a real EIO on fsync must also take.
        maprat_faults::maybe_io_error("wal.fsync")?;

        let raw = record.month.raw();
        let frame = encode_frame(record);
        let mut new_segment = false;
        if self.open.as_ref().map(|(m, _)| *m) != Some(raw) {
            self.open = None; // drop the previous partition's handle
            let path = self.segment_path(record.month);
            let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
            if file.metadata()?.len() < HEADER_LEN {
                // Fresh segment — or one whose own header write was torn
                // by a crash. The header is written unsynced: the first
                // frame's sync_data below makes header and frame durable
                // in one flush, and the directory fsync after it makes
                // the file name durable, all before the commit is
                // acknowledged.
                file.set_len(0)?;
                file.write_all(SEGMENT_MAGIC)?;
                file.write_all(&SEGMENT_VERSION.to_le_bytes())?;
                new_segment = true;
            }
            self.segments
                .entry(raw)
                .or_insert(Segment { path, max_seq: 0 });
            self.open = Some((raw, file));
        }
        let (_, file) = self.open.as_mut().expect("handle just installed");
        let len_before = file.metadata()?.len();

        let wrote = write_frame(file, &frame);
        if let Err(e) = wrote {
            self.rollback(len_before);
            return Err(e);
        }
        if let Err(e) = file.sync_data() {
            self.rollback(len_before);
            return Err(e);
        }
        if new_segment {
            // Rolling back on a dir-fsync failure leaves a valid,
            // empty-bodied segment; the frame is re-appended on retry.
            if let Err(e) = sync_dir(&self.dir) {
                self.rollback(len_before);
                return Err(e);
            }
        }
        self.last_seq = self.last_seq.max(record.seq);
        if let Some(seg) = self.segments.get_mut(&raw) {
            seg.max_seq = seg.max_seq.max(record.seq);
        }
        Ok(())
    }

    /// Advances the durability watermark to `up_to` (atomically: tmp +
    /// rename + directory fsync) and deletes segments whose records all
    /// sit at or below it. Returns the number of segments removed.
    ///
    /// Only call after the base snapshot recovery starts from provably
    /// contains every commit up to `up_to` (see
    /// [`IngestService::checkpoint_into`](crate::IngestService::checkpoint_into)).
    pub fn compact(&mut self, up_to: u64) -> io::Result<usize> {
        if up_to > self.checkpoint {
            write_checkpoint(&self.dir, up_to)?;
            self.checkpoint = up_to;
        }
        let doomed: Vec<i32> = self
            .segments
            .iter()
            .filter(|(_, s)| s.max_seq <= self.checkpoint)
            .map(|(&raw, _)| raw)
            .collect();
        for raw in &doomed {
            if self.open.as_ref().map(|(m, _)| m == raw).unwrap_or(false) {
                self.open = None;
            }
            let seg = self.segments.remove(raw).expect("listed above");
            std::fs::remove_file(&seg.path)?;
        }
        if !doomed.is_empty() {
            sync_dir(&self.dir)?;
        }
        Ok(doomed.len())
    }

    /// Current durability counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            segments: self.segments.len(),
            truncated: self.truncated,
            last_seq: self.last_seq,
            checkpoint: self.checkpoint,
        }
    }

    fn segment_path(&self, month: MonthKey) -> PathBuf {
        self.dir
            .join(format!("wal-{:04}-{:02}.seg", month.year(), month.month()))
    }

    fn rollback(&mut self, len_before: u64) {
        let ok = self
            .open
            .as_mut()
            .map(|(_, f)| f.set_len(len_before).and_then(|_| f.sync_data()).is_ok())
            .unwrap_or(false);
        if !ok {
            self.broken = true;
        }
    }
}

/// Writes the torn-write fault site into an otherwise plain frame write:
/// when `wal.torn` fires, only a prefix of the frame reaches the file and
/// the process aborts — exactly the disk state a power cut mid-write
/// leaves behind, which `Wal::open` must then repair.
fn write_frame(file: &mut File, frame: &[u8]) -> io::Result<()> {
    if maprat_faults::fires("wal.torn") {
        let half = frame.len() / 2;
        let _ = file.write_all(&frame[..half]);
        let _ = file.sync_data();
        eprintln!("injected torn write: wal.torn");
        std::process::abort();
    }
    file.write_all(frame)
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join("CHECKPOINT")
}

fn read_checkpoint(dir: &Path) -> io::Result<u64> {
    match std::fs::read_to_string(checkpoint_path(dir)) {
        Ok(text) => text
            .trim()
            .parse::<u64>()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "corrupt CHECKPOINT file")),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
        Err(e) => Err(e),
    }
}

fn write_checkpoint(dir: &Path, seq: u64) -> io::Result<()> {
    let tmp = dir.join("CHECKPOINT.tmp");
    let mut f = File::create(&tmp)?;
    writeln!(f, "{seq}")?;
    f.sync_data()?;
    std::fs::rename(&tmp, checkpoint_path(dir))?;
    sync_dir(dir)
}

fn parse_segment_name(path: &Path) -> Option<i32> {
    let name = path.file_name()?.to_str()?;
    let rest = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    let (year, month) = rest.split_once('-')?;
    Some(MonthKey::new(year.parse().ok()?, month.parse().ok()?).raw())
}

/// Parses a segment, stopping at the first torn/corrupt frame. Returns
/// the valid records, the byte length of the valid prefix, and how many
/// broken tail frames were detected (0 or 1 — parsing stops at the
/// first).
fn scan_segment(path: &Path) -> io::Result<(Vec<WalRecord>, u64, u64)> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < HEADER_LEN as usize
        || &bytes[..8] != SEGMENT_MAGIC
        || bytes[8..12] != SEGMENT_VERSION.to_le_bytes()
    {
        // A header torn mid-write: the whole file is one broken frame.
        return Ok((Vec::new(), 0, 1));
    }
    let mut records = Vec::new();
    let mut offset = HEADER_LEN as usize;
    loop {
        if offset == bytes.len() {
            return Ok((records, offset as u64, 0));
        }
        let Some(frame) = read_frame(&bytes[offset..]) else {
            return Ok((records, offset as u64, 1));
        };
        let (payload, consumed) = frame;
        match decode_record(payload) {
            Some(record) => records.push(record),
            None => return Ok((records, offset as u64, 1)),
        }
        offset += consumed;
    }
}

/// Validates one `[len | crc | payload]` frame at the start of `bytes`.
fn read_frame(bytes: &[u8]) -> Option<(&[u8], usize)> {
    if bytes.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if len > MAX_PAYLOAD || bytes.len() < 8 + len as usize {
        return None;
    }
    let payload = &bytes[8..8 + len as usize];
    if crc32(payload) != crc {
        return None;
    }
    Some((payload, 8 + len as usize))
}

fn encode_frame(record: &WalRecord) -> Vec<u8> {
    let payload = encode_record(record);
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

// --- record codec -------------------------------------------------------

fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + record.events.len() * 32);
    out.extend_from_slice(&record.seq.to_le_bytes());
    out.extend_from_slice(&record.month.year().to_le_bytes());
    out.extend_from_slice(&record.month.month().to_le_bytes());
    let (u, i, r) = record.expect;
    out.extend_from_slice(&u.to_le_bytes());
    out.extend_from_slice(&i.to_le_bytes());
    out.extend_from_slice(&r.to_le_bytes());
    out.extend_from_slice(&(record.events.len() as u32).to_le_bytes());
    for event in &record.events {
        encode_event(&mut out, event);
    }
    out
}

fn encode_event(out: &mut Vec<u8>, event: &RatingEvent) {
    match &event.user {
        UserSpec::Existing(id) => {
            out.push(0);
            out.extend_from_slice(&id.0.to_le_bytes());
        }
        UserSpec::New(u) => {
            out.push(1);
            out.extend_from_slice(&u.age.movielens_code().to_le_bytes());
            out.push(u.gender.letter().as_bytes()[0]);
            out.extend_from_slice(&u.occupation.movielens_code().to_le_bytes());
            out.extend_from_slice(&u.zip.value().to_le_bytes());
        }
    }
    match &event.item {
        ItemSpec::Existing(id) => {
            out.push(0);
            out.extend_from_slice(&id.0.to_le_bytes());
        }
        ItemSpec::ByTitle(title) => {
            out.push(1);
            encode_str(out, title);
        }
        ItemSpec::New(item) => {
            out.push(2);
            encode_str(out, &item.title);
            out.extend_from_slice(&item.year.to_le_bytes());
            out.extend_from_slice(&genre_bits(item.genres).to_le_bytes());
        }
    }
    out.push(event.score.get());
    out.extend_from_slice(&event.ts.secs().to_le_bytes());
}

fn encode_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn genre_bits(set: GenreSet) -> u32 {
    let mut bits = 0u32;
    for g in set.iter() {
        let idx = Genre::ALL
            .iter()
            .position(|&x| x == g)
            .expect("every genre is in ALL");
        bits |= 1 << idx;
    }
    bits
}

/// A tiny cursor for decoding; any short read or invalid value returns
/// `None`, which the segment scanner treats as a torn frame.
struct Dec<'a> {
    bytes: &'a [u8],
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.bytes.len() < n {
            return None;
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Some(head)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn i32(&mut self) -> Option<i32> {
        Some(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

fn decode_record(payload: &[u8]) -> Option<WalRecord> {
    let mut d = Dec { bytes: payload };
    let seq = d.u64()?;
    let month = MonthKey::new(d.i32()?, d.u32()?);
    let expect = (d.u32()?, d.u32()?, d.u32()?);
    let n = d.u32()? as usize;
    let mut events = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        events.push(decode_event(&mut d)?);
    }
    if !d.bytes.is_empty() {
        return None; // trailing garbage inside a "valid" CRC frame
    }
    Some(WalRecord {
        seq,
        month,
        expect,
        events,
    })
}

fn decode_event(d: &mut Dec<'_>) -> Option<RatingEvent> {
    let user = match d.u8()? {
        0 => UserSpec::Existing(UserId(d.u32()?)),
        1 => {
            let age = AgeGroup::from_movielens_code(d.u32()?).ok()?;
            let gender = match d.u8()? {
                b'M' => Gender::Male,
                b'F' => Gender::Female,
                _ => return None,
            };
            let occupation = Occupation::from_movielens_code(d.u32()?).ok()?;
            let zip = Zip::new(d.u32()?);
            UserSpec::New(NewUser {
                age,
                gender,
                occupation,
                zip,
            })
        }
        _ => return None,
    };
    let item = match d.u8()? {
        0 => ItemSpec::Existing(ItemId(d.u32()?)),
        1 => ItemSpec::ByTitle(d.str()?),
        2 => {
            let title = d.str()?;
            let year = d.u16()?;
            let bits = d.u32()?;
            let genres = GenreSet::of(
                (0..Genre::ALL.len())
                    .filter(|i| bits & (1 << i) != 0)
                    .filter_map(Genre::from_index),
            );
            ItemSpec::New(NewItem {
                title,
                year,
                genres,
            })
        }
        _ => return None,
    };
    let score = Score::new(d.u8()?).ok()?;
    let ts = Timestamp(d.i64()?);
    Some(RatingEvent {
        user,
        item,
        score,
        ts,
    })
}

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven; the build
/// environment is offline so the table is generated at compile time
/// rather than pulled from a crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("maprat-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_record(seq: u64) -> WalRecord {
        WalRecord {
            seq,
            month: MonthKey::new(2003, 1 + (seq % 12) as u32),
            expect: (100 + seq as u32, 50, 1000 + seq as u32 * 3),
            events: vec![
                RatingEvent {
                    user: UserSpec::New(NewUser {
                        age: AgeGroup::From25To34,
                        gender: Gender::Female,
                        occupation: Occupation::Artist,
                        zip: Zip::new(94103),
                    }),
                    item: ItemSpec::ByTitle("Toy Story".into()),
                    score: Score::new(5).unwrap(),
                    ts: Timestamp::from_ymd(2003, 1, 14),
                },
                RatingEvent {
                    user: UserSpec::Existing(UserId(7)),
                    item: ItemSpec::New(NewItem {
                        title: format!("Sequel {seq}"),
                        year: 2003,
                        genres: [Genre::Thriller, Genre::SciFi].into_iter().collect(),
                    }),
                    score: Score::new(3).unwrap(),
                    ts: Timestamp::from_ymd(2003, 2, 1),
                },
                RatingEvent {
                    user: UserSpec::Existing(UserId(9)),
                    item: ItemSpec::Existing(ItemId(2)),
                    score: Score::new(1).unwrap(),
                    ts: Timestamp::from_ymd(2003, 2, 2),
                },
            ],
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vectors (zlib's crc32).
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn record_codec_round_trips() {
        let record = sample_record(42);
        let decoded = decode_record(&encode_record(&record)).unwrap();
        assert_eq!(decoded, record);
    }

    #[test]
    fn append_then_replay_round_trips_across_partitions() {
        let dir = tmp_dir("roundtrip");
        let mut wal = Wal::open(&dir).unwrap();
        let records: Vec<WalRecord> = (1..=5).map(sample_record).collect();
        for r in &records {
            wal.append(r).unwrap();
        }
        assert!(wal.stats().segments >= 2, "months map to separate segments");
        assert_eq!(wal.stats().last_seq, 5);
        drop(wal);

        let wal = Wal::open(&dir).unwrap();
        let replay = wal.replay().unwrap();
        assert_eq!(replay.records, records, "seq-sorted across partitions");
        assert_eq!(replay.truncated, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_repaired_and_earlier_records_survive() {
        let dir = tmp_dir("torn");
        let mut wal = Wal::open(&dir).unwrap();
        let keep = sample_record(1);
        let gone = WalRecord {
            seq: 2,
            ..sample_record(1)
        };
        wal.append(&keep).unwrap();
        wal.append(&gone).unwrap();
        drop(wal);

        // Tear the tail: chop bytes off the (single-month) segment so the
        // second frame is incomplete.
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "seg"))
            .unwrap();
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 7).unwrap();
        drop(f);

        let wal = Wal::open(&dir).unwrap();
        let replay = wal.replay().unwrap();
        assert_eq!(replay.records, vec![keep.clone()]);
        assert_eq!(replay.truncated, 1);

        // The repair truncated the file: appending works again and the
        // segment parses clean end to end.
        let mut wal = wal;
        let next = WalRecord {
            seq: 2,
            ..keep.clone()
        };
        wal.append(&next).unwrap();
        let replay = Wal::open(&dir).unwrap().replay().unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.truncated, 0, "repaired segment is clean");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_payload_bytes_fail_the_crc() {
        let dir = tmp_dir("flip");
        let mut wal = Wal::open(&dir).unwrap();
        wal.append(&sample_record(1)).unwrap();
        drop(wal);
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "seg"))
            .unwrap();
        let mut bytes = std::fs::read(&seg).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0xFF;
        std::fs::write(&seg, &bytes).unwrap();

        let replay = Wal::open(&dir).unwrap().replay().unwrap();
        assert!(replay.records.is_empty(), "bit flip must not decode");
        assert_eq!(replay.truncated, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_drops_covered_partitions_and_survives_reopen() {
        let dir = tmp_dir("compact");
        let mut wal = Wal::open(&dir).unwrap();
        // Seqs 1..=3 in month A, 4..=5 in month B.
        for seq in 1..=5u64 {
            let mut r = sample_record(seq);
            r.month = if seq <= 3 {
                MonthKey::new(2003, 1)
            } else {
                MonthKey::new(2003, 2)
            };
            wal.append(&r).unwrap();
        }
        assert_eq!(wal.stats().segments, 2);
        let removed = wal.compact(3).unwrap();
        assert_eq!(removed, 1, "month A is fully covered");
        assert_eq!(wal.stats().segments, 1);
        assert_eq!(wal.stats().checkpoint, 3);

        let wal = Wal::open(&dir).unwrap();
        assert_eq!(wal.stats().checkpoint, 3, "watermark is durable");
        let replay = wal.replay().unwrap();
        let seqs: Vec<u64> = replay.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![4, 5]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_skips_records_at_or_below_the_checkpoint() {
        let dir = tmp_dir("skip");
        let mut wal = Wal::open(&dir).unwrap();
        // All five seqs share one month: compaction cannot drop the
        // segment (max_seq > watermark), replay must filter instead.
        for seq in 1..=5u64 {
            let mut r = sample_record(seq);
            r.month = MonthKey::new(2003, 1);
            wal.append(&r).unwrap();
        }
        assert_eq!(wal.compact(2).unwrap(), 0);
        let replay = wal.replay().unwrap();
        let seqs: Vec<u64> = replay.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
