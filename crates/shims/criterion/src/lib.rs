//! Offline stand-in for the subset of the `criterion` API that MapRat's
//! benches use: [`Criterion`], benchmark groups, [`BenchmarkId`],
//! [`Throughput`], [`criterion_group!`] and [`criterion_main!`].
//!
//! Instead of upstream's statistical engine it runs a warm-up, then a
//! fixed measurement pass, and prints the mean/min wall-clock time per
//! iteration — enough to give the workspace a latency trajectory without
//! a crates.io dependency. Differences:
//!
//! * no HTML reports and no `target/criterion` state;
//! * `--quick` (or `CRITERION_QUICK=1`) shortens measurement for CI
//!   smoke jobs;
//! * a benchmark-name filter argument is honored as a substring match,
//!   so `cargo bench -p maprat-bench -- explain` works as expected.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { name }
    }
}

/// Throughput annotation (accepted, echoed in the report line).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The measurement handle passed to benchmark closures.
pub struct Bencher {
    /// Collected per-iteration means of the measurement batches.
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Times `routine`, recording `sample_count` batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up batch (not recorded).
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(routine());
        }
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / self.iters_per_sample as u32);
        }
    }
}

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("CRITERION_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false)
}

/// The name filter: the first free (non-flag) CLI argument, if any.
fn name_filter() -> Option<String> {
    std::env::args().skip(1).find(|a| !a.starts_with('-'))
}

/// The top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            filter: name_filter(),
            quick: quick_mode(),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark (an implicit single-entry group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many measurement batches each benchmark records.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.name, |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.name, |b| f(b, input));
        self
    }

    fn run(&mut self, bench_name: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = if self.name.is_empty() {
            bench_name.to_string()
        } else {
            format!("{}/{}", self.name, bench_name)
        };
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let (samples, iters) = if self.criterion.quick {
            (2usize, 1u64)
        } else {
            (self.sample_size, 3u64)
        };
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: iters,
            sample_count: samples,
        };
        f(&mut bencher);
        report(&full, &bencher.samples, self.throughput);
    }

    /// Ends the group (upstream flushes reports here; ours are printed
    /// per-benchmark, so this is shape-compatible and otherwise inert).
    pub fn finish(self) {}
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<40} (no samples — closure never called iter?)");
        return;
    }
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let mut line = String::new();
    let _ = write!(
        line,
        "{name:<44} mean {:>12} min {:>12} ({} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        samples.len()
    );
    if let Some(t) = throughput {
        let per_sec = |count: u64| {
            let secs = mean.as_secs_f64();
            if secs > 0.0 {
                count as f64 / secs
            } else {
                f64::INFINITY
            }
        };
        match t {
            Throughput::Elements(n) => {
                let _ = write!(line, "  {:.3e} elem/s", per_sec(n));
            }
            Throughput::Bytes(n) => {
                let _ = write!(line, "  {:.3e} B/s", per_sec(n));
            }
        }
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 10_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares the benchmark entry function, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("bitmap", 0.1).name, "bitmap/0.1");
        assert_eq!(BenchmarkId::from("plain").name, "plain");
    }

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 2,
            sample_count: 3,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(b.samples.len(), 3);
        // warm-up (2) + 3 samples × 2 iters
        assert_eq!(count, 8);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(150)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(150)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(15)).ends_with(" s"));
    }
}
