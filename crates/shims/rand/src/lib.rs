//! Offline stand-in for the subset of the `rand` 0.8 API that MapRat uses.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a small, deterministic implementation with the same module
//! layout and signatures as the real crate: [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`], [`rngs::mock::StepRng`], [`seq::SliceRandom`] and
//! [`distributions::WeightedIndex`]. Swapping back to the upstream crate
//! is a one-line change in the workspace manifest.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — not the upstream ChaCha12, so *streams differ from real
//! `rand`*, but every consumer in this workspace only relies on
//! determinism for a fixed seed, which this provides.

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A random value of a primitive type (uniform over the type's domain,
    /// or `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in the given (half-open or inclusive) range.
    ///
    /// Panics when the range is empty, matching upstream. The output type
    /// parameter comes first so inference can flow from the use site into
    /// the range literal, exactly like upstream's signature.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`, matching upstream.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]: {p}");
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable generators (only the entry points MapRat uses).
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        let mut sm = state;
        for chunk in bytes.chunks_mut(8) {
            let v = splitmix64(&mut sm).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Converts 64 random bits to a uniform `f64` in `[0, 1)`.
pub(crate) fn u64_to_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u64_to_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u64_to_f64(rng.next_u64()) as f32
    }
}

/// Ranges that [`Rng::gen_range`] accepts, producing values of `T`.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = u64_to_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Rejection-sampled uniform value in `[0, span)`; `span` must be positive
/// and fit the caller's integer width.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // Lemire-style rejection on 64 bits covers every span this workspace
    // asks for (all far below 2^64).
    let span64 = span as u64;
    let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
