//! The columnar dataset store `D = ⟨I, U, R⟩` with access-path indexes.
//!
//! Ratings are stored in one contiguous column sorted by `(item, timestamp)`
//! so that the ratings of an item — the input `R_I` of every mining task —
//! are a contiguous slice reachable through a CSR offset table. A second CSR
//! index maps users to their rating positions, and hash indexes resolve
//! title and person lookups for the query language.

use crate::append::{AppendBatch, AppendResult, IndexRemap};
use crate::error::DataError;
use crate::ids::{ItemId, PersonId, RatingIdx, UserId};
use crate::item::{Item, Person, Role};
use crate::packed::PackedUserCode;
use crate::rating::Rating;
use crate::stats::RatingStats;
use crate::time::{TimeRange, Timestamp};
use crate::user::User;
use std::collections::HashMap;

/// Builds the item CSR offsets and the user CSR (offsets + grouped rating
/// indexes) over an already-sorted rating column.
fn build_csr(
    num_items: usize,
    num_users: usize,
    ratings: &[Rating],
) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let mut item_offsets = vec![0u32; num_items + 1];
    for r in ratings {
        item_offsets[r.item.index() + 1] += 1;
    }
    for i in 1..item_offsets.len() {
        item_offsets[i] += item_offsets[i - 1];
    }

    let mut user_offsets = vec![0u32; num_users + 1];
    for r in ratings {
        user_offsets[r.user.index() + 1] += 1;
    }
    for i in 1..user_offsets.len() {
        user_offsets[i] += user_offsets[i - 1];
    }
    let mut cursor = user_offsets.clone();
    let mut user_rating_idx = vec![0u32; ratings.len()];
    for (idx, r) in ratings.iter().enumerate() {
        let slot = cursor[r.user.index()];
        user_rating_idx[slot as usize] = idx as u32;
        cursor[r.user.index()] += 1;
    }
    (item_offsets, user_offsets, user_rating_idx)
}

/// Immutable, validated collaborative-rating dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    users: Vec<User>,
    items: Vec<Item>,
    persons: Vec<Person>,
    /// Ratings sorted by `(item, ts, user)`.
    ratings: Vec<Rating>,
    /// Per-rating packed reviewer codes, aligned with `ratings` — the
    /// dense column the cube builder scans instead of chasing
    /// `rating → user → attr_value` pointers.
    rating_user_codes: Vec<u16>,
    /// Per-rating score histogram buckets (`score - 1`), aligned with
    /// `ratings` — the parallel score column of the same hot loop.
    rating_score_bins: Vec<u8>,
    /// CSR offsets: ratings of item `i` live at `ratings[item_offsets[i]..item_offsets[i+1]]`.
    item_offsets: Vec<u32>,
    /// CSR offsets into `user_rating_idx`.
    user_offsets: Vec<u32>,
    /// Rating indexes grouped by user.
    user_rating_idx: Vec<u32>,
    /// Lowercased title → item.
    title_index: HashMap<String, ItemId>,
    /// Lowercased person name → person.
    person_index: HashMap<String, PersonId>,
    /// Person → items they act in.
    acts_in: HashMap<PersonId, Vec<ItemId>>,
    /// Person → items they direct.
    directs: HashMap<PersonId, Vec<ItemId>>,
}

impl Dataset {
    /// All users, indexed densely by [`UserId`].
    pub fn users(&self) -> &[User] {
        &self.users
    }

    /// All items, indexed densely by [`ItemId`].
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// All persons, indexed densely by [`PersonId`].
    pub fn persons(&self) -> &[Person] {
        &self.persons
    }

    /// The full rating column, sorted by `(item, timestamp)`.
    pub fn ratings(&self) -> &[Rating] {
        &self.ratings
    }

    /// Number of rating tuples.
    pub fn num_ratings(&self) -> usize {
        self.ratings.len()
    }

    /// Looks up a user by id.
    #[inline]
    pub fn user(&self, id: UserId) -> &User {
        &self.users[id.index()]
    }

    /// Looks up an item by id.
    #[inline]
    pub fn item(&self, id: ItemId) -> &Item {
        &self.items[id.index()]
    }

    /// Looks up a person by id.
    #[inline]
    pub fn person(&self, id: PersonId) -> &Person {
        &self.persons[id.index()]
    }

    /// The rating at a dense rating index.
    #[inline]
    pub fn rating(&self, idx: RatingIdx) -> &Rating {
        &self.ratings[idx.index()]
    }

    /// Per-rating packed reviewer codes (see
    /// [`PackedUserCode`]), aligned with
    /// [`ratings`](Self::ratings): position `i` packs the demographic
    /// profile of `ratings()[i]`'s reviewer. Precomputed at dataset build
    /// time so cube materialization reads one contiguous `u16` column.
    #[inline]
    pub fn rating_user_codes(&self) -> &[u16] {
        &self.rating_user_codes
    }

    /// Per-rating score histogram buckets (`score − 1`, so `0..5`),
    /// aligned with [`ratings`](Self::ratings) — the score column the
    /// cube builder's counting pass accumulates.
    #[inline]
    pub fn rating_score_bins(&self) -> &[u8] {
        &self.rating_score_bins
    }

    /// The contiguous ratings slice of an item (its `R_I` for a singleton
    /// query), ordered by timestamp.
    pub fn ratings_for_item(&self, item: ItemId) -> &[Rating] {
        let lo = self.item_offsets[item.index()] as usize;
        let hi = self.item_offsets[item.index() + 1] as usize;
        &self.ratings[lo..hi]
    }

    /// The dense index range of an item's ratings inside the rating column.
    pub fn rating_range_for_item(&self, item: ItemId) -> std::ops::Range<u32> {
        self.item_offsets[item.index()]..self.item_offsets[item.index() + 1]
    }

    /// The rating indexes entered by a user.
    pub fn rating_indexes_for_user(&self, user: UserId) -> &[u32] {
        let lo = self.user_offsets[user.index()] as usize;
        let hi = self.user_offsets[user.index() + 1] as usize;
        &self.user_rating_idx[lo..hi]
    }

    /// Resolves an exact title (case-insensitive).
    pub fn find_title(&self, title: &str) -> Option<ItemId> {
        self.title_index.get(&title.to_lowercase()).copied()
    }

    /// Items whose title contains `needle` (case-insensitive substring).
    pub fn search_titles(&self, needle: &str) -> Vec<ItemId> {
        let needle = needle.to_lowercase();
        self.items
            .iter()
            .filter(|it| it.title.to_lowercase().contains(&needle))
            .map(|it| it.id)
            .collect()
    }

    /// Resolves a person by exact name (case-insensitive).
    pub fn find_person(&self, name: &str) -> Option<PersonId> {
        self.person_index.get(&name.to_lowercase()).copied()
    }

    /// Items a person is attached to in a given role.
    pub fn items_with_person(&self, person: PersonId, role: Role) -> &[ItemId] {
        let map = match role {
            Role::Actor => &self.acts_in,
            Role::Director => &self.directs,
        };
        map.get(&person).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Aggregate statistics over an item's ratings within a time range.
    pub fn item_stats(&self, item: ItemId, range: TimeRange) -> RatingStats {
        let mut stats = RatingStats::new();
        for r in self.ratings_for_item(item) {
            if range.contains(r.ts) {
                stats.push(r.score);
            }
        }
        stats
    }

    /// Global aggregate statistics.
    pub fn global_stats(&self) -> RatingStats {
        RatingStats::from_scores(self.ratings.iter().map(|r| r.score))
    }

    /// Earliest and latest rating timestamps, if any ratings exist.
    pub fn time_span(&self) -> Option<(Timestamp, Timestamp)> {
        let min = self.ratings.iter().map(|r| r.ts).min()?;
        let max = self.ratings.iter().map(|r| r.ts).max()?;
        Some((min, max))
    }

    /// Merges an append batch into a new immutable dataset.
    ///
    /// The rating column stays sorted by `(item, ts, user)` — new ratings
    /// are spliced into place, with old ratings winning ties so retained
    /// per-query state can be remapped deterministically. New users and
    /// items must densely continue the existing id space (use
    /// [`crate::append::IdAllocator`]); existing packed reviewer codes are
    /// carried over byte-for-byte, and new positions pack their reviewer
    /// exactly as a from-scratch [`DatasetBuilder::build`] would, so the
    /// result is indistinguishable from a full reload of the merged data.
    ///
    /// Returns the new dataset plus the bookkeeping a live commit needs:
    /// which items changed (cache invalidation scope), where the new
    /// ratings landed, and the old→new index remap for maintained cubes.
    pub fn with_appended(&self, batch: AppendBatch) -> Result<AppendResult, DataError> {
        let AppendBatch {
            users: new_users,
            items: new_items,
            ratings: mut new_ratings,
        } = batch;

        for (k, u) in new_users.iter().enumerate() {
            if u.id.index() != self.users.len() + k {
                return Err(DataError::Invalid(format!(
                    "appended user id {} does not continue the dense id space (expected {})",
                    u.id,
                    self.users.len() + k
                )));
            }
        }
        for (k, it) in new_items.iter().enumerate() {
            if it.id.index() != self.items.len() + k {
                return Err(DataError::Invalid(format!(
                    "appended item id {} does not continue the dense id space (expected {})",
                    it.id,
                    self.items.len() + k
                )));
            }
            for p in it.actors.iter().chain(it.directors.iter()) {
                if p.index() >= self.persons.len() {
                    return Err(DataError::Invalid(format!(
                        "item {} references unknown person {}",
                        it.id, p
                    )));
                }
            }
        }
        let num_users = self.users.len() + new_users.len();
        let num_items = self.items.len() + new_items.len();
        for r in &new_ratings {
            if r.user.index() >= num_users {
                return Err(DataError::UnknownUser(r.user.0));
            }
            if r.item.index() >= num_items {
                return Err(DataError::UnknownItem(r.item.0));
            }
        }

        let mut users = self.users.clone();
        users.extend(new_users);
        let mut items = self.items.clone();
        let mut title_index = self.title_index.clone();
        let mut acts_in = self.acts_in.clone();
        let mut directs = self.directs.clone();
        for it in new_items {
            title_index.insert(it.title.to_lowercase(), it.id);
            for &p in &it.actors {
                acts_in.entry(p).or_default().push(it.id);
            }
            for &p in &it.directors {
                directs.entry(p).or_default().push(it.id);
            }
            items.push(it);
        }

        // Stable sort: ratings submitted in one batch with identical
        // `(item, ts, user)` keys keep their submission order.
        new_ratings.sort_by_key(|r| (r.item, r.ts, r.user));

        // Merge-splice into the sorted column, old before new on ties.
        let old = &self.ratings;
        let m = new_ratings.len();
        let mut ratings = Vec::with_capacity(old.len() + m);
        let mut rating_user_codes = Vec::with_capacity(old.len() + m);
        let mut rating_score_bins = Vec::with_capacity(old.len() + m);
        let mut inserts = Vec::with_capacity(m);
        let mut appended_idx = Vec::with_capacity(m);
        let mut changed: Vec<ItemId> = new_ratings.iter().map(|r| r.item).collect();
        let (mut i, mut j) = (0usize, 0usize);
        while i < old.len() || j < m {
            let take_new = j < m
                && (i == old.len() || {
                    let n = &new_ratings[j];
                    let o = &old[i];
                    (n.item, n.ts, n.user) < (o.item, o.ts, o.user)
                });
            if take_new {
                let n = new_ratings[j];
                if i < old.len() {
                    inserts.push(i as u32);
                }
                appended_idx.push(ratings.len() as u32);
                rating_user_codes.push(PackedUserCode::pack(&users[n.user.index()]).get());
                rating_score_bins.push(n.score.bucket() as u8);
                ratings.push(n);
                j += 1;
            } else {
                rating_user_codes.push(self.rating_user_codes[i]);
                rating_score_bins.push(self.rating_score_bins[i]);
                ratings.push(old[i]);
                i += 1;
            }
        }

        changed.sort_unstable();
        changed.dedup();
        // Brand-new items count as changed even without ratings: catalogue
        // queries may now match them.
        for it in &items[self.items.len()..] {
            if changed.binary_search(&it.id).is_err() {
                changed.push(it.id);
            }
        }
        changed.sort_unstable();

        let (item_offsets, user_offsets, user_rating_idx) =
            build_csr(items.len(), users.len(), &ratings);

        let dataset = Dataset {
            users,
            items,
            persons: self.persons.clone(),
            ratings,
            rating_user_codes,
            rating_score_bins,
            item_offsets,
            user_offsets,
            user_rating_idx,
            title_index,
            person_index: self.person_index.clone(),
            acts_in,
            directs,
        };
        Ok(AppendResult {
            dataset,
            changed_items: changed,
            appended_idx,
            remap: IndexRemap::from_inserts(inserts),
        })
    }

    /// One-line summary used by example binaries.
    pub fn summary(&self) -> String {
        format!(
            "{} users, {} items, {} persons, {} ratings",
            self.users.len(),
            self.items.len(),
            self.persons.len(),
            self.ratings.len()
        )
    }
}

/// Accumulates entities and produces a validated [`Dataset`].
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    users: Vec<User>,
    items: Vec<Item>,
    persons: Vec<Person>,
    ratings: Vec<Rating>,
}

impl DatasetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a user; its id must equal its dense position.
    pub fn add_user(&mut self, user: User) -> &mut Self {
        debug_assert_eq!(user.id.index(), self.users.len());
        self.users.push(user);
        self
    }

    /// Adds an item; its id must equal its dense position.
    pub fn add_item(&mut self, item: Item) -> &mut Self {
        debug_assert_eq!(item.id.index(), self.items.len());
        self.items.push(item);
        self
    }

    /// Adds a person; its id must equal its dense position.
    pub fn add_person(&mut self, person: Person) -> &mut Self {
        debug_assert_eq!(person.id.index(), self.persons.len());
        self.persons.push(person);
        self
    }

    /// Adds a rating tuple.
    pub fn add_rating(&mut self, rating: Rating) -> &mut Self {
        self.ratings.push(rating);
        self
    }

    /// Reserves rating capacity up front (the generator knows the total).
    pub fn reserve_ratings(&mut self, additional: usize) -> &mut Self {
        self.ratings.reserve(additional);
        self
    }

    /// Number of users added so far.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// The users added so far (the generator's rating pass reads these).
    pub fn users(&self) -> &[User] {
        &self.users
    }

    /// Number of items added so far.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Validates referential integrity, sorts the rating column and builds
    /// all indexes.
    pub fn build(self) -> Result<Dataset, DataError> {
        let DatasetBuilder {
            users,
            items,
            persons,
            mut ratings,
        } = self;

        for r in &ratings {
            if r.user.index() >= users.len() {
                return Err(DataError::UnknownUser(r.user.0));
            }
            if r.item.index() >= items.len() {
                return Err(DataError::UnknownItem(r.item.0));
            }
        }
        for it in &items {
            for p in it.actors.iter().chain(it.directors.iter()) {
                if p.index() >= persons.len() {
                    return Err(DataError::Invalid(format!(
                        "item {} references unknown person {}",
                        it.id, p
                    )));
                }
            }
        }

        ratings.sort_unstable_by_key(|r| (r.item, r.ts, r.user));

        // Dense per-rating columns for the cube builder's hot loop:
        // packed reviewer codes and score buckets, aligned with the
        // sorted rating column.
        let rating_user_codes: Vec<u16> = ratings
            .iter()
            .map(|r| PackedUserCode::pack(&users[r.user.index()]).get())
            .collect();
        let rating_score_bins: Vec<u8> = ratings.iter().map(|r| r.score.bucket() as u8).collect();

        // CSR over items, and over users (counting sort of rating indexes).
        let (item_offsets, user_offsets, user_rating_idx) =
            build_csr(items.len(), users.len(), &ratings);

        let title_index = items
            .iter()
            .map(|it| (it.title.to_lowercase(), it.id))
            .collect();
        let person_index = persons
            .iter()
            .map(|p| (p.name.to_lowercase(), p.id))
            .collect();

        let mut acts_in: HashMap<PersonId, Vec<ItemId>> = HashMap::new();
        let mut directs: HashMap<PersonId, Vec<ItemId>> = HashMap::new();
        for it in &items {
            for &p in &it.actors {
                acts_in.entry(p).or_default().push(it.id);
            }
            for &p in &it.directors {
                directs.entry(p).or_default().push(it.id);
            }
        }

        Ok(Dataset {
            users,
            items,
            persons,
            ratings,
            rating_user_codes,
            rating_score_bins,
            item_offsets,
            user_offsets,
            user_rating_idx,
            title_index,
            person_index,
            acts_in,
            directs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{AgeGroup, Gender, Occupation, UsState};
    use crate::genre::{Genre, GenreSet};
    use crate::score::Score;
    use crate::zipcode::Zip;

    fn mk_user(id: u32, state: UsState) -> User {
        User {
            id: UserId(id),
            age: AgeGroup::From25To34,
            gender: Gender::Male,
            occupation: Occupation::Programmer,
            zip: Zip::new(94103),
            state,
            city: 0,
        }
    }

    fn mk_item(id: u32, title: &str) -> Item {
        Item::new(ItemId(id), title, 1995, GenreSet::of([Genre::Comedy]))
    }

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new();
        b.add_user(mk_user(0, UsState::CA));
        b.add_user(mk_user(1, UsState::NY));
        b.add_person(Person {
            id: PersonId(0),
            name: "Tom Hanks".into(),
        });
        let mut it0 = mk_item(0, "Toy Story");
        it0.actors.push(PersonId(0));
        b.add_item(it0);
        b.add_item(mk_item(1, "Heat"));
        let t = |d| Timestamp::from_ymd(2000, 6, d);
        b.add_rating(Rating::new(
            UserId(0),
            ItemId(1),
            Score::new(3).unwrap(),
            t(5),
        ));
        b.add_rating(Rating::new(
            UserId(0),
            ItemId(0),
            Score::new(5).unwrap(),
            t(2),
        ));
        b.add_rating(Rating::new(
            UserId(1),
            ItemId(0),
            Score::new(4).unwrap(),
            t(1),
        ));
        b.build().unwrap()
    }

    #[test]
    fn ratings_sorted_and_sliced_per_item() {
        let d = sample();
        let toy = d.ratings_for_item(ItemId(0));
        assert_eq!(toy.len(), 2);
        assert!(toy[0].ts <= toy[1].ts, "per-item slice time-ordered");
        assert_eq!(d.ratings_for_item(ItemId(1)).len(), 1);
    }

    #[test]
    fn user_index_lists_all_their_ratings() {
        let d = sample();
        let idxs = d.rating_indexes_for_user(UserId(0));
        assert_eq!(idxs.len(), 2);
        for &i in idxs {
            assert_eq!(d.ratings()[i as usize].user, UserId(0));
        }
        assert_eq!(d.rating_indexes_for_user(UserId(1)).len(), 1);
    }

    #[test]
    fn title_lookup_case_insensitive() {
        let d = sample();
        assert_eq!(d.find_title("toy story"), Some(ItemId(0)));
        assert_eq!(d.find_title("TOY STORY"), Some(ItemId(0)));
        assert_eq!(d.find_title("Missing"), None);
    }

    #[test]
    fn title_substring_search() {
        let d = sample();
        assert_eq!(d.search_titles("story"), vec![ItemId(0)]);
        assert!(d.search_titles("zzz").is_empty());
    }

    #[test]
    fn person_join_works() {
        let d = sample();
        let hanks = d.find_person("tom hanks").unwrap();
        assert_eq!(d.items_with_person(hanks, Role::Actor), &[ItemId(0)]);
        assert!(d.items_with_person(hanks, Role::Director).is_empty());
    }

    #[test]
    fn item_stats_respect_time_range() {
        let d = sample();
        let all = d.item_stats(ItemId(0), TimeRange::all());
        assert_eq!(all.count(), 2);
        let narrow = d.item_stats(
            ItemId(0),
            TimeRange::between(
                Timestamp::from_ymd(2000, 6, 2),
                Timestamp::from_ymd(2000, 6, 3),
            ),
        );
        assert_eq!(narrow.count(), 1);
    }

    #[test]
    fn dangling_rating_rejected() {
        let mut b = DatasetBuilder::new();
        b.add_user(mk_user(0, UsState::CA));
        b.add_rating(Rating::new(
            UserId(0),
            ItemId(9),
            Score::new(3).unwrap(),
            Timestamp::from_ymd(2000, 1, 1),
        ));
        assert!(matches!(b.build(), Err(DataError::UnknownItem(9))));
    }

    #[test]
    fn dangling_person_rejected() {
        let mut b = DatasetBuilder::new();
        let mut it = mk_item(0, "X");
        it.directors.push(PersonId(5));
        b.add_item(it);
        assert!(b.build().is_err());
    }

    #[test]
    fn time_span_and_summary() {
        let d = sample();
        let (lo, hi) = d.time_span().unwrap();
        assert_eq!(lo, Timestamp::from_ymd(2000, 6, 1));
        assert_eq!(hi, Timestamp::from_ymd(2000, 6, 5));
        assert!(d.summary().contains("3 ratings"));
    }

    #[test]
    fn packed_columns_align_with_ratings() {
        let d = sample();
        assert_eq!(d.rating_user_codes().len(), d.num_ratings());
        assert_eq!(d.rating_score_bins().len(), d.num_ratings());
        for (i, r) in d.ratings().iter().enumerate() {
            let code = PackedUserCode::from_raw(d.rating_user_codes()[i]);
            let user = d.user(r.user);
            for attr in crate::attrs::UserAttr::ALL {
                assert_eq!(
                    usize::from(code.field(attr)),
                    user.attr_value(attr).value_index()
                );
            }
            assert_eq!(usize::from(d.rating_score_bins()[i]), r.score.bucket());
        }
    }

    #[test]
    fn empty_dataset_builds() {
        let d = DatasetBuilder::new().build().unwrap();
        assert_eq!(d.num_ratings(), 0);
        assert!(d.time_span().is_none());
        assert!(d.global_stats().is_empty());
    }
}
