//! Bounded multi-producer multi-consumer channels, mirroring the
//! `crossbeam-channel` API surface the workspace uses: [`bounded`],
//! [`unbounded`], cloneable [`Sender`]/[`Receiver`], and disconnection
//! when the last handle on either side drops.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    /// `usize::MAX` encodes "unbounded".
    capacity: usize,
    senders: AtomicUsize,
    receivers: AtomicUsize,
    /// Signaled when an item arrives or the senders disconnect.
    not_empty: Condvar,
    /// Signaled when space frees up or the receivers disconnect.
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn disconnected_tx(&self) -> bool {
        self.senders.load(Ordering::SeqCst) == 0
    }

    fn disconnected_rx(&self) -> bool {
        self.receivers.load(Ordering::SeqCst) == 0
    }
}

/// Error from [`Sender::send`]: the message comes back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error from [`Receiver::recv`]: every sender is gone and the queue is
/// drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error from [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender has disconnected.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "channel is empty"),
            TryRecvError::Disconnected => write!(f, "channel is disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// The sending half; cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; cloneable (MPMC — each message goes to exactly one
/// receiver).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel holding at most `capacity` in-flight messages.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(capacity.max(1))
}

/// Creates a channel with no capacity bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(usize::MAX)
}

fn with_capacity<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        capacity,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until the message is enqueued or every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let shared = &*self.shared;
        let mut queue = shared.queue.lock().expect("channel lock");
        loop {
            if shared.disconnected_rx() {
                return Err(SendError(value));
            }
            if queue.len() < shared.capacity {
                queue.push_back(value);
                shared.not_empty.notify_one();
                return Ok(());
            }
            queue = shared.not_full.wait(queue).expect("channel lock");
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Wake receivers parked on an empty queue so they observe the
            // disconnect.
            let _guard = self.shared.queue.lock();
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or the channel disconnects empty.
    pub fn recv(&self) -> Result<T, RecvError> {
        let shared = &*self.shared;
        let mut queue = shared.queue.lock().expect("channel lock");
        loop {
            if let Some(value) = queue.pop_front() {
                shared.not_full.notify_one();
                return Ok(value);
            }
            if shared.disconnected_tx() {
                return Err(RecvError);
            }
            queue = shared.not_empty.wait(queue).expect("channel lock");
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let shared = &*self.shared;
        let mut queue = shared.queue.lock().expect("channel lock");
        if let Some(value) = queue.pop_front() {
            shared.not_full.notify_one();
            return Ok(value);
        }
        if shared.disconnected_tx() {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Wake senders parked on a full queue so they observe the
            // disconnect.
            let _guard = self.shared.queue.lock();
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpmc_delivers_every_message_once() {
        let (tx, rx) = bounded::<usize>(4);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_senders_drop() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_receivers_drop() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn bounded_blocks_then_progresses() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap().unwrap();
    }
}
