//! The MapRat demo server: a dependency-free reproduction of the paper's
//! web front-end (§3.1, Figure 1) with a typed, versioned JSON API.
//!
//! * [`json`] — a minimal, escaping-correct JSON value type with a writer
//!   and a small parser (used by the codecs, tests and tooling;
//!   `serde_json` is not on the approved dependency list);
//! * [`http`] — an HTTP/1.1 listener on `std::net::TcpListener` whose
//!   bounded-concurrency accept loop executes each request as a job on
//!   the shared worker pool (`maprat_core::pool`), with request parsing
//!   (query strings, percent-decoding and `Content-Length` POST bodies)
//!   and graceful shutdown;
//! * [`api`] — the typed `/api/v1` contract: request/response structs
//!   with canonical JSON codecs, the shared GET-parameter parser, and the
//!   structured [`api::ApiError`] every route answers errors with;
//! * [`routes`] — the application: `/api/v1/{explain,timeline,drill,
//!   detail,personalize}` (GET query string or POST JSON body), their
//!   legacy unversioned aliases, `/map.svg`, `/citymap.svg` and the
//!   embedded HTML page — all over a clonable
//!   [`maprat_explore::MapRatEngine`];
//! * [`html`] — the single-page front-end (vanilla JS) driving the API.

#![warn(missing_docs)]

pub mod api;
pub mod html;
pub mod http;
pub mod json;
pub mod routes;

pub use api::{ApiError, ExplainResponse};
pub use http::{HttpServer, Request, Response};
pub use json::Json;
pub use routes::AppState;
