//! Request deadlines for the solver's restart loops.
//!
//! A [`Budget`] is the degradation half of the serving story: the HTTP
//! layer parses `X-MapRat-Deadline-Ms` into one, the engine threads it
//! down into [`crate::rhe`], and every hill-climbing iteration (the
//! [`crate::SelectionEval`] call sites) checks it before paying for the
//! next neighbourhood sweep. An expired budget aborts the solve with
//! [`crate::MineError::DeadlineExceeded`] instead of returning a
//! partially-climbed (and therefore non-deterministic) solution — a
//! deadline changes *whether* an answer is produced, never *which*
//! answer, so result caches stay pure.

use std::time::{Duration, Instant};

/// A solve deadline. The default, [`Budget::unlimited`], never expires
/// and costs nothing to check — the common path through the solver stays
/// free of clock reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    deadline: Option<Instant>,
}

impl Budget {
    /// A budget that never expires.
    pub fn unlimited() -> Budget {
        Budget { deadline: None }
    }

    /// A budget expiring `limit` from now.
    pub fn with_deadline(limit: Duration) -> Budget {
        Budget {
            deadline: Some(Instant::now() + limit),
        }
    }

    /// A budget expiring `ms` milliseconds from now (the
    /// `X-MapRat-Deadline-Ms` header's unit).
    pub fn from_deadline_ms(ms: u64) -> Budget {
        Budget::with_deadline(Duration::from_millis(ms))
    }

    /// Whether a deadline is set at all.
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some()
    }

    /// Whether the deadline has passed. Free for unlimited budgets; one
    /// monotonic clock read otherwise.
    #[inline]
    pub fn expired(&self) -> bool {
        match self.deadline {
            None => false,
            Some(deadline) => Instant::now() >= deadline,
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let b = Budget::unlimited();
        assert!(!b.is_limited());
        assert!(!b.expired());
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let b = Budget::with_deadline(Duration::ZERO);
        assert!(b.is_limited());
        assert!(b.expired());
    }

    #[test]
    fn generous_deadline_has_not_expired_yet() {
        let b = Budget::from_deadline_ms(60_000);
        assert!(b.is_limited());
        assert!(!b.expired());
    }
}
