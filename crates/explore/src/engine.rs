//! The owned exploration engine — MapRat's public entry point.
//!
//! [`MapRatEngine`] bundles an [`Arc<Dataset>`], a miner and a two-tier
//! cache into a cheaply-clonable handle: clones share the dataset and
//! both cache tiers, so a server can hand one clone to every worker
//! thread (or serve several datasets side by side) without leaking
//! anything to `'static`.
//!
//! The serving path stacks three mechanisms (§2.3's "aggressive data
//! pre-processing, result pre-computation and caching"):
//!
//! 1. a **result tier** keyed by the full typed [`ExplainRequest`] —
//!    a hit returns the finished explanation;
//! 2. a **snapshot tier** keyed by the cube-build inputs only (the item
//!    query plus `min_support`/`require_geo`/`max_arity`) — a hit skips
//!    the cube build and re-runs only the solve, so sweeping solver
//!    settings over one query pays the cube once;
//! 3. **single-flight coalescing** — N concurrent identical cold
//!    requests run one solve and share the `Arc`'d result.
//!
//! Above a policy threshold ([`ApproxPolicy`], `MAPRAT_APPROX*` knobs)
//! the cold path switches to **approximate serving**: `R_I` is
//! stratified-sampled by demographic base cell, the cube and solves run
//! on the sample, and the result carries an error contract
//! ([`maprat_approx::ApproxInfo`]). A background exact re-solve then
//! *hot-upgrades* the cache entry in place (`hit-approx` → `hit`); the
//! per-request [`ApproxMode`] directive (`approx=off|force`) overrides
//! the policy. See `docs/APPROX.md`.
//!
//! [`MapRatEngine::explain_traced`] reports which tier answered
//! ([`ServedFrom`]), which the HTTP layer surfaces as the
//! `X-MapRat-Cache` response header. The dataset itself sits behind a
//! lock-held `Arc` that [`MapRatEngine::swap_dataset`] replaces
//! atomically — in-flight requests keep mining the snapshot they pinned,
//! so a hot-swap never drops traffic.
//!
//! Cache entries are keyed by the typed [`ExplainRequest`] itself —
//! its `Hash` encoding, not a hand-formatted string — so every settings
//! field (including the solver seed and the DM λ) participates in the
//! key by construction, and full request equality is verified on every
//! hit. [`RequestFingerprint`] is a compact 128-bit digest of that same
//! encoding, for logging and collision-regression testing.
//!
//! # Environment knobs
//!
//! [`MapRatEngine::new`] sizes the tiers from the environment (totals,
//! spread over 4 shards): `MAPRAT_RESULT_CACHE` (default 256 entries)
//! and `MAPRAT_SNAPSHOT_CACHE` (default 64 entries).

use crate::approx::{ApproxMode, ApproxPolicy};
use maprat_approx::{ApproxInfo, RefineLedger, StratifiedSampler, StratumCensus};
use maprat_cache::{CacheStats, FlightError, FlightGroup, FlightOutcome, ShardedCache};
use maprat_core::query::ItemQuery;
use maprat_core::{parallel, Budget, Explanation, MineError, Miner, SearchSettings};
use maprat_cube::derive::{derive_cube, CombinedUniverse};
use maprat_cube::{CubeOptions, RatingCube};
use maprat_data::{Dataset, ItemId};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard};
use std::time::Duration;

/// How long a coalesced follower waits on its leader before giving up
/// with a structured error. Generous — a healthy solve finishes in
/// milliseconds; this only bounds pathological leaders (wedged worker,
/// injected stall) so followers never hang a server thread forever.
const FLIGHT_WAIT: Duration = Duration::from_secs(30);

/// One fully-specified explanation request: the query plus every search
/// setting. This is the unit the engine caches on and the unit the typed
/// HTTP API decodes into.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct ExplainRequest {
    /// The item query (terms, combination mode, time window).
    pub query: ItemQuery,
    /// The search settings (group budget, coverage, solver parameters…).
    pub settings: SearchSettings,
}

/// No field holds a NaN in practice (settings are range-validated at
/// construction boundaries), so the derived `PartialEq` is total here.
impl Eq for ExplainRequest {}

impl ExplainRequest {
    /// Bundles a query with settings.
    pub fn new(query: ItemQuery, settings: SearchSettings) -> Self {
        ExplainRequest { query, settings }
    }

    /// The 128-bit digest of this request (for logging and for the
    /// collision-regression tests; the cache keys on the request itself).
    ///
    /// Combines two structurally different 64-bit hashes (SipHash via
    /// [`DefaultHasher`] and FNV-1a) of the full `Hash` encoding, so
    /// requests differing in *any* field — including `rhe.seed` or
    /// `dm_lambda`, which the old string key silently carried in lossy
    /// `{:.4}` formatting — map to distinct digests.
    pub fn fingerprint(&self) -> RequestFingerprint {
        let mut sip = DefaultHasher::new();
        self.hash(&mut sip);
        let mut fnv = Fnv1a::default();
        self.hash(&mut fnv);
        RequestFingerprint(((sip.finish() as u128) << 64) | fnv.finish() as u128)
    }
}

/// A 128-bit digest of an [`ExplainRequest`], for logging and
/// collision-regression testing (the cache keys on the request itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestFingerprint(u128);

impl RequestFingerprint {
    /// The raw 128-bit value (e.g. for logging).
    pub fn as_u128(self) -> u128 {
        self.0
    }
}

impl std::fmt::Display for RequestFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// FNV-1a, 64-bit — the second, structurally independent leg of the
/// fingerprint (SipHash alone would make the digest as collision-prone
/// as a single 64-bit hash).
struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Everything one explained query produces: the user-facing explanation
/// plus the cube it was mined from (kept for drill-down and comparison,
/// which revisit covers).
#[derive(Debug)]
pub struct ExplorationResult {
    /// The explanation (both tabs).
    pub explanation: Explanation,
    /// The candidate cube (for drill-down / related-group statistics).
    pub cube: RatingCube,
    /// The matched items.
    pub items: Vec<ItemId>,
    /// The dataset snapshot the result was mined from. Drill-down and
    /// comparison revisit the cube's covers, whose positions index
    /// *this* snapshot's rating column — after an ingest commit splices
    /// new ratings in, the live dataset's positions shift, so consumers
    /// must read through this pinned handle, never through
    /// [`MapRatEngine::dataset`].
    pub dataset: Arc<Dataset>,
    /// The approximation contract when this result was mined from a
    /// stratified sample (`None` for exact results): sampling fraction,
    /// stratum census, and per-group confidence bounds. The cube above is
    /// then the *sampled* cube — drill-down and comparison statistics
    /// read sampled aggregates until the background refinement upgrades
    /// the entry.
    pub approx: Option<ApproxInfo>,
}

/// Which serving mechanism answered an explain (see
/// [`MapRatEngine::explain_traced`]). The HTTP layer reports this as the
/// `X-MapRat-Cache` response header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// The finished explanation was already in the result tier.
    ResultCache,
    /// The finished explanation was in the result tier, but was mined
    /// from a dataset snapshot an ingest commit has since superseded
    /// (the entry survived a scoped swap because its partition was
    /// untouched). The answer is correct over the pre-ingest view.
    PreIngestCache,
    /// The result tier held an *approximate* (sampled) entry for this
    /// request; the response carries its error bounds while a background
    /// refinement upgrades the entry to exact.
    ApproxCache,
    /// The cube/cover snapshot was cached; only the solve re-ran.
    SnapshotCache,
    /// Nothing was cached: cube build plus solve ran.
    Cold,
    /// A concurrent identical request was already solving; this caller
    /// waited and shares that leader's result.
    Coalesced,
    /// The request was solved inside a fused batch
    /// ([`MapRatEngine::explain_batch`]): one combined cube build served
    /// its whole batch group, and this request's cube was derived from it.
    BatchFused,
}

impl ServedFrom {
    /// Stable lowercase label (the `X-MapRat-Cache` header value).
    pub fn as_str(self) -> &'static str {
        match self {
            ServedFrom::ResultCache => "hit",
            ServedFrom::PreIngestCache => "hit-preingest",
            ServedFrom::ApproxCache => "hit-approx",
            ServedFrom::SnapshotCache => "snapshot",
            ServedFrom::Cold => "miss",
            ServedFrom::Coalesced => "coalesced",
            ServedFrom::BatchFused => "batch",
        }
    }
}

impl std::fmt::Display for ServedFrom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One engine-wide telemetry snapshot across both tiers, the flight
/// group and the solver counter (rendered by `/api/v1/stats`).
#[derive(Debug, Clone)]
pub struct ServingStats {
    /// Result-tier hits.
    pub result_hits: u64,
    /// Result-tier hits served from an entry retained across a dataset
    /// swap — the response comes from the entry's pre-ingest snapshot
    /// (`X-MapRat-Cache: hit-preingest`).
    pub result_stale_hits: u64,
    /// Result-tier misses.
    pub result_misses: u64,
    /// Result-tier resident entries.
    pub result_len: usize,
    /// Snapshot-tier hits.
    pub snapshot_hits: u64,
    /// Snapshot-tier misses.
    pub snapshot_misses: u64,
    /// Snapshot-tier resident entries.
    pub snapshot_len: usize,
    /// Targeted invalidations across both tiers (hot-swap scoped drops).
    pub invalidations: u64,
    /// Flights that ran the computation themselves.
    pub flights_led: u64,
    /// Flights that shared a concurrent leader's result.
    pub flights_joined: u64,
    /// Requests that reached the miner (cube build and/or solve).
    pub solves: u64,
    /// Foreground explains currently executing.
    pub foreground_inflight: usize,
    /// Solves aborted because the request's deadline expired mid-climb.
    pub deadline_expired: u64,
    /// Coalesced flights whose leader failed (panic, death) or exceeded
    /// the bounded wait — each propagated a structured error to its
    /// followers instead of hanging them.
    pub coalesced_failures: u64,
    /// Responses served with an approximation contract attached (cold
    /// sampled solves plus `hit-approx` cache hits).
    pub approx_served: u64,
    /// Background refinements that landed: an approximate cache entry
    /// was upgraded to the exact answer in place.
    pub approx_refined: u64,
    /// Requests where the approximate path was consulted (universe
    /// collected) but declined — universe under the policy threshold,
    /// sample degenerate, or no surviving candidates — and the exact
    /// pipeline answered instead.
    pub approx_fallback_exact: u64,
}

/// The snapshot tier's key: exactly the inputs of `Miner::build_cube`.
/// Two requests that differ only in solver settings (group budget,
/// coverage, λ, seed…) share one cube/cover snapshot.
#[derive(Clone, PartialEq, Eq, Hash)]
struct SnapshotKey {
    query: ItemQuery,
    min_support: usize,
    require_geo: bool,
    max_arity: usize,
}

impl SnapshotKey {
    fn of(request: &ExplainRequest) -> Self {
        SnapshotKey {
            query: request.query.clone(),
            min_support: request.settings.min_support,
            require_geo: request.settings.require_geo,
            max_arity: request.settings.max_arity,
        }
    }
}

/// A reusable cube/cover artifact: the matched items plus the built
/// cube. `RatingCube` Arc-shares its cover chunks, so cloning out of the
/// tier is cheap.
struct CubeSnapshot {
    items: Vec<ItemId>,
    cube: RatingCube,
    /// The dataset snapshot the cube was built from: its `rating_idx`
    /// indexes this snapshot's rating column, so re-solves must run
    /// against it (after an ingest commit the live column's positions
    /// may have shifted).
    dataset: Arc<Dataset>,
}

/// The census memo's key: the query (which determines `R_I`) plus the
/// sampling fraction's bits. The census itself is fraction-independent
/// (only the cheap per-stratum allocation step reads the fraction), but
/// keying on both keeps the memo exact under engines whose policies are
/// reconfigured mid-flight.
#[derive(Clone, PartialEq, Eq, Hash)]
struct CensusKey {
    query: ItemQuery,
    frac_bits: u64,
}

impl CensusKey {
    fn of(query: &ItemQuery, frac: f64) -> Self {
        CensusKey {
            query: query.clone(),
            frac_bits: frac.to_bits(),
        }
    }
}

/// One memoized universe for the approximate path: the matched items,
/// `R_I`, and its stratum census, pinned to the dataset snapshot they
/// were collected from. Repeated sampled explains of the same query
/// (different seeds, solver settings, or re-misses after result-tier
/// eviction) skip both the universe collection and the census pass, and
/// the background refinement reuses `(items, universe)` for its exact
/// re-solve.
struct CensusEntry {
    items: Vec<ItemId>,
    universe: Vec<u32>,
    census: StratumCensus,
    dataset: Arc<Dataset>,
}

type CachedResult = Arc<Result<ExplorationResult, MineError>>;

fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Decrements the foreground-inflight gauge even on unwind, so a
/// panicking explain can never wedge the precompute scheduler's
/// backpressure check.
struct ForegroundGuard<'a>(&'a AtomicUsize);

impl<'a> ForegroundGuard<'a> {
    fn enter(gauge: &'a AtomicUsize) -> Self {
        gauge.fetch_add(1, Ordering::SeqCst);
        ForegroundGuard(gauge)
    }
}

impl Drop for ForegroundGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The shared state behind every engine clone.
///
/// The result tier is keyed by the typed request itself: its `Hash`
/// encoding — the same bits [`ExplainRequest::fingerprint`] digests —
/// selects the shard and bucket, and full equality is verified on every
/// hit, so a fingerprint collision can never serve another request's
/// result.
struct EngineInner {
    dataset: RwLock<Arc<Dataset>>,
    results: ShardedCache<ExplainRequest, Result<ExplorationResult, MineError>>,
    snapshots: ShardedCache<SnapshotKey, CubeSnapshot>,
    censuses: ShardedCache<CensusKey, CensusEntry>,
    /// Flights are keyed by request *plus* approx-mode class: an
    /// `approx=off` caller must never join a sampled leader's flight.
    flights: FlightGroup<(ExplainRequest, u8), (CachedResult, ServedFrom)>,
    solves: AtomicU64,
    foreground: AtomicUsize,
    deadline_expired: AtomicU64,
    coalesced_failures: AtomicU64,
    approx: ApproxPolicy,
    refines: RefineLedger,
    approx_served: AtomicU64,
    approx_fallback: AtomicU64,
}

/// An owned, cheaply-clonable exploration engine: `Arc<Dataset>` + miner
/// + sharded result cache.
///
/// ```
/// use maprat_explore::MapRatEngine;
/// use maprat_core::query::ItemQuery;
/// use maprat_core::SearchSettings;
/// use maprat_data::synth::{generate, SynthConfig};
/// use std::sync::Arc;
///
/// let dataset = Arc::new(generate(&SynthConfig::tiny(42)).unwrap());
/// let engine = MapRatEngine::new(dataset);
/// let worker = engine.clone(); // shares the dataset and the cache
/// let settings = SearchSettings::builder().min_coverage(0.1).require_geo(false).build().unwrap();
/// let r = worker.explain_query(&ItemQuery::title("Toy Story"), &settings);
/// assert!(r.is_ok());
/// assert!(engine.cache_len() >= 1, "clones share one cache");
/// ```
#[derive(Clone)]
pub struct MapRatEngine {
    inner: Arc<EngineInner>,
}

/// Reads a positive cache-size knob from the environment.
fn env_size(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

const SHARDS: usize = 4;

impl MapRatEngine {
    /// Creates an engine with the environment-tuned cache geometry:
    /// `MAPRAT_RESULT_CACHE` total result entries (default 256) and
    /// `MAPRAT_SNAPSHOT_CACHE` total cube snapshots (default 64), each
    /// spread over 4 shards.
    pub fn new(dataset: Arc<Dataset>) -> Self {
        let results = env_size("MAPRAT_RESULT_CACHE", 256);
        Self::with_cache_size(dataset, SHARDS, results.div_ceil(SHARDS))
    }

    /// Creates an engine over a freshly-wrapped dataset (convenience for
    /// binaries that just generated or loaded one).
    pub fn from_dataset(dataset: Dataset) -> Self {
        Self::new(Arc::new(dataset))
    }

    /// Creates an engine with an explicit result-tier geometry (the
    /// snapshot tier stays environment-tuned).
    pub fn with_cache_size(dataset: Arc<Dataset>, shards: usize, per_shard: usize) -> Self {
        Self::build(dataset, shards, per_shard, ApproxPolicy::from_env())
    }

    /// Creates an engine with an explicit [`ApproxPolicy`] (cache
    /// geometry stays environment-tuned) — benchmarks and tests pin the
    /// sampling threshold/fraction this way instead of mutating the
    /// process environment.
    pub fn with_approx_policy(dataset: Arc<Dataset>, policy: ApproxPolicy) -> Self {
        let results = env_size("MAPRAT_RESULT_CACHE", 256);
        Self::build(dataset, SHARDS, results.div_ceil(SHARDS), policy)
    }

    fn build(dataset: Arc<Dataset>, shards: usize, per_shard: usize, approx: ApproxPolicy) -> Self {
        let snapshots = env_size("MAPRAT_SNAPSHOT_CACHE", 64);
        MapRatEngine {
            inner: Arc::new(EngineInner {
                dataset: RwLock::new(dataset),
                results: ShardedCache::new(shards, per_shard),
                snapshots: ShardedCache::new(SHARDS, snapshots.div_ceil(SHARDS)),
                censuses: ShardedCache::new(SHARDS, snapshots.div_ceil(SHARDS)),
                flights: FlightGroup::new(),
                solves: AtomicU64::new(0),
                foreground: AtomicUsize::new(0),
                deadline_expired: AtomicU64::new(0),
                coalesced_failures: AtomicU64::new(0),
                approx,
                refines: RefineLedger::new(),
                approx_served: AtomicU64::new(0),
                approx_fallback: AtomicU64::new(0),
            }),
        }
    }

    /// The approximation policy this engine serves under.
    pub fn approx_policy(&self) -> ApproxPolicy {
        self.inner.approx
    }

    /// The current dataset, pinned. Callers hold the returned `Arc` for
    /// the duration of their work: a concurrent
    /// [`swap_dataset`](MapRatEngine::swap_dataset) replaces what *future* calls see
    /// but never invalidates a pinned handle — that is what makes the
    /// hot-swap safe under load.
    pub fn dataset(&self) -> Arc<Dataset> {
        Arc::clone(&read_lock(&self.inner.dataset))
    }

    /// Alias of [`MapRatEngine::dataset`] (kept for callers predating the
    /// hot-swap, when `dataset()` returned a plain borrow).
    pub fn dataset_arc(&self) -> Arc<Dataset> {
        self.dataset()
    }

    /// Atomically replaces the dataset and drops **both** cache tiers.
    /// In-flight requests finish against the dataset they pinned; new
    /// requests see the new one immediately.
    pub fn swap_dataset(&self, dataset: Arc<Dataset>) {
        *self
            .inner
            .dataset
            .write()
            .unwrap_or_else(PoisonError::into_inner) = dataset;
        self.inner.results.clear();
        self.inner.snapshots.clear();
        self.inner.censuses.clear();
    }

    /// Hot-swap with partition-scoped invalidation: drops only the cache
    /// entries (in both tiers) whose matched items intersect
    /// `changed_items`, plus every cached error (an error may become
    /// answerable under the new dataset). Returns how many entries were
    /// dropped.
    ///
    /// # Soundness contract
    /// Only valid when the new dataset preserves the identity and rating
    /// history of every item *not* listed in `changed_items` — e.g. an
    /// ingest append, or an in-place refresh of the listed ones. For
    /// arbitrary rebuilds use [`MapRatEngine::swap_dataset`], which
    /// invalidates everything.
    ///
    /// Retained entries keep serving — each carries the dataset snapshot
    /// it was mined from ([`ExplorationResult::dataset`]), so they stay
    /// internally consistent even when the append re-spliced the live
    /// rating column; result-tier hits on such entries are labeled
    /// [`ServedFrom::PreIngestCache`].
    pub fn swap_dataset_scoped(&self, dataset: Arc<Dataset>, changed_items: &[ItemId]) -> usize {
        let changed: HashSet<ItemId> = changed_items.iter().copied().collect();
        *self
            .inner
            .dataset
            .write()
            .unwrap_or_else(PoisonError::into_inner) = dataset;
        let untouched =
            |items: &[ItemId]| -> bool { !items.iter().any(|item| changed.contains(item)) };
        // Census entries are a pure perf memo (each is additionally
        // guarded by an `Arc::ptr_eq` dataset pin at use), but scoped
        // invalidation keeps the tier from serving as a graveyard.
        self.inner.censuses.retain(|_, e| untouched(&e.items));
        self.inner.results.retain(|_, result| match result {
            Ok(r) => untouched(&r.items),
            Err(_) => false,
        }) + self
            .inner
            .snapshots
            .retain(|_, snap| untouched(&snap.items))
    }

    /// Result-tier telemetry.
    pub fn cache_stats(&self) -> Arc<CacheStats> {
        self.inner.results.stats()
    }

    /// Snapshot-tier telemetry.
    pub fn snapshot_stats(&self) -> Arc<CacheStats> {
        self.inner.snapshots.stats()
    }

    /// Census-memo telemetry: hits are sampled explains (or exact
    /// refinements) that skipped the universe collection and `R_I`
    /// census pass by reusing a memoized [`StratumCensus`].
    pub fn census_stats(&self) -> Arc<CacheStats> {
        self.inner.censuses.stats()
    }

    /// Result-tier entries currently cached (across all shards).
    pub fn cache_len(&self) -> usize {
        self.inner.results.len()
    }

    /// Requests that reached the miner (cube build and/or solve) rather
    /// than a cache tier or a concurrent flight. The coalescing
    /// acceptance test pivots on this: N identical concurrent cold
    /// explains must leave it at 1.
    pub fn solve_count(&self) -> u64 {
        self.inner.solves.load(Ordering::Relaxed)
    }

    /// Foreground explains currently executing (the precompute
    /// scheduler's backpressure signal).
    pub fn foreground_inflight(&self) -> usize {
        self.inner.foreground.load(Ordering::SeqCst)
    }

    /// One coherent telemetry snapshot across tiers, flights and solver.
    pub fn serving_stats(&self) -> ServingStats {
        let results = self.inner.results.stats();
        let snapshots = self.inner.snapshots.stats();
        ServingStats {
            result_hits: results.hits(),
            result_stale_hits: results.stale_hits(),
            result_misses: results.misses(),
            result_len: self.inner.results.len(),
            snapshot_hits: snapshots.hits(),
            snapshot_misses: snapshots.misses(),
            snapshot_len: self.inner.snapshots.len(),
            invalidations: results.invalidations() + snapshots.invalidations(),
            flights_led: self.inner.flights.leads(),
            flights_joined: self.inner.flights.joins(),
            solves: self.solve_count(),
            foreground_inflight: self.foreground_inflight(),
            deadline_expired: self.inner.deadline_expired.load(Ordering::Relaxed),
            coalesced_failures: self.inner.coalesced_failures.load(Ordering::Relaxed)
                + self.inner.flights.failures(),
            approx_served: self.inner.approx_served.load(Ordering::Relaxed),
            approx_refined: self.inner.refines.refined(),
            approx_fallback_exact: self.inner.approx_fallback.load(Ordering::Relaxed),
        }
    }

    /// Explains a typed request, serving from the shared tiers when
    /// possible.
    pub fn explain(&self, request: &ExplainRequest) -> Arc<Result<ExplorationResult, MineError>> {
        self.explain_traced(request).0
    }

    /// Like [`MapRatEngine::explain`], but also reports which serving
    /// mechanism answered (the `X-MapRat-Cache` header value).
    pub fn explain_traced(
        &self,
        request: &ExplainRequest,
    ) -> (Arc<Result<ExplorationResult, MineError>>, ServedFrom) {
        self.explain_deadline(request, &Budget::unlimited())
    }

    /// Like [`MapRatEngine::explain_traced`] under a request [`Budget`]
    /// (the `X-MapRat-Deadline-Ms` header): cache tiers answer as usual —
    /// a deadline never changes *which* answer is produced, only whether
    /// one is — but a cold solve checks the deadline every climb
    /// iteration and aborts with [`MineError::DeadlineExceeded`] once it
    /// expires. Expired and otherwise non-deterministic outcomes are
    /// **never cached**: the budget is not part of the cache key, and a
    /// retry with more time may well succeed.
    pub fn explain_deadline(
        &self,
        request: &ExplainRequest,
        budget: &Budget,
    ) -> (Arc<Result<ExplorationResult, MineError>>, ServedFrom) {
        self.explain_opts(request, budget, ApproxMode::default())
    }

    /// The fully-general serving entry point: a request [`Budget`] plus a
    /// per-call [`ApproxMode`] directive (the HTTP `approx` parameter).
    /// Neither is part of the cache key — they steer *how* the answer is
    /// produced, not *which* logical answer it is; that is what lets the
    /// background refinement upgrade an approximate entry in place.
    ///
    /// Serving an approximate answer (cold sampled solve or `hit-approx`)
    /// bumps the `approx_served` counter and, when the policy's refine
    /// flag is set, schedules the exact re-solve on an idle pool worker.
    pub fn explain_opts(
        &self,
        request: &ExplainRequest,
        budget: &Budget,
        mode: ApproxMode,
    ) -> (Arc<Result<ExplorationResult, MineError>>, ServedFrom) {
        let _guard = ForegroundGuard::enter(&self.inner.foreground);
        let (result, served) = self.lookup_or_solve(request, budget, mode);
        if matches!(&*result, Ok(r) if r.approx.is_some()) {
            self.inner.approx_served.fetch_add(1, Ordering::Relaxed);
            if self.inner.approx.refine {
                self.schedule_refine(request);
            }
        }
        (result, served)
    }

    /// Whether the result tier already holds this request (served without
    /// touching recency or hit counters). The admission controller uses
    /// this to keep answering cached requests even while shedding load.
    pub fn cached(&self, request: &ExplainRequest) -> bool {
        self.inner.results.contains(request)
    }

    /// Background warm used by the precompute scheduler: computes and
    /// caches `request` unless the result tier already holds it. Does not
    /// count as foreground traffic (so warming never back-pressures
    /// itself), but does coalesce with any concurrent foreground flight.
    /// Returns whether any work was done.
    pub fn warm(&self, request: &ExplainRequest) -> bool {
        if self.inner.results.contains(request) {
            return false;
        }
        let _ = self.lookup_or_solve(request, &Budget::unlimited(), ApproxMode::default());
        true
    }

    /// Explains a batch of related requests, fusing their cube builds:
    /// requests that miss both cache tiers, share cube-build options and
    /// are time-unrestricted are grouped, **one** combined cube is built
    /// over the deduped union of their items, and each request's cube is
    /// derived from it ([`maprat_cube::derive`]) before its own solve —
    /// so an actor's filmography or the precompute set pays the
    /// dataset-scan and cover-materialization cost once instead of once
    /// per query.
    ///
    /// Answer-identical to issuing each request through
    /// [`MapRatEngine::explain_opts`]: derivation is pinned bit-identical
    /// to a standalone build, solves run with the request's own settings,
    /// and both cache tiers are populated exactly as a standalone miss
    /// would (so later single-request traffic hits as usual). Requests
    /// the fused path cannot serve exactly — time-restricted queries,
    /// universes the approximation policy may sample, requests whose
    /// cube snapshot is already resident (re-solving from it is cheaper
    /// than any build) — fall back to the standalone path per request.
    /// Duplicate requests within the batch are solved once and share the
    /// result ([`ServedFrom::Coalesced`]).
    ///
    /// The returned vector is index-aligned with `requests`; fused slots
    /// are labeled [`ServedFrom::BatchFused`] (`X-MapRat-Cache: batch`).
    pub fn explain_batch(
        &self,
        requests: &[ExplainRequest],
        budget: &Budget,
    ) -> Vec<(Arc<Result<ExplorationResult, MineError>>, ServedFrom)> {
        let _guard = ForegroundGuard::enter(&self.inner.foreground);
        self.batch_inner(requests, budget, ApproxMode::default())
    }

    /// Background batch warm used by the precompute scheduler: fuses the
    /// cube builds of every request not already resident in the result
    /// tier. Like [`MapRatEngine::warm`], it does not count as
    /// foreground traffic. Returns how many requests were warmed.
    pub fn warm_batch(&self, requests: &[ExplainRequest]) -> usize {
        let missing: Vec<ExplainRequest> = requests
            .iter()
            .filter(|r| !self.inner.results.contains(r))
            .cloned()
            .collect();
        if missing.is_empty() {
            return 0;
        }
        let _ = self.batch_inner(&missing, &Budget::unlimited(), ApproxMode::default());
        missing.len()
    }

    /// Batch serving body: result-tier probes, in-batch dedup, fused
    /// groups, standalone fallback.
    fn batch_inner(
        &self,
        requests: &[ExplainRequest],
        budget: &Budget,
        mode: ApproxMode,
    ) -> Vec<(CachedResult, ServedFrom)> {
        let mut slots: Vec<Option<(CachedResult, ServedFrom)>> =
            requests.iter().map(|_| None).collect();
        // In-batch coalescing: duplicates share the first occurrence's
        // solve, mirroring what the flight group does across threads.
        let mut first_of: HashMap<&ExplainRequest, usize> = HashMap::new();
        let mut dupes: Vec<(usize, usize)> = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            match first_of.entry(request) {
                std::collections::hash_map::Entry::Occupied(e) => dupes.push((i, *e.get())),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i);
                }
            }
        }

        // Result-tier probes first: a batch of warm requests never mines.
        for (i, request) in requests.iter().enumerate() {
            if dupes.iter().any(|&(d, _)| d == i) {
                continue;
            }
            if let Some(hit) = self.inner.results.get(request) {
                if let Some(served) = self.classify_hit_mode(&hit, mode) {
                    slots[i] = Some((hit, served));
                }
            }
        }

        let dataset = self.dataset();
        // If the policy may answer any of these universes with a sample,
        // the fused exact build would change semantics — route through
        // the standalone path, which owns the approximate pipeline.
        let approx_may_engage = mode != ApproxMode::Off
            && self
                .inner
                .approx
                .should_sample(mode, dataset.ratings().len());

        // Partition the misses: fused groups keyed by cube-build options
        // (first-seen order, so processing is deterministic), the rest
        // standalone.
        let mut fused: Vec<((usize, bool, usize), Vec<usize>)> = Vec::new();
        let mut standalone: Vec<usize> = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            if slots[i].is_some() || dupes.iter().any(|&(d, _)| d == i) {
                continue;
            }
            let fusable = !approx_may_engage
                && request.query.time.is_unrestricted()
                && request.settings.validate().is_ok()
                && self
                    .inner
                    .snapshots
                    .peek(&SnapshotKey::of(request))
                    .is_none();
            if !fusable {
                standalone.push(i);
                continue;
            }
            let options = (
                request.settings.min_support,
                request.settings.require_geo,
                request.settings.max_arity,
            );
            match fused.iter_mut().find(|(o, _)| *o == options) {
                Some((_, members)) => members.push(i),
                None => fused.push((options, vec![i])),
            }
        }

        for (_, group) in fused {
            // A group of one shares nothing; the standalone path also
            // owns coalescing with concurrent foreground flights.
            if group.len() < 2 {
                standalone.extend(group);
                continue;
            }
            let leftover = self.solve_fused_group(requests, &group, budget, &dataset, &mut slots);
            standalone.extend(leftover);
        }

        for i in standalone {
            let (result, served) = self.lookup_or_solve(&requests[i], budget, mode);
            // Approx bookkeeping parity with `explain_opts`.
            if matches!(&*result, Ok(r) if r.approx.is_some()) {
                self.inner.approx_served.fetch_add(1, Ordering::Relaxed);
                if self.inner.approx.refine {
                    self.schedule_refine(&requests[i]);
                }
            }
            slots[i] = Some((result, served));
        }

        for (i, first) in dupes {
            let (result, _) = slots[first].clone().expect("first occurrence was served");
            slots[i] = Some((result, ServedFrom::Coalesced));
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every batch slot is served"))
            .collect()
    }

    /// Solves one fused batch group: one combined cube build over the
    /// union of the group's items, then a derive + solve per member,
    /// fanned out over the worker pool ([`parallel::parallel_map`]).
    /// Returns the members it could not serve (routed standalone by the
    /// caller). Per-member snapshot/result caching matches
    /// [`MapRatEngine::solve_and_cache`]'s rules exactly.
    fn solve_fused_group(
        &self,
        requests: &[ExplainRequest],
        group: &[usize],
        budget: &Budget,
        dataset: &Arc<Dataset>,
        slots: &mut [Option<(CachedResult, ServedFrom)>],
    ) -> Vec<usize> {
        let mut leftover: Vec<usize> = Vec::new();
        let mut members: Vec<(usize, Vec<ItemId>)> = Vec::new();
        for &i in group {
            let items = requests[i].query.items(dataset);
            if items.is_empty() {
                // The standalone path produces (and negative-caches) the
                // proper NoMatchingItems error for this query.
                leftover.push(i);
                continue;
            }
            members.push((i, items));
        }
        if members.len() < 2 {
            leftover.extend(members.into_iter().map(|(i, _)| i));
            return leftover;
        }
        let settings = &requests[members[0].0].settings;
        let options = CubeOptions {
            min_support: settings.min_support,
            require_geo: settings.require_geo,
            max_arity: settings.max_arity,
        };
        let combined_universe = CombinedUniverse::over(
            dataset,
            members.iter().flat_map(|(_, it)| it.iter().copied()),
        );
        // One shared build — the whole point of the fused path. A panic
        // here (chaos injection, builder bug) degrades the entire group
        // to the standalone path, which contains panics per request.
        let combined = match catch_unwind(AssertUnwindSafe(|| {
            RatingCube::build(
                dataset,
                combined_universe.rating_indexes().to_vec(),
                options,
            )
        })) {
            Ok(cube) => cube,
            Err(_) => {
                leftover.extend(members.into_iter().map(|(i, _)| i));
                return leftover;
            }
        };
        // Members derive and solve independently from the shared build, so
        // fan them out over the worker pool (the same idiom as the parallel
        // time-slider sweep): each slot's value depends only on its member,
        // never on scheduling, so the batch stays bit-identical for any
        // `MAPRAT_THREADS`. Cache writes and counters happen afterwards in
        // member order so eviction order matches the sequential story.
        let solved = parallel::parallel_map(members.len(), parallel::num_threads(), |m| {
            let (i, items) = &members[m];
            let request = &requests[*i];
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                maprat_faults::maybe_panic("solver.panic");
                let (rating_idx, segments) = combined_universe
                    .query_segments(items)
                    .expect("batch member items are in the union");
                if rating_idx.is_empty() {
                    return (None, Err(MineError::NoRatings));
                }
                let cube = derive_cube(dataset, &combined, &segments, rating_idx);
                if cube.is_empty() {
                    return (None, Err(MineError::NoCandidates));
                }
                let miner = Miner::new(dataset);
                let result = miner
                    .explain_cube_budget(
                        &request.query,
                        items.clone(),
                        &cube,
                        &request.settings,
                        budget,
                    )
                    .map(|explanation| ExplorationResult {
                        explanation,
                        cube: cube.clone(),
                        items: items.clone(),
                        dataset: Arc::clone(dataset),
                        approx: None,
                    });
                (Some(cube), result)
            }));
            match outcome {
                Ok(solved) => solved,
                Err(payload) => {
                    let what = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    (
                        None,
                        Err(MineError::Internal(format!("batch solve panicked: {what}"))),
                    )
                }
            }
        });
        for ((i, items), (derived, result)) in members.into_iter().zip(solved) {
            let request = &requests[i];
            if let Some(cube) = derived {
                // The derived cube is bit-identical to a standalone build,
                // so it is a valid (budget-independent) snapshot — kept
                // even when the solve itself errored (e.g. on deadline).
                self.inner.snapshots.put(
                    SnapshotKey::of(request),
                    CubeSnapshot {
                        items,
                        cube,
                        dataset: Arc::clone(dataset),
                    },
                );
            }
            self.inner.solves.fetch_add(1, Ordering::Relaxed);
            let cached = match &result {
                Err(MineError::DeadlineExceeded) => {
                    self.inner.deadline_expired.fetch_add(1, Ordering::Relaxed);
                    Arc::new(result)
                }
                Err(MineError::Internal(_)) => Arc::new(result),
                _ => self.inner.results.put(request.clone(), result),
            };
            slots[i] = Some((cached, ServedFrom::BatchFused));
        }
        leftover
    }

    /// Labels a result-tier hit: `hit` normally, `hit-preingest` when
    /// the entry was mined from a dataset snapshot a later ingest commit
    /// superseded (it survived the scoped swap because its partition was
    /// untouched). Also bumps the result tier's stale-hit counter.
    fn classify_hit(&self, hit: &CachedResult) -> ServedFrom {
        if let Ok(r) = &**hit {
            if !Arc::ptr_eq(&r.dataset, &read_lock(&self.inner.dataset)) {
                self.inner.results.stats().stale_hit();
                return ServedFrom::PreIngestCache;
            }
        }
        ServedFrom::ResultCache
    }

    /// Mode-aware hit classification: an approximate entry serves as
    /// `hit-approx` — unless the caller demanded `approx=off`, in which
    /// case the hit is treated as a miss (`None`) and the exact solve
    /// upgrades the entry.
    fn classify_hit_mode(&self, hit: &CachedResult, mode: ApproxMode) -> Option<ServedFrom> {
        if let Ok(r) = &**hit {
            if r.approx.is_some() {
                return match mode {
                    ApproxMode::Off => None,
                    _ => Some(ServedFrom::ApproxCache),
                };
            }
        }
        Some(self.classify_hit(hit))
    }

    fn lookup_or_solve(
        &self,
        request: &ExplainRequest,
        budget: &Budget,
        mode: ApproxMode,
    ) -> (CachedResult, ServedFrom) {
        if let Some(hit) = self.inner.results.get(request) {
            if let Some(served) = self.classify_hit_mode(&hit, mode) {
                return (hit, served);
            }
        }
        let outcome =
            self.inner
                .flights
                .run_bounded((request.clone(), mode.class()), FLIGHT_WAIT, || {
                    // Re-check after winning leadership: the previous leader may
                    // have published and retired its flight between our miss and
                    // our registration. `peek` — the miss was already recorded.
                    match self
                        .inner
                        .results
                        .peek(request)
                        .and_then(|hit| self.classify_hit_mode(&hit, mode).map(|s| (hit, s)))
                    {
                        Some((hit, served)) => (hit, served),
                        None => self.solve_and_cache(request, budget, mode),
                    }
                });
        match outcome {
            Ok(FlightOutcome::Led(v)) => (Arc::clone(&v.0), v.1),
            Ok(FlightOutcome::Joined(v)) => (Arc::clone(&v.0), ServedFrom::Coalesced),
            // The leader died (its flight was abandoned) or exceeded the
            // bounded wait: followers get a structured 500-class error —
            // never a hang, never a cache entry.
            Err(e) => {
                let msg = match e {
                    FlightError::LeaderFailed => "coalesced solve leader failed".to_string(),
                    FlightError::TimedOut => {
                        format!("coalesced solve exceeded {}s wait", FLIGHT_WAIT.as_secs())
                    }
                };
                (
                    Arc::new(Err(MineError::Internal(msg))),
                    ServedFrom::Coalesced,
                )
            }
        }
    }

    /// The miss path: consult the snapshot tier (skip the cube build on a
    /// hit), mine, and populate both tiers. Deterministic errors land in
    /// the result tier (negative caching) but never in the snapshot tier;
    /// non-deterministic outcomes — an expired deadline, a solver panic —
    /// are returned uncached.
    fn solve_and_cache(
        &self,
        request: &ExplainRequest,
        budget: &Budget,
        mode: ApproxMode,
    ) -> (CachedResult, ServedFrom) {
        let key = SnapshotKey::of(request);
        // A panicking solve (bug, or the `solver.panic` chaos site) must
        // not unwind through the flight group and server thread: contain
        // it here and degrade it to a structured internal error.
        let (result, served) = match catch_unwind(AssertUnwindSafe(|| {
            maprat_faults::maybe_panic("solver.panic");
            self.mine_mode(request, budget, &key, mode)
        })) {
            Ok(pair) => pair,
            Err(payload) => {
                let what = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                (
                    Err(MineError::Internal(format!("solve panicked: {what}"))),
                    ServedFrom::Cold,
                )
            }
        };
        self.inner.solves.fetch_add(1, Ordering::Relaxed);
        match &result {
            Err(MineError::DeadlineExceeded) => {
                self.inner.deadline_expired.fetch_add(1, Ordering::Relaxed);
                (Arc::new(result), served)
            }
            Err(MineError::Internal(_)) => (Arc::new(result), served),
            _ => (self.inner.results.put(request.clone(), result), served),
        }
    }

    /// The mining work of a miss, mode-aware: try the approximate path
    /// first (it declines below the policy threshold), fall back to the
    /// exact pipeline.
    fn mine_mode(
        &self,
        request: &ExplainRequest,
        budget: &Budget,
        key: &SnapshotKey,
        mode: ApproxMode,
    ) -> (Result<ExplorationResult, MineError>, ServedFrom) {
        if let Some(pair) = self.mine_approx(request, budget, mode) {
            return pair;
        }
        self.mine(request, budget, key)
    }

    /// The approximate miss path: stratified-sample `R_I`, build the cube
    /// over the sample, solve, and attach the error contract. Returns
    /// `None` when the approximate path declines (mode off, universe
    /// below the policy threshold, degenerate sample, or no surviving
    /// candidates) — the caller then runs the exact pipeline.
    ///
    /// Deliberately bypasses the snapshot tier in both directions: a
    /// sampled cube must never be stored where exact re-solves would read
    /// it, and an exact snapshot would defeat the point of sampling.
    fn mine_approx(
        &self,
        request: &ExplainRequest,
        budget: &Budget,
        mode: ApproxMode,
    ) -> Option<(Result<ExplorationResult, MineError>, ServedFrom)> {
        if mode == ApproxMode::Off {
            return None;
        }
        let policy = self.inner.approx;
        let dataset = self.dataset();
        // Cheap pre-gate on the whole rating column: `|R_I|` can't exceed
        // it, so below-threshold datasets skip universe collection (which
        // the exact path would otherwise repeat).
        if mode != ApproxMode::Force && !policy.should_sample(mode, dataset.ratings().len()) {
            return None;
        }
        let miner = Miner::new(&dataset);
        // The census memo serves `(items, R_I, census)` for repeated
        // sampled explains of one query; a hit skips the universe
        // collection *and* the sampler's full census pass. Entries are
        // pinned to the dataset they were collected from, so a hot-swap
        // race can never serve shifted positions. Settings validation
        // (which `collect_universe` would otherwise perform) stays on
        // the hit path too.
        if let Err(e) = request.settings.validate() {
            return Some((Err(e), ServedFrom::Cold));
        }
        let census_key = CensusKey::of(&request.query, policy.sample_frac);
        let entry = match self
            .inner
            .censuses
            .get(&census_key)
            .filter(|e| Arc::ptr_eq(&e.dataset, &dataset))
        {
            Some(entry) => entry,
            None => {
                let (items, universe) =
                    match miner.collect_universe(&request.query, &request.settings) {
                        Ok(pair) => pair,
                        // Validation and empty-universe errors are
                        // deterministic and identical to what the exact path
                        // would produce; surface them here rather than
                        // re-collecting.
                        Err(e) => return Some((Err(e), ServedFrom::Cold)),
                    };
                let census = StratumCensus::over(&dataset, &universe);
                self.inner.censuses.put(
                    census_key,
                    CensusEntry {
                        items,
                        universe,
                        census,
                        dataset: Arc::clone(&dataset),
                    },
                )
            }
        };
        let (items, universe) = (entry.items.clone(), &entry.universe);
        if !policy.should_sample(mode, universe.len()) {
            self.inner.approx_fallback.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let threads = maprat_pool::num_threads();
        let sampler = StratifiedSampler::new(policy.sample_frac, request.settings.rhe.seed);
        let sample = sampler.sample_with_census(&dataset, universe, &entry.census, threads);
        if sample.is_exhaustive() {
            // The sample *is* the universe (tiny strata everywhere):
            // approximation would just be the exact answer with extra
            // bookkeeping. Let the exact path cache its snapshot.
            self.inner.approx_fallback.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        // Scale min-support to the achieved fraction so a group needs the
        // same *population* support to survive candidate generation as it
        // would under the exact cube.
        let min_support = ((request.settings.min_support as f64) * sample.achieved_frac())
            .round()
            .max(1.0) as usize;
        let cube = RatingCube::build(
            &dataset,
            sample.rating_idx.clone(),
            CubeOptions {
                min_support,
                require_geo: request.settings.require_geo,
                max_arity: request.settings.max_arity,
            },
        );
        if cube.is_empty() {
            self.inner.approx_fallback.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let result = miner
            .explain_cube_budget(
                &request.query,
                items.clone(),
                &cube,
                &request.settings,
                budget,
            )
            .map(|mut explanation| {
                // Bounds come from the paired validation sample so the
                // solver's group selection cannot bias them. It shares
                // the memoized census — same fraction, different phases.
                let validation = sampler.validation().sample_with_census(
                    &dataset,
                    universe,
                    &entry.census,
                    threads,
                );
                let info =
                    ApproxInfo::for_explanation(&dataset, &explanation, &sample, &validation);
                // Report the *population* size: "N ratings explained" must
                // mean R_I, not the sample.
                explanation.num_ratings = sample.population;
                ExplorationResult {
                    explanation,
                    cube,
                    items,
                    dataset: Arc::clone(&dataset),
                    approx: Some(info),
                }
            });
        Some((result, ServedFrom::Cold))
    }

    /// Folds the request fingerprint to the refinement ledger's key width.
    fn refine_key(request: &ExplainRequest) -> u64 {
        let fp = request.fingerprint().as_u128();
        (fp >> 64) as u64 ^ fp as u64
    }

    /// Schedules the background exact re-solve of an approximate entry on
    /// an idle pool worker. At most one refinement per request is ever in
    /// flight (the ledger deduplicates), so a hot approximate entry served
    /// thousands of times costs one exact solve.
    fn schedule_refine(&self, request: &ExplainRequest) {
        let key = Self::refine_key(request);
        if !self.inner.refines.begin(key) {
            return;
        }
        let engine = self.clone();
        let request = request.clone();
        maprat_pool::global().spawn(move || {
            let _ = engine.run_refine(&request, key);
        });
    }

    /// Synchronously refines an approximate cache entry to exact (the
    /// same work [`MapRatEngine::explain_opts`] schedules in the
    /// background). Returns whether an upgrade landed — `false` when the
    /// entry is absent, already exact, superseded by a dataset swap, or a
    /// refinement is already in flight. Tests and drain paths use this to
    /// observe the upgrade without sleeping.
    pub fn refine_now(&self, request: &ExplainRequest) -> bool {
        let key = Self::refine_key(request);
        if !self.inner.refines.begin(key) {
            return false;
        }
        self.run_refine(request, key)
    }

    /// Body of a claimed refinement: runs the exact solve, publishes on
    /// success, and always releases the ledger claim — even on panic.
    fn run_refine(&self, request: &ExplainRequest, key: u64) -> bool {
        match catch_unwind(AssertUnwindSafe(|| self.refine_exact(request))) {
            Ok(true) => {
                self.inner.refines.finish(key);
                true
            }
            Ok(false) => {
                self.inner.refines.abandon(key);
                false
            }
            Err(_) => {
                self.inner.refines.abandon(key);
                false
            }
        }
    }

    /// Runs the exact pipeline for `request` and atomically replaces the
    /// approximate cache entry (`hit-approx` → `hit`). The swap is an
    /// `Arc` pointer publish — a concurrent reader sees either the full
    /// sampled result or the full exact one, never a torn mix. Publishes
    /// only when the entry is still approximate *and* still pinned to the
    /// current dataset: a hot-swap or scoped invalidation between solve
    /// and publish must win.
    fn refine_exact(&self, request: &ExplainRequest) -> bool {
        let still_approx = || {
            matches!(
                self.inner.results.peek(request).as_deref(),
                Some(Ok(r)) if r.approx.is_some()
            )
        };
        if !still_approx() {
            return false;
        }
        let key = SnapshotKey::of(request);
        let (result, _) = self.mine(request, &Budget::unlimited(), &key);
        self.inner.solves.fetch_add(1, Ordering::Relaxed);
        match result {
            Ok(res) => {
                if !Arc::ptr_eq(&res.dataset, &read_lock(&self.inner.dataset)) {
                    return false;
                }
                if !still_approx() {
                    return false;
                }
                self.inner.results.put(request.clone(), Ok(res));
                true
            }
            Err(_) => false,
        }
    }

    /// [`Miner::collect_universe`] short-circuited through the census
    /// memo: the background refinement of a sampled entry (and any exact
    /// cold solve of a census-memoized query) reuses the memoized
    /// `(items, R_I)` instead of re-collecting the universe. Falls
    /// through to the miner when no entry is pinned to the current
    /// dataset. Semantically identical either way — the universe is a
    /// pure function of (dataset, query), and entries pin their dataset.
    fn collect_reusing_census(
        &self,
        miner: &Miner,
        dataset: &Arc<Dataset>,
        request: &ExplainRequest,
    ) -> Result<(Vec<ItemId>, Vec<u32>), MineError> {
        request.settings.validate()?;
        let key = CensusKey::of(&request.query, self.inner.approx.sample_frac);
        if let Some(entry) = self.inner.censuses.peek(&key) {
            if Arc::ptr_eq(&entry.dataset, dataset) {
                return Ok((entry.items.clone(), entry.universe.clone()));
            }
        }
        miner.collect_universe(&request.query, &request.settings)
    }

    /// The actual mining work of a miss: snapshot-tier lookup, cube
    /// build, budgeted solve.
    fn mine(
        &self,
        request: &ExplainRequest,
        budget: &Budget,
        key: &SnapshotKey,
    ) -> (Result<ExplorationResult, MineError>, ServedFrom) {
        match self.inner.snapshots.get(key) {
            Some(snap) => {
                // Re-solve against the snapshot's *pinned* dataset: the
                // cube's positions index that snapshot's rating column,
                // which an ingest commit may have since re-spliced.
                let miner = Miner::new(&snap.dataset);
                let result = miner
                    .explain_cube_budget(
                        &request.query,
                        snap.items.clone(),
                        &snap.cube,
                        &request.settings,
                        budget,
                    )
                    .map(|explanation| ExplorationResult {
                        explanation,
                        cube: snap.cube.clone(),
                        items: snap.items.clone(),
                        dataset: Arc::clone(&snap.dataset),
                        approx: None,
                    });
                (result, ServedFrom::SnapshotCache)
            }
            None => {
                let dataset = self.dataset();
                let miner = Miner::new(&dataset);
                let result = self
                    .collect_reusing_census(&miner, &dataset, request)
                    .and_then(|(items, rating_idx)| {
                        let cube = RatingCube::build(
                            &dataset,
                            rating_idx,
                            CubeOptions {
                                min_support: request.settings.min_support,
                                require_geo: request.settings.require_geo,
                                max_arity: request.settings.max_arity,
                            },
                        );
                        if cube.is_empty() {
                            return Err(MineError::NoCandidates);
                        }
                        Ok((items, cube))
                    })
                    .and_then(|(items, cube)| {
                        self.inner.snapshots.put(
                            key.clone(),
                            CubeSnapshot {
                                items: items.clone(),
                                cube: cube.clone(),
                                dataset: Arc::clone(&dataset),
                            },
                        );
                        let explanation = miner.explain_cube_budget(
                            &request.query,
                            items.clone(),
                            &cube,
                            &request.settings,
                            budget,
                        )?;
                        Ok(ExplorationResult {
                            explanation,
                            cube,
                            items,
                            dataset: Arc::clone(&dataset),
                            approx: None,
                        })
                    });
                (result, ServedFrom::Cold)
            }
        }
    }

    /// Convenience: explains a query/settings pair.
    pub fn explain_query(
        &self,
        query: &ItemQuery,
        settings: &SearchSettings,
    ) -> Arc<Result<ExplorationResult, MineError>> {
        self.explain(&ExplainRequest::new(query.clone(), settings.clone()))
    }

    /// Pre-computes explanations for the `n` most-rated items (the paper's
    /// "aggressive … result pre-computation": popular movies answer at
    /// cache latency from the first request).
    ///
    /// Returns the number of items successfully pre-computed.
    pub fn precompute_popular(&self, n: usize, settings: &SearchSettings) -> usize {
        let dataset = self.dataset();
        let mut by_count: Vec<(usize, ItemId)> = dataset
            .items()
            .iter()
            .map(|it| (dataset.ratings_for_item(it.id).len(), it.id))
            .collect();
        by_count.sort_by_key(|&(n, id)| (std::cmp::Reverse(n), id));
        let mut ok = 0;
        for &(_, item) in by_count.iter().take(n) {
            let query = ItemQuery::title(&dataset.item(item).title);
            if self.explain_query(&query, settings).is_ok() {
                ok += 1;
            }
        }
        ok
    }

    /// Drops both cache tiers (settings sweep, benchmarking, …). For
    /// dataset changes prefer [`MapRatEngine::swap_dataset`], which
    /// clears and swaps atomically enough for serving.
    pub fn clear_cache(&self) {
        self.inner.results.clear();
        self.inner.snapshots.clear();
        self.inner.censuses.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maprat_data::synth::{generate, SynthConfig};

    fn engine() -> MapRatEngine {
        MapRatEngine::from_dataset(generate(&SynthConfig::tiny(111)).unwrap())
    }

    fn settings() -> SearchSettings {
        SearchSettings::default()
            .with_min_coverage(0.1)
            .with_require_geo(false)
    }

    #[test]
    fn repeated_queries_hit_cache() {
        let engine = engine();
        let q = ItemQuery::title("Toy Story");
        let s = settings();
        let first = engine.explain_query(&q, &s);
        assert!(first.is_ok());
        let misses_after_first = engine.cache_stats().misses();
        let second = engine.explain_query(&q, &s);
        assert!(second.is_ok());
        assert_eq!(
            engine.cache_stats().misses(),
            misses_after_first,
            "second query must not miss"
        );
        assert!(engine.cache_stats().hits() >= 1);
        assert!(Arc::ptr_eq(&first, &second), "same cached value");
    }

    #[test]
    fn clones_share_dataset_and_cache() {
        let engine = engine();
        let clone = engine.clone();
        assert!(Arc::ptr_eq(&engine.dataset(), &clone.dataset()));
        let q = ItemQuery::title("Toy Story");
        let s = settings();
        let via_original = engine.explain_query(&q, &s);
        let via_clone = clone.explain_query(&q, &s);
        assert!(
            Arc::ptr_eq(&via_original, &via_clone),
            "clone must serve from the shared cache"
        );
        assert!(clone.cache_stats().hits() >= 1);
    }

    #[test]
    fn settings_change_invalidates_key() {
        let engine = engine();
        let q = ItemQuery::title("Toy Story");
        let a = engine.explain_query(&q, &settings());
        let b = engine.explain_query(&q, &settings().with_max_groups(2));
        assert!(
            !Arc::ptr_eq(&a, &b),
            "different settings → different entries"
        );
    }

    #[test]
    fn errors_are_cached_too() {
        let engine = engine();
        let q = ItemQuery::title("No Such Movie");
        let r = engine.explain_query(&q, &settings());
        assert!(matches!(&*r, Err(MineError::NoMatchingItems(_))));
        let _ = engine.explain_query(&q, &settings());
        assert!(engine.cache_stats().hits() >= 1, "negative caching");
    }

    #[test]
    fn precompute_warms_cache() {
        let engine = engine();
        let s = settings();
        let warmed = engine.precompute_popular(3, &s);
        assert!(warmed >= 1);
        let misses_before = engine.cache_stats().misses();
        // The most-rated item is planted Toy Story at tiny scale; query it.
        let dataset = engine.dataset();
        let top = dataset
            .items()
            .iter()
            .max_by_key(|it| dataset.ratings_for_item(it.id).len())
            .unwrap()
            .title
            .clone();
        let _ = engine.explain_query(&ItemQuery::title(&top), &s);
        assert_eq!(engine.cache_stats().misses(), misses_before);
    }

    #[test]
    fn clear_cache_forces_recompute() {
        let engine = engine();
        let q = ItemQuery::title("Toy Story");
        let s = settings();
        let _ = engine.explain_query(&q, &s);
        engine.clear_cache();
        let misses_before = engine.cache_stats().misses();
        let _ = engine.explain_query(&q, &s);
        assert_eq!(engine.cache_stats().misses(), misses_before + 1);
    }

    #[test]
    fn explain_traced_reports_tiers() {
        let engine = engine();
        let q = ItemQuery::title("Toy Story");
        let (r, served) = engine.explain_traced(&ExplainRequest::new(q.clone(), settings()));
        assert!(r.is_ok());
        assert_eq!(served, ServedFrom::Cold, "first request builds the cube");
        let (_, served) = engine.explain_traced(&ExplainRequest::new(q.clone(), settings()));
        assert_eq!(served, ServedFrom::ResultCache, "repeat is a result hit");
        // Same query, different solver budget: the cube-build inputs are
        // unchanged, so only the solve re-runs.
        let (r, served) =
            engine.explain_traced(&ExplainRequest::new(q, settings().with_max_groups(2)));
        assert!(r.is_ok());
        assert_eq!(served, ServedFrom::SnapshotCache, "snapshot tier hit");
        assert!(engine.snapshot_stats().hits() >= 1);
    }

    #[test]
    fn snapshot_tier_survives_result_eviction() {
        // A result tier of 1 entry per shard churns constantly; the
        // snapshot tier keeps absorbing the cube build anyway.
        let engine = MapRatEngine::with_cache_size(
            Arc::new(generate(&SynthConfig::tiny(111)).unwrap()),
            1,
            1,
        );
        let q = ItemQuery::title("Toy Story");
        for k in 1..=4 {
            let _ = engine.explain_query(&q, &settings().with_max_groups(k));
        }
        let stats = engine.serving_stats();
        assert_eq!(stats.snapshot_misses, 1, "cube built exactly once");
        assert_eq!(stats.snapshot_hits, 3, "later budgets reuse the cube");
    }

    #[test]
    fn concurrent_identical_cold_explains_solve_once() {
        // The coalescing acceptance test: N identical cold explains in
        // flight at once run exactly one solve between them.
        let engine = engine();
        let request = ExplainRequest::new(ItemQuery::title("Toy Story"), settings());
        let barrier = std::sync::Barrier::new(8);
        let results: Vec<(Arc<Result<ExplorationResult, MineError>>, ServedFrom)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..8)
                    .map(|_| {
                        let (engine, request, barrier) = (engine.clone(), &request, &barrier);
                        scope.spawn(move || {
                            barrier.wait();
                            engine.explain_traced(request)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
        assert_eq!(engine.solve_count(), 1, "exactly one solve ran");
        let first = &results[0].0;
        for (r, _) in &results {
            assert!(r.is_ok());
            assert!(Arc::ptr_eq(first, r), "all callers share one result");
        }
        let stats = engine.serving_stats();
        // Every caller either led the flight, joined it, or arrived
        // after the leader published and hit the result tier directly.
        assert!(stats.flights_led >= 1, "someone led the solve");
        assert_eq!(
            stats.flights_led + stats.flights_joined + stats.result_hits,
            8,
            "all 8 callers accounted for: {stats:?}"
        );
    }

    #[test]
    fn swap_dataset_invalidates_everything() {
        let engine = engine();
        let q = ItemQuery::title("Toy Story");
        let before = engine.explain_query(&q, &settings());
        assert!(before.is_ok());
        engine.swap_dataset(Arc::new(generate(&SynthConfig::tiny(222)).unwrap()));
        assert_eq!(engine.cache_len(), 0);
        let (after, served) = engine.explain_traced(&ExplainRequest::new(q, settings()));
        assert_eq!(served, ServedFrom::Cold, "both tiers were dropped");
        assert!(
            !Arc::ptr_eq(&before, &after),
            "new dataset recomputes from scratch"
        );
    }

    #[test]
    fn scoped_swap_drops_only_touched_partitions() {
        let engine = engine();
        let dataset = engine.dataset();
        let toy = engine.explain_query(&ItemQuery::title("Toy Story"), &settings());
        let toy_items = match &*toy {
            Ok(r) => r.items.clone(),
            Err(e) => panic!("warm-up failed: {e:?}"),
        };
        // A second cached entry over disjoint items (planted titles are
        // stable at tiny scale; find one not in Toy Story's match set).
        let other_title = dataset
            .items()
            .iter()
            .find(|it| {
                !toy_items.contains(&it.id)
                    && engine
                        .explain_query(&ItemQuery::title(&it.title), &settings())
                        .is_ok()
            })
            .map(|it| it.title.clone())
            .expect("tiny dataset has a disjoint explainable item");
        let dropped = engine.swap_dataset_scoped(Arc::clone(&dataset), &toy_items);
        assert!(dropped >= 2, "Toy Story result + snapshot dropped");
        let (_, served) = engine.explain_traced(&ExplainRequest::new(
            ItemQuery::title(&other_title),
            settings(),
        ));
        assert_eq!(
            served,
            ServedFrom::ResultCache,
            "untouched partition survives the scoped swap"
        );
        let (_, served) = engine.explain_traced(&ExplainRequest::new(
            ItemQuery::title("Toy Story"),
            settings(),
        ));
        assert_eq!(served, ServedFrom::Cold, "touched partition recomputes");
    }

    #[test]
    fn scoped_swap_labels_retained_hits_preingest() {
        // An ingest commit that leaves a cached entry's partition
        // untouched keeps the entry serving, but the hit is labeled as
        // coming from the pre-ingest snapshot.
        let engine = engine();
        let q = ItemQuery::title("Toy Story");
        let s = settings();
        assert!(engine.explain_query(&q, &s).is_ok());
        let appended = engine
            .dataset()
            .with_appended(maprat_data::AppendBatch::new())
            .unwrap();
        engine.swap_dataset_scoped(Arc::new(appended.dataset), &[]);
        let (r, served) = engine.explain_traced(&ExplainRequest::new(q, s));
        assert!(r.is_ok());
        assert_eq!(served, ServedFrom::PreIngestCache);
        assert_eq!(served.as_str(), "hit-preingest");
        assert!(engine.cache_stats().stale_hits() >= 1);
        if let Ok(result) = &*r {
            assert!(
                !Arc::ptr_eq(&result.dataset, &engine.dataset()),
                "the served result pins the pre-ingest snapshot"
            );
        }
    }

    #[test]
    fn hot_swap_under_load_drops_no_requests() {
        // Explains hammer the engine while the dataset is swapped
        // repeatedly; every request completes against a coherent dataset.
        let engine = engine();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let (engine, stop) = (engine.clone(), &stop);
                scope.spawn(move || {
                    let mut served = 0u32;
                    while !stop.load(Ordering::SeqCst) {
                        let q = ItemQuery::title("Toy Story");
                        let s = settings().with_max_groups(1 + (served as usize + t) % 3);
                        let r = engine.explain_query(&q, &s);
                        assert!(r.is_ok(), "in-flight request dropped: {:?}", r);
                        served += 1;
                    }
                    assert!(served > 0);
                });
            }
            for seed in [311, 312, 313] {
                engine.swap_dataset(Arc::new(generate(&SynthConfig::tiny(seed)).unwrap()));
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            stop.store(true, Ordering::SeqCst);
        });
    }

    #[test]
    fn warm_is_idempotent_and_background() {
        let engine = engine();
        let request = ExplainRequest::new(ItemQuery::title("Toy Story"), settings());
        assert_eq!(engine.foreground_inflight(), 0);
        assert!(engine.warm(&request), "cold warm does work");
        assert!(!engine.warm(&request), "second warm is a no-op");
        let (_, served) = engine.explain_traced(&request);
        assert_eq!(served, ServedFrom::ResultCache, "foreground rides the warm");
        assert_eq!(engine.foreground_inflight(), 0, "warm is not foreground");
    }

    #[test]
    fn expired_deadline_is_structured_and_never_cached() {
        let engine = engine();
        let request = ExplainRequest::new(ItemQuery::title("Toy Story"), settings());
        let expired = Budget::with_deadline(Duration::ZERO);
        let (r, _) = engine.explain_deadline(&request, &expired);
        assert!(matches!(&*r, Err(MineError::DeadlineExceeded)));
        assert_eq!(engine.serving_stats().deadline_expired, 1);
        assert!(
            !engine.cached(&request),
            "an expired solve must not poison the cache"
        );
        // A retry with time succeeds. The *result* wasn't cached, but the
        // cube snapshot was (it is deterministic and budget-independent),
        // so the retry pays only the solve.
        let (r, served) = engine.explain_traced(&request);
        assert!(r.is_ok());
        assert_eq!(served, ServedFrom::SnapshotCache);
        // Once cached, even an expired budget serves the hit: a deadline
        // gates solving, never cache lookups.
        let (r, served) = engine.explain_deadline(&request, &expired);
        assert!(r.is_ok());
        assert_eq!(served, ServedFrom::ResultCache);
        assert_eq!(engine.serving_stats().deadline_expired, 1);
    }

    #[test]
    fn generous_deadline_matches_unbudgeted_solve() {
        let engine = engine();
        let q = ItemQuery::title("Toy Story");
        let request = ExplainRequest::new(q, settings());
        let (budgeted, _) = engine.explain_deadline(&request, &Budget::from_deadline_ms(120_000));
        engine.clear_cache();
        let (plain, _) = engine.explain_traced(&request);
        match (&*budgeted, &*plain) {
            (Ok(a), Ok(b)) => {
                assert_eq!(
                    format!("{:?}", a.explanation.similarity.groups),
                    format!("{:?}", b.explanation.similarity.groups)
                );
                assert_eq!(
                    a.explanation.diversity.objective,
                    b.explanation.diversity.objective
                );
            }
            other => panic!("both solves should succeed: {other:?}"),
        }
    }

    /// A permissive policy with background refinement disabled, so tests
    /// control exactly when the upgrade happens via `refine_now`.
    fn approx_policy(min_ratings: usize) -> ApproxPolicy {
        ApproxPolicy {
            enabled: true,
            sample_frac: 0.1,
            min_ratings,
            refine: false,
        }
    }

    fn approx_engine(min_ratings: usize) -> MapRatEngine {
        MapRatEngine::with_approx_policy(
            Arc::new(generate(&SynthConfig::tiny(111)).unwrap()),
            approx_policy(min_ratings),
        )
    }

    #[test]
    fn forced_approx_serves_bounds_and_hit_approx() {
        let engine = approx_engine(usize::MAX); // auto would never sample
        let request = ExplainRequest::new(ItemQuery::title("Toy Story"), settings());
        let (r, served) = engine.explain_opts(&request, &Budget::unlimited(), ApproxMode::Force);
        assert_eq!(served, ServedFrom::Cold, "first forced request solves");
        let result = match &*r {
            Ok(result) => result,
            Err(e) => panic!("forced approx failed: {e:?}"),
        };
        let info = result.approx.as_ref().expect("carries the contract");
        assert!(
            info.sampled < info.population,
            "a real sample, not a census"
        );
        assert!(info.achieved_frac < 1.0 && info.achieved_frac > 0.0);
        assert!(info.strata >= 1);
        for bound in info.similarity.groups.iter().chain(&info.diversity.groups) {
            assert!(bound.mean_lo <= bound.mean && bound.mean <= bound.mean_hi);
            assert!(bound.exact_support >= bound.sampled_support);
        }
        assert_eq!(
            result.explanation.num_ratings, info.population as usize,
            "reported |R_I| is the population, not the sample"
        );
        // A repeat under any sampling-tolerant mode is an approx hit.
        let (r2, served) = engine.explain_opts(&request, &Budget::unlimited(), ApproxMode::Auto);
        assert_eq!(served, ServedFrom::ApproxCache);
        assert_eq!(served.as_str(), "hit-approx");
        assert!(Arc::ptr_eq(&r, &r2), "hit shares the cached entry");
        let stats = engine.serving_stats();
        assert_eq!(stats.approx_served, 2, "cold serve + approx hit");
        assert_eq!(stats.approx_refined, 0, "refinement was disabled");
    }

    #[test]
    fn auto_mode_below_threshold_stays_exact() {
        // Threshold above the whole rating column: the pre-gate declines
        // before even collecting the universe — no fallback counted.
        let engine = approx_engine(usize::MAX);
        let request = ExplainRequest::new(ItemQuery::title("Toy Story"), settings());
        let (r, served) = engine.explain_opts(&request, &Budget::unlimited(), ApproxMode::Auto);
        assert!(r.is_ok());
        assert_eq!(served, ServedFrom::Cold);
        assert!(matches!(&*r, Ok(result) if result.approx.is_none()));
        let stats = engine.serving_stats();
        assert_eq!(stats.approx_served, 0);
        assert_eq!(stats.approx_fallback_exact, 0, "pre-gate is not a fallback");
    }

    #[test]
    fn auto_fallback_counts_consulted_but_declined() {
        // Threshold between |R_I| and the whole rating column: the
        // pre-gate passes, the universe is collected, and the policy then
        // declines — that consultation is what the fallback counter means.
        let engine = engine();
        let dataset = engine.dataset();
        let universe = ItemQuery::title("Toy Story").rating_indexes(&dataset);
        let total = dataset.ratings().len();
        assert!(
            universe.len() + 1 < total,
            "tiny scale: one title is a strict subset of all ratings"
        );
        let engine = MapRatEngine::with_approx_policy(
            Arc::clone(&dataset),
            approx_policy(universe.len() + 1),
        );
        let request = ExplainRequest::new(ItemQuery::title("Toy Story"), settings());
        let (r, served) = engine.explain_opts(&request, &Budget::unlimited(), ApproxMode::Auto);
        assert!(r.is_ok());
        assert_eq!(served, ServedFrom::Cold);
        assert!(matches!(&*r, Ok(result) if result.approx.is_none()));
        assert_eq!(engine.serving_stats().approx_fallback_exact, 1);
    }

    #[test]
    fn approx_off_upgrades_cached_approx_entry() {
        let engine = approx_engine(usize::MAX);
        let request = ExplainRequest::new(ItemQuery::title("Toy Story"), settings());
        let (approx, _) = engine.explain_opts(&request, &Budget::unlimited(), ApproxMode::Force);
        assert!(matches!(&*approx, Ok(r) if r.approx.is_some()));
        // approx=off treats the sampled entry as a miss and re-solves.
        let (exact, served) = engine.explain_opts(&request, &Budget::unlimited(), ApproxMode::Off);
        assert_eq!(served, ServedFrom::Cold, "off-mode re-solved");
        assert!(matches!(&*exact, Ok(r) if r.approx.is_none()));
        assert!(!Arc::ptr_eq(&approx, &exact));
        // The exact answer overwrote the entry: subsequent default-mode
        // requests get a plain `hit`.
        let (r, served) = engine.explain_traced(&request);
        assert_eq!(served, ServedFrom::ResultCache);
        assert!(Arc::ptr_eq(&r, &exact));
    }

    #[test]
    fn refine_now_upgrades_entry_in_place() {
        let engine = approx_engine(usize::MAX);
        let request = ExplainRequest::new(ItemQuery::title("Toy Story"), settings());
        assert!(!engine.refine_now(&request), "nothing to refine yet");
        let (approx, _) = engine.explain_opts(&request, &Budget::unlimited(), ApproxMode::Force);
        assert!(matches!(&*approx, Ok(r) if r.approx.is_some()));
        assert!(engine.refine_now(&request), "refinement lands");
        let (r, served) = engine.explain_traced(&request);
        assert_eq!(served, ServedFrom::ResultCache, "hit-approx became hit");
        assert!(matches!(&*r, Ok(result) if result.approx.is_none()));
        let stats = engine.serving_stats();
        assert_eq!(stats.approx_refined, 1);
        assert!(!engine.refine_now(&request), "already exact: no-op");
        assert_eq!(engine.serving_stats().approx_refined, 1);
    }

    #[test]
    fn background_refinement_lands_after_forced_serve() {
        // With refine enabled, serving a sampled answer schedules the
        // exact upgrade on a pool worker; poll until it lands.
        let engine = MapRatEngine::with_approx_policy(
            Arc::new(generate(&SynthConfig::tiny(111)).unwrap()),
            ApproxPolicy {
                refine: true,
                ..approx_policy(usize::MAX)
            },
        );
        let request = ExplainRequest::new(ItemQuery::title("Toy Story"), settings());
        let (r, _) = engine.explain_opts(&request, &Budget::unlimited(), ApproxMode::Force);
        assert!(matches!(&*r, Ok(result) if result.approx.is_some()));
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            if engine.serving_stats().approx_refined == 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "background refinement never landed"
            );
            std::thread::yield_now();
        }
        let (r, served) = engine.explain_traced(&request);
        assert_eq!(served, ServedFrom::ResultCache);
        assert!(matches!(&*r, Ok(result) if result.approx.is_none()));
    }

    #[test]
    fn refinement_race_never_serves_torn_or_stale_approx() {
        // Readers hammer the entry while the exact upgrade lands: every
        // response is a complete result, and once a reader observes the
        // exact answer the sampled one never reappears.
        let engine = approx_engine(usize::MAX);
        let request = ExplainRequest::new(ItemQuery::title("Toy Story"), settings());
        let (r, _) = engine.explain_opts(&request, &Budget::unlimited(), ApproxMode::Force);
        assert!(matches!(&*r, Ok(result) if result.approx.is_some()));
        let refined = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (engine, request, refined) = (engine.clone(), &request, &refined);
                scope.spawn(move || {
                    let mut seen_exact = false;
                    for _ in 0..300 {
                        let (r, served) =
                            engine.explain_opts(request, &Budget::unlimited(), ApproxMode::Auto);
                        let result = match &*r {
                            Ok(result) => result,
                            Err(e) => panic!("race produced an error: {e:?}"),
                        };
                        match &result.approx {
                            Some(info) => {
                                assert!(!seen_exact, "sampled answer resurfaced after exact");
                                assert_eq!(served, ServedFrom::ApproxCache);
                                // A complete contract, never a torn one.
                                assert!(info.sampled <= info.population);
                            }
                            None => {
                                seen_exact = true;
                                assert!(
                                    refined.load(Ordering::SeqCst),
                                    "exact served before any refinement landed"
                                );
                                assert_ne!(served, ServedFrom::ApproxCache);
                            }
                        }
                        assert!(result.explanation.num_ratings > 0);
                    }
                });
            }
            // Let readers observe the sampled entry, then upgrade it.
            std::thread::sleep(Duration::from_millis(5));
            refined.store(true, Ordering::SeqCst);
            assert!(engine.refine_now(&request));
        });
        assert_eq!(engine.serving_stats().approx_refined, 1);
    }

    #[test]
    fn batch_explain_is_answer_identical_to_standalone() {
        let engine = engine();
        let dataset = engine.dataset();
        let titles: Vec<String> = dataset
            .items()
            .iter()
            .take(6)
            .map(|it| it.title.clone())
            .collect();
        let requests: Vec<ExplainRequest> = titles
            .iter()
            .map(|t| ExplainRequest::new(ItemQuery::title(t), settings()))
            .collect();
        let batch = engine.explain_batch(&requests, &Budget::unlimited());
        assert_eq!(batch.len(), requests.len());
        // Reference answers from a fresh engine, one standalone build each.
        let reference = MapRatEngine::new(Arc::clone(&dataset));
        for (request, (result, served)) in requests.iter().zip(&batch) {
            assert_eq!(
                *served,
                ServedFrom::BatchFused,
                "{}",
                request.query.describe()
            );
            let standalone = reference.explain(request);
            match (&**result, &*standalone) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        format!("{:?}", a.explanation.similarity.groups),
                        format!("{:?}", b.explanation.similarity.groups),
                        "{}",
                        request.query.describe()
                    );
                    assert_eq!(
                        a.explanation.diversity.objective,
                        b.explanation.diversity.objective
                    );
                    assert_eq!(a.explanation.num_ratings, b.explanation.num_ratings);
                    assert_eq!(a.cube.len(), b.cube.len(), "derived cube matches");
                }
                (Err(a), Err(b)) => assert_eq!(format!("{a:?}"), format!("{b:?}")),
                other => panic!("batch and standalone disagree: {other:?}"),
            }
            // The batch populated the result tier like a standalone miss.
            let (shared, served) = engine.explain_traced(request);
            assert_eq!(served, ServedFrom::ResultCache);
            assert!(Arc::ptr_eq(&shared, result));
        }
        // …and the snapshot tier too: a new budget re-solves, no rebuild.
        let resolve =
            ExplainRequest::new(ItemQuery::title(&titles[0]), settings().with_max_groups(2));
        let (r, served) = engine.explain_traced(&resolve);
        assert!(r.is_ok());
        assert_eq!(served, ServedFrom::SnapshotCache);
    }

    #[test]
    fn batch_explain_probes_tiers_and_coalesces_duplicates() {
        let engine = engine();
        let warm = ExplainRequest::new(ItemQuery::title("Toy Story"), settings());
        assert!(engine.explain(&warm).is_ok());
        let dataset = engine.dataset();
        let fresh: Vec<ExplainRequest> = dataset
            .items()
            .iter()
            .filter(|it| it.title != "Toy Story")
            .take(2)
            .map(|it| ExplainRequest::new(ItemQuery::title(&it.title), settings()))
            .collect();
        let requests = vec![
            warm.clone(),
            fresh[0].clone(),
            fresh[0].clone(),
            fresh[1].clone(),
        ];
        let solves_before = engine.solve_count();
        let batch = engine.explain_batch(&requests, &Budget::unlimited());
        assert_eq!(batch[0].1, ServedFrom::ResultCache, "warm slot is a hit");
        assert_eq!(batch[1].1, ServedFrom::BatchFused);
        assert_eq!(batch[1].1.as_str(), "batch");
        assert_eq!(batch[2].1, ServedFrom::Coalesced, "in-batch duplicate");
        assert!(
            Arc::ptr_eq(&batch[1].0, &batch[2].0),
            "duplicate shares the solve"
        );
        assert_eq!(batch[3].1, ServedFrom::BatchFused);
        assert_eq!(
            engine.solve_count() - solves_before,
            2,
            "two fused solves: hit and duplicate never reached the miner"
        );
    }

    #[test]
    fn batch_routes_time_restricted_queries_standalone() {
        use maprat_data::{TimeRange, Timestamp};
        let engine = engine();
        let dataset = engine.dataset();
        let titles: Vec<String> = dataset
            .items()
            .iter()
            .take(3)
            .map(|it| it.title.clone())
            .collect();
        let restricted = ExplainRequest::new(
            ItemQuery::title(&titles[0]).within(TimeRange::until(Timestamp::from_ymd(2005, 1, 1))),
            settings(),
        );
        let requests = vec![
            restricted,
            ExplainRequest::new(ItemQuery::title(&titles[1]), settings()),
            ExplainRequest::new(ItemQuery::title(&titles[2]), settings()),
        ];
        let batch = engine.explain_batch(&requests, &Budget::unlimited());
        assert_eq!(
            batch[0].1,
            ServedFrom::Cold,
            "time-restricted universes are not fusable"
        );
        assert_eq!(batch[1].1, ServedFrom::BatchFused);
        assert_eq!(batch[2].1, ServedFrom::BatchFused);
    }

    #[test]
    fn census_memo_is_shared_across_sampled_explains_and_refinement() {
        let engine = approx_engine(usize::MAX);
        let q = ItemQuery::title("Toy Story");
        let first = ExplainRequest::new(q.clone(), settings());
        let (a, _) = engine.explain_opts(&first, &Budget::unlimited(), ApproxMode::Force);
        assert!(matches!(&*a, Ok(r) if r.approx.is_some()));
        assert_eq!(engine.census_stats().misses(), 1, "first solve censuses");
        // A second sampled solve of the same query (different seed → a
        // different request, so no result-tier hit) reuses the census.
        let mut seeded = settings();
        seeded.rhe.seed ^= 1;
        let second = ExplainRequest::new(q.clone(), seeded);
        let (b, _) = engine.explain_opts(&second, &Budget::unlimited(), ApproxMode::Force);
        assert!(matches!(&*b, Ok(r) if r.approx.is_some()));
        assert_eq!(
            engine.census_stats().misses(),
            1,
            "the census pass ran exactly once"
        );
        assert!(engine.census_stats().hits() >= 1);
        // The memoized census is answer-identical to a fresh one.
        let fresh = MapRatEngine::with_approx_policy(
            Arc::clone(&engine.dataset()),
            approx_policy(usize::MAX),
        );
        let (c, _) = fresh.explain_opts(&second, &Budget::unlimited(), ApproxMode::Force);
        match (&*b, &*c) {
            (Ok(x), Ok(y)) => {
                assert_eq!(
                    format!("{:?}", x.explanation.similarity.groups),
                    format!("{:?}", y.explanation.similarity.groups),
                    "memoized census must not change the sample"
                );
            }
            other => panic!("both sampled solves should succeed: {other:?}"),
        }
        // Background refinement reuses the memoized (items, universe) for
        // its exact re-solve and still upgrades the entry in place.
        assert!(engine.refine_now(&first));
        let (r, served) = engine.explain_traced(&first);
        assert_eq!(served, ServedFrom::ResultCache);
        assert!(matches!(&*r, Ok(res) if res.approx.is_none()));
    }

    #[test]
    fn fingerprint_distinguishes_time_windows() {
        use maprat_data::{TimeRange, Timestamp};
        let s = settings();
        let q1 = ItemQuery::title("Toy Story");
        let q2 =
            ItemQuery::title("Toy Story").within(TimeRange::until(Timestamp::from_ymd(2001, 1, 1)));
        assert_ne!(
            ExplainRequest::new(q1, s.clone()).fingerprint(),
            ExplainRequest::new(q2, s).fingerprint()
        );
    }

    #[test]
    fn fingerprint_covers_seed_and_lambda() {
        // Regression: the old string key formatted dm_lambda with `{:.4}`
        // and could be regenerated without the seed; the typed fingerprint
        // must separate requests differing only in those fields.
        let q = ItemQuery::title("Toy Story");
        let base = ExplainRequest::new(q.clone(), SearchSettings::default());

        let mut seeded = SearchSettings::default();
        seeded.rhe.seed ^= 0x1;
        assert_ne!(
            base.fingerprint(),
            ExplainRequest::new(q.clone(), seeded).fingerprint(),
            "rhe.seed must participate in the cache key"
        );

        let mut lambda = SearchSettings::default();
        lambda.dm_lambda += 1e-9; // far below the old {:.4} resolution
        assert_ne!(
            base.fingerprint(),
            ExplainRequest::new(q.clone(), lambda).fingerprint(),
            "dm_lambda must participate at full precision"
        );

        // And equal requests agree, so caching still works.
        assert_eq!(
            base.fingerprint(),
            ExplainRequest::new(q, SearchSettings::default()).fingerprint()
        );
    }
}
