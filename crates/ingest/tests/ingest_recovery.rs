//! End-to-end ingestion contracts:
//!
//! * **Planted recovery** — truncating the synthetic world at a time
//!   cutoff and replaying the remainder (including the planted polarized
//!   Eclipse ratings) through the ingest API must yield the same SM/DM
//!   explanations as loading everything up front.
//! * **Concurrency** — commits racing explains must only ever produce
//!   responses a quiesced serial run could have produced: every racing
//!   response is byte-identical to the explanation of *some* committed
//!   snapshot, and the quiesced dataset matches the serial replay.

use maprat_core::query::ItemQuery;
use maprat_core::{Miner, SearchSettings};
use maprat_data::subset::by_time;
use maprat_data::synth::{generate, SynthConfig};
use maprat_data::{Dataset, ItemId, Score, TimeRange, Timestamp, UserId};
use maprat_explore::MapRatEngine;
use maprat_ingest::{
    IngestBuffer, IngestService, ItemSpec, NewItem, NewUser, RatingEvent, UserSpec,
};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Replays every rating of `full` at or after `cut` as monthly ingest
/// commits against an engine seeded with the pre-`cut` truncation.
/// Entities the truncation dropped (no pre-cut ratings) re-enter through
/// the new-user / new-item ingest path. Returns the service after the
/// last commit.
fn replay_tail(full: &Dataset, truncated: Dataset, cut: Timestamp) -> IngestService {
    let kept = TimeRange::until(cut);

    // Reconstruct the truncation's id maps: `subset` densifies ids by
    // scanning the tables in order, so survivors map sequentially.
    let mut user_map: HashMap<UserId, UserId> = HashMap::new();
    let mut item_map: HashMap<ItemId, ItemId> = HashMap::new();
    let mut survives_user = vec![false; full.users().len()];
    let mut survives_item = vec![false; full.items().len()];
    for r in full.ratings() {
        if kept.contains(r.ts) {
            survives_user[r.user.index()] = true;
            survives_item[r.item.index()] = true;
        }
    }
    for (old, s) in survives_user.iter().enumerate() {
        if *s {
            user_map.insert(UserId::from_index(old), UserId::from_index(user_map.len()));
        }
    }
    for (old, s) in survives_item.iter().enumerate() {
        if *s {
            item_map.insert(ItemId::from_index(old), ItemId::from_index(item_map.len()));
        }
    }
    assert_eq!(user_map.len(), truncated.users().len());
    assert_eq!(item_map.len(), truncated.items().len());

    // Tail ratings, bucketed into monthly commit batches.
    let mut by_month: BTreeMap<_, Vec<usize>> = BTreeMap::new();
    for (i, r) in full.ratings().iter().enumerate() {
        if !kept.contains(r.ts) {
            by_month.entry(r.ts.month_key()).or_default().push(i);
        }
    }
    assert!(by_month.len() >= 3, "cut leaves a multi-month tail");

    let svc = IngestService::new(MapRatEngine::new(Arc::new(truncated)));
    let mut next_user = user_map.len();
    let mut next_item = item_map.len();
    for indexes in by_month.values() {
        let mut buffer = IngestBuffer::new();
        for &i in indexes {
            let r = &full.ratings()[i];
            let user = match user_map.get(&r.user) {
                Some(&mapped) => UserSpec::Existing(mapped),
                None => {
                    // First post-cut appearance: allocation is sequential,
                    // so the commit will assign exactly this id.
                    user_map.insert(r.user, UserId::from_index(next_user));
                    next_user += 1;
                    let u = full.user(r.user);
                    UserSpec::New(NewUser {
                        age: u.age,
                        gender: u.gender,
                        occupation: u.occupation,
                        zip: u.zip,
                    })
                }
            };
            let item = match item_map.get(&r.item) {
                Some(&mapped) => ItemSpec::Existing(mapped),
                None => {
                    item_map.insert(r.item, ItemId::from_index(next_item));
                    next_item += 1;
                    let it = full.item(r.item);
                    ItemSpec::New(NewItem {
                        title: it.title.clone(),
                        year: it.year,
                        genres: it.genres,
                    })
                }
            };
            buffer
                .push(RatingEvent {
                    user,
                    item,
                    score: r.score,
                    ts: r.ts,
                })
                .unwrap();
        }
        svc.commit(buffer).unwrap();
    }
    svc
}

fn assert_explanations_match(
    full: &Dataset,
    replayed: &Dataset,
    query: &ItemQuery,
    settings: &SearchSettings,
) {
    let baseline = Miner::new(full).explain(query, settings).unwrap();
    let recovered = Miner::new(replayed).explain(query, settings).unwrap();
    assert_eq!(baseline.num_ratings, recovered.num_ratings);
    assert_eq!(
        format!("{:?}", baseline.total),
        format!("{:?}", recovered.total)
    );
    for (a, b) in [
        (&baseline.similarity, &recovered.similarity),
        (&baseline.diversity, &recovered.diversity),
    ] {
        assert_eq!(
            a.objective,
            b.objective,
            "{}: objective drifted",
            query.describe()
        );
        assert_eq!(
            a.coverage,
            b.coverage,
            "{}: coverage drifted",
            query.describe()
        );
        assert_eq!(
            format!("{:?}", a.groups),
            format!("{:?}", b.groups),
            "{}: groups drifted",
            query.describe()
        );
    }
}

#[test]
fn planted_scenarios_recover_after_ingest_replay() {
    let full = generate(&SynthConfig::small(42)).unwrap();
    let cut = Timestamp::from_ymd(2002, 9, 1);
    let truncated = by_time(&full, TimeRange::until(cut)).unwrap();
    assert!(truncated.num_ratings() < full.num_ratings());

    let svc = replay_tail(&full, truncated, cut);
    let replayed = svc.engine().dataset();
    assert_eq!(replayed.num_ratings(), full.num_ratings());
    // Entities without a single rating can't re-enter through the rating
    // stream; everything that ever rated (or was rated) must be back.
    let rated_users: HashSet<UserId> = full.ratings().iter().map(|r| r.user).collect();
    let rated_items: HashSet<ItemId> = full.ratings().iter().map(|r| r.item).collect();
    assert_eq!(replayed.users().len(), rated_users.len());
    assert_eq!(replayed.items().len(), rated_items.len());
    assert_eq!(
        svc.watermark().unwrap().month,
        Timestamp::from_ymd(2003, 2, 1).month_key()
    );

    // §1 Eclipse: DM separates the planted lovers/haters identically.
    assert_explanations_match(
        &full,
        &replayed,
        &ItemQuery::title("The Twilight Saga: Eclipse"),
        &SearchSettings::default()
            .with_require_geo(false)
            .with_min_coverage(0.08)
            .with_max_groups(2),
    );
    // §1 Eclipse SM and FIG2 Toy Story (geo-anchored) agree too.
    assert_explanations_match(
        &full,
        &replayed,
        &ItemQuery::title("The Twilight Saga: Eclipse"),
        &SearchSettings::default()
            .with_require_geo(false)
            .with_min_coverage(0.1),
    );
    assert_explanations_match(
        &full,
        &replayed,
        &ItemQuery::title("Toy Story"),
        &SearchSettings::default().with_min_coverage(0.2),
    );
}

/// Deterministic commit batches for the concurrency test: each commit
/// introduces fresh reviewers rating the two watched titles plus one
/// previously unseen item.
fn stress_batches() -> Vec<Vec<RatingEvent>> {
    (0..6u32)
        .map(|c| {
            let mut events = Vec::new();
            for k in 0..3u32 {
                events.push(RatingEvent {
                    user: UserSpec::New(NewUser {
                        age: maprat_data::AgeGroup::From25To34,
                        gender: if k % 2 == 0 {
                            maprat_data::Gender::Female
                        } else {
                            maprat_data::Gender::Male
                        },
                        occupation: maprat_data::Occupation::Artist,
                        zip: maprat_data::Zip::new(94103 + c * 7 + k),
                    }),
                    item: ItemSpec::ByTitle(if k == 0 { "Jaws" } else { "Toy Story" }.into()),
                    score: Score::new(1 + ((c + k) % 5) as u8).unwrap(),
                    ts: Timestamp::from_ymd(2003, 1 + (c % 3) as i64 as u32, 3 + k),
                });
            }
            events.push(RatingEvent {
                user: UserSpec::Existing(UserId(c)),
                item: ItemSpec::New(NewItem {
                    title: format!("Midnight Premiere {c}"),
                    year: 2003,
                    genres: [maprat_data::Genre::Thriller].into_iter().collect(),
                }),
                score: Score::new(3).unwrap(),
                ts: Timestamp::from_ymd(2003, 2, 10 + c),
            });
            events
        })
        .collect()
}

fn buffer_of(events: &[RatingEvent]) -> IngestBuffer {
    let mut buffer = IngestBuffer::new();
    for e in events {
        buffer.push(e.clone()).unwrap();
    }
    buffer
}

#[test]
fn racing_commits_and_explains_match_a_quiesced_serial_run() {
    let base = Arc::new(generate(&SynthConfig::tiny(77)).unwrap());
    let queries = [ItemQuery::title("Toy Story"), ItemQuery::title("Jaws")];
    let settings = SearchSettings::default().with_min_coverage(0.1);
    let batches = stress_batches();

    // Serial reference: commit the same batches one at a time; after every
    // commit (and before the first) record each query's explanation from a
    // fresh engine over that snapshot.
    let mut states: Vec<Arc<Dataset>> = vec![Arc::clone(&base)];
    let serial = IngestService::new(MapRatEngine::new(Arc::clone(&base)));
    for events in &batches {
        serial.commit(buffer_of(events)).unwrap();
        states.push(serial.engine().dataset());
    }
    let mut admissible: HashSet<(usize, String)> = HashSet::new();
    for state in &states {
        let engine = MapRatEngine::new(Arc::clone(state));
        for (qi, query) in queries.iter().enumerate() {
            let r = engine.explain_query(query, &settings);
            let e = r.as_ref().as_ref().expect("serial explain succeeds");
            admissible.insert((qi, format!("{:?}", e.explanation)));
        }
    }

    // Race: one committer applying the same batches against explain
    // threads hammering the same queries through the serving engine.
    let svc = Arc::new(IngestService::new(MapRatEngine::new(Arc::clone(&base))));
    let done = Arc::new(AtomicBool::new(false));
    let committer = {
        let svc = Arc::clone(&svc);
        let done = Arc::clone(&done);
        let batches = batches.clone();
        std::thread::spawn(move || {
            for events in &batches {
                svc.commit(buffer_of(events)).unwrap();
            }
            done.store(true, Ordering::SeqCst);
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let done = Arc::clone(&done);
            let queries = queries.clone();
            let settings = settings.clone();
            std::thread::spawn(move || {
                let mut observed: Vec<(usize, String)> = Vec::new();
                loop {
                    let finished = done.load(Ordering::SeqCst);
                    for (qi, query) in queries.iter().enumerate() {
                        let r = svc.engine().explain_query(query, &settings);
                        let e = r.as_ref().as_ref().expect("racing explain succeeds");
                        observed.push((qi, format!("{:?}", e.explanation)));
                    }
                    if finished {
                        return observed;
                    }
                }
            })
        })
        .collect();
    committer.join().unwrap();
    let mut total = 0usize;
    for reader in readers {
        for obs in reader.join().unwrap() {
            assert!(
                admissible.contains(&obs),
                "racing explain observed a response no committed snapshot produces (query {})",
                obs.0
            );
            total += 1;
        }
    }
    assert!(total >= 2 * queries.len(), "readers made progress");

    // Quiesced, the raced engine holds exactly the serial final snapshot.
    let raced = svc.engine().dataset();
    let serial_final = states.last().unwrap();
    assert_eq!(raced.num_ratings(), serial_final.num_ratings());
    assert_eq!(raced.ratings(), serial_final.ratings());
    assert_eq!(raced.rating_user_codes(), serial_final.rating_user_codes());
    assert_eq!(svc.commit_seq(), batches.len() as u64);
}
