//! Concurrent-submitter stress at the engine layer: many `MapRatEngine`
//! clones solving at once over the shared worker pool — no deadlock, and
//! every explanation equal to the serial run.

use maprat_core::query::ItemQuery;
use maprat_core::{Explanation, SearchSettings};
use maprat_data::synth::{generate, SynthConfig};
use maprat_explore::{MapRatEngine, TimeSlider};
use std::fmt::Write as _;

/// A full-precision rendering of everything user-visible in an
/// explanation (`{:?}` round-trips f64), used as the equality signature.
fn signature(e: &Explanation) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "q={} n={} total={:?}",
        e.query,
        e.num_ratings,
        e.total.mean()
    );
    for interp in [&e.similarity, &e.diversity] {
        let _ = write!(
            s,
            " | {:?} obj={:?} cov={:?} ok={}",
            interp.task, interp.objective, interp.coverage, interp.meets_coverage
        );
        for g in &interp.groups {
            let _ = write!(
                s,
                " [{} n={} mean={:?} share={:?}]",
                g.label,
                g.support,
                g.stats.mean(),
                g.coverage_share
            );
        }
    }
    s
}

fn queries() -> Vec<(ItemQuery, SearchSettings)> {
    let base = SearchSettings::default()
        .with_min_coverage(0.1)
        .with_require_geo(false);
    vec![
        (ItemQuery::title("Toy Story"), base.clone()),
        (
            ItemQuery::title("Toy Story"),
            base.clone().with_max_groups(2),
        ),
        (
            ItemQuery::title("Toy Story"),
            base.clone().with_min_coverage(0.3),
        ),
        (ItemQuery::actor("Tom Hanks"), base.clone()),
        (
            ItemQuery::title("Toy Story"),
            base.clone().with_min_coverage(0.2),
        ),
        (ItemQuery::actor("Tom Hanks"), base.with_max_groups(2)),
    ]
}

#[test]
fn many_engine_clones_solving_at_once_match_serial() {
    let queries = queries();

    // Serial ground truth on its own engine (cold cache per request set).
    let serial_engine = MapRatEngine::from_dataset(generate(&SynthConfig::tiny(251)).unwrap());
    let serial: Vec<String> = queries
        .iter()
        .map(|(q, s)| {
            let r = serial_engine.explain_query(q, s);
            signature(&r.as_ref().as_ref().expect("serial explain").explanation)
        })
        .collect();

    // One fresh engine, eight clones hammering it concurrently: every
    // clone resolves every query, all solves fan out over the shared
    // pool, and the shared cache sees racing get-or-insert calls.
    let engine = MapRatEngine::from_dataset(generate(&SynthConfig::tiny(251)).unwrap());
    std::thread::scope(|scope| {
        for clone_id in 0..8 {
            let worker = engine.clone();
            let queries = &queries;
            let serial = &serial;
            scope.spawn(move || {
                for round in 0..queries.len() {
                    let i = (clone_id + round) % queries.len();
                    let (q, s) = &queries[i];
                    let r = worker.explain_query(q, s);
                    let got =
                        signature(&r.as_ref().as_ref().expect("concurrent explain").explanation);
                    assert_eq!(
                        got, serial[i],
                        "clone {clone_id} round {round} diverged from serial"
                    );
                }
            });
        }
    });
    assert!(
        engine.cache_stats().hits() >= 1,
        "clones must share one cache"
    );
}

#[test]
fn sweep_and_explains_share_the_pool_concurrently() {
    // A timeline sweep (outer fan-out) racing point explains from other
    // clones: both run on the one pool without deadlock and the sweep
    // stays bit-identical to its single-threaded run.
    let engine = MapRatEngine::from_dataset(generate(&SynthConfig::tiny(252)).unwrap());
    let settings = SearchSettings::default()
        .with_min_coverage(0.1)
        .with_require_geo(false);
    let query = ItemQuery::title("Toy Story");
    let slider = TimeSlider::over_dataset(&engine.dataset(), 6, 6).unwrap();

    let cold = MapRatEngine::from_dataset(generate(&SynthConfig::tiny(252)).unwrap());
    let single = slider.sweep_with_threads(&cold, &query, &settings, 1);

    std::thread::scope(|scope| {
        let sweep_engine = engine.clone();
        let (slider_ref, query_ref, settings_ref) = (&slider, &query, &settings);
        let sweeper = scope.spawn(move || {
            slider_ref.sweep_with_threads(&sweep_engine, query_ref, settings_ref, 4)
        });
        for _ in 0..4 {
            let worker = engine.clone();
            let (query_ref, settings_ref) = (&query, &settings);
            scope.spawn(move || {
                for _ in 0..4 {
                    assert!(worker.explain_query(query_ref, settings_ref).is_ok());
                }
            });
        }
        let swept = sweeper.join().unwrap();
        assert_eq!(swept, single, "racing explains must not perturb the sweep");
    });
}
