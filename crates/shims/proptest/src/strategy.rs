//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::sync::Arc;

/// A recipe for generating values of one type.
///
/// Unlike upstream there is no value tree / shrinking machinery: a
/// strategy is just a deterministic function of the case RNG.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-process every generated value.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Build a recursive strategy: `recurse` receives the strategy for the
    /// previous depth and wraps it one level deeper. `_desired_size` and
    /// `_expected_branch_size` are accepted for signature compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            let leaf = leaf.clone();
            strat = BoxedStrategy::from_fn(move |rng| {
                // Half the draws stop at a leaf so sizes stay bounded.
                if rng.next_u64() & 1 == 0 {
                    leaf.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            });
        }
        strat
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::from_fn(move |rng| self.generate(rng))
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T> {
    generate: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generate: Arc::clone(&self.generate),
        }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a generation function.
    pub fn from_fn(generate: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy {
            generate: Arc::new(generate),
        }
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// The [`crate::prop_oneof!`] combinator: a uniform choice between
/// same-valued strategies.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
