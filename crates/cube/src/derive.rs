//! Deriving per-query cubes from one fused multi-query cube build.
//!
//! The batch-explain path (an actor's filmography, the precompute set)
//! builds **one** combined cube over the deduped union of the batch's
//! items and then *derives* each query's standalone cube from it instead
//! of running the two-pass builder once per query. The derivation is
//! exact — pinned bit-identical to [`RatingCube::build`] over the
//! query's own universe by the property suite — because group membership
//! of a rating is a pure function of its reviewer profile:
//!
//! * a time-unrestricted query's universe is the concatenation of its
//!   items' contiguous rating ranges in ascending item order
//!   (`ItemQuery::rating_indexes`), each of which is also one contiguous
//!   segment of the combined universe;
//! * a group's query cover is therefore a concatenation of bit windows
//!   of its combined cover ([`Bitmap::or_window_into`]);
//! * its query support is a sum of masked range popcounts
//!   ([`Bitmap::count_range`]), and a cell reaches the query's iceberg
//!   threshold only if it reaches the combined cube's (support only
//!   shrinks under restriction to a sub-universe), so the combined
//!   survivor list is a superset of every query's — dropping
//!   under-threshold cells reproduces the standalone survivor set in the
//!   same coarse-to-fine order;
//! * its stats regather from the dataset's score bins over the derived
//!   cover positions (order-independent integer adds — identical to the
//!   scratch builder's accumulation).

use crate::bitmap::Bitmap;
use crate::builder::{CandidateGroup, RatingCube};
use maprat_data::{Dataset, ItemId, RatingIdx, RatingStats};

/// One contiguous slice of a query universe inside the combined
/// universe: `len` positions starting at combined position
/// `combined_start` are query positions `query_start..query_start+len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First position of the slice in the query's own universe.
    pub query_start: usize,
    /// First position of the slice in the combined universe.
    pub combined_start: usize,
    /// Number of positions.
    pub len: usize,
}

/// The combined universe of a batch: the deduped ascending item union's
/// rating indexes, plus where each item's contiguous range landed.
#[derive(Debug, Clone)]
pub struct CombinedUniverse {
    rating_idx: Vec<u32>,
    /// `(item, start, len)` per distinct item, ascending by item.
    items: Vec<(ItemId, usize, usize)>,
}

impl CombinedUniverse {
    /// Builds the combined universe over the deduped, ascending union of
    /// `items` (whole-item rating ranges — the time-unrestricted case).
    pub fn over(dataset: &Dataset, items: impl IntoIterator<Item = ItemId>) -> CombinedUniverse {
        let mut sorted: Vec<ItemId> = items.into_iter().collect();
        sorted.sort_unstable();
        sorted.dedup();
        let mut rating_idx: Vec<u32> = Vec::new();
        let mut placed = Vec::with_capacity(sorted.len());
        for item in sorted {
            let start = rating_idx.len();
            rating_idx.extend(dataset.rating_range_for_item(item));
            placed.push((item, start, rating_idx.len() - start));
        }
        CombinedUniverse {
            rating_idx,
            items: placed,
        }
    }

    /// The combined rating universe, item-major ascending.
    pub fn rating_indexes(&self) -> &[u32] {
        &self.rating_idx
    }

    /// Number of combined positions.
    pub fn len(&self) -> usize {
        self.rating_idx.len()
    }

    /// Whether the combined universe is empty.
    pub fn is_empty(&self) -> bool {
        self.rating_idx.is_empty()
    }

    /// Maps one query's items (ascending, deduped — the order
    /// `ItemQuery::items` returns) to its universe: the query's rating
    /// indexes plus the segments tiling them inside the combined
    /// universe. Returns `None` if an item was not part of the batch
    /// union (caller bug).
    pub fn query_segments(&self, items: &[ItemId]) -> Option<(Vec<u32>, Vec<Segment>)> {
        let mut rating_idx = Vec::new();
        let mut segments = Vec::with_capacity(items.len());
        for &item in items {
            let pos = self
                .items
                .binary_search_by_key(&item, |&(i, _, _)| i)
                .ok()?;
            let (_, start, len) = self.items[pos];
            if len == 0 {
                continue;
            }
            segments.push(Segment {
                query_start: rating_idx.len(),
                combined_start: start,
                len,
            });
            rating_idx.extend_from_slice(&self.rating_idx[start..start + len]);
        }
        Some((rating_idx, segments))
    }
}

/// Derives one query's standalone cube from the combined batch cube.
///
/// `rating_idx`/`segments` come from
/// [`CombinedUniverse::query_segments`]; the segments must tile
/// `0..rating_idx.len()` in order. The result is bit-identical to
/// `RatingCube::build(dataset, rating_idx, options)` with the combined
/// cube's options (covers compare set-equal; derived covers are owned
/// dense blocks rather than pool windows).
pub fn derive_cube(
    dataset: &Dataset,
    combined: &RatingCube,
    segments: &[Segment],
    rating_idx: Vec<u32>,
) -> RatingCube {
    let universe = rating_idx.len();
    debug_assert_eq!(universe, segments.iter().map(|s| s.len).sum::<usize>());
    let words = universe.div_ceil(64);
    let min_support = combined.options().min_support.max(1);
    let bins = dataset.rating_score_bins();

    let mut total_hist = [0u64; 5];
    for &ridx in &rating_idx {
        total_hist[usize::from(bins[RatingIdx(ridx).index()])] += 1;
    }

    let mut groups: Vec<CandidateGroup> = Vec::new();
    for g in combined.groups() {
        // Per-segment masked popcounts decide survival before any cover
        // block is written; under-threshold cells cost a few popcounts.
        let support: usize = segments
            .iter()
            .map(|s| g.cover.count_range(s.combined_start, s.len))
            .sum();
        if support < min_support {
            continue;
        }
        let mut blocks = vec![0u64; words];
        for s in segments {
            g.cover
                .or_window_into(s.combined_start, s.len, &mut blocks, s.query_start);
        }
        let cover = Bitmap::from_owned_blocks(universe, blocks);
        let mut hist = [0u64; 5];
        for p in cover.iter() {
            hist[usize::from(bins[RatingIdx(rating_idx[p]).index()])] += 1;
        }
        debug_assert_eq!(cover.count(), support);
        groups.push(CandidateGroup {
            desc: g.desc,
            cover,
            stats: RatingStats::from_histogram(hist),
        });
    }
    RatingCube::from_parts(
        rating_idx,
        groups,
        RatingStats::from_histogram(total_hist),
        combined.options().clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CubeOptions;
    use maprat_data::synth::{generate, SynthConfig};

    fn assert_cubes_identical(a: &RatingCube, b: &RatingCube) {
        assert_eq!(a.rating_indexes(), b.rating_indexes());
        assert_eq!(a.len(), b.len(), "candidate counts differ");
        assert_eq!(a.total_stats(), b.total_stats());
        for (ga, gb) in a.groups().iter().zip(b.groups()) {
            assert_eq!(ga.desc, gb.desc);
            assert_eq!(ga.stats, gb.stats, "{}", ga.desc);
            assert_eq!(ga.cover, gb.cover, "{}", ga.desc);
        }
    }

    #[test]
    fn derived_cubes_match_standalone_builds() {
        let dataset = generate(&SynthConfig::tiny(77)).unwrap();
        let all: Vec<ItemId> = dataset.items().iter().map(|i| i.id).collect();
        // Three overlapping queries over a five-item union.
        let union: Vec<ItemId> = all[..5.min(all.len())].to_vec();
        let queries: Vec<Vec<ItemId>> = vec![
            union.clone(),
            union[..2].to_vec(),
            vec![union[0], union[2], union[4.min(union.len() - 1)]],
        ];
        for options in [
            CubeOptions {
                min_support: 3,
                require_geo: true,
                max_arity: 4,
            },
            CubeOptions {
                min_support: 5,
                require_geo: false,
                max_arity: 3,
            },
        ] {
            let combined_universe =
                CombinedUniverse::over(&dataset, queries.iter().flatten().copied());
            let combined = RatingCube::build(
                &dataset,
                combined_universe.rating_indexes().to_vec(),
                options.clone(),
            );
            for q in &queries {
                let mut q = q.clone();
                q.sort_unstable();
                q.dedup();
                let (rating_idx, segments) = combined_universe
                    .query_segments(&q)
                    .expect("items in batch");
                let derived = derive_cube(&dataset, &combined, &segments, rating_idx.clone());
                let standalone = RatingCube::build(&dataset, rating_idx, options.clone());
                assert_cubes_identical(&derived, &standalone);
            }
        }
    }

    #[test]
    fn query_segments_rejects_foreign_items() {
        let dataset = generate(&SynthConfig::tiny(78)).unwrap();
        let all: Vec<ItemId> = dataset.items().iter().map(|i| i.id).collect();
        let combined = CombinedUniverse::over(&dataset, all[..2].iter().copied());
        assert!(combined.query_segments(&[all[2]]).is_none());
    }
}
