//! The `maprat` command-line tool — see [`maprat::cli::USAGE`].

use maprat::cli::{parse, Command, QuerySpec, USAGE};
use maprat::core::SearchSettings;
use maprat::data::synth::{generate, SynthConfig};
use maprat::data::{loader, writer, Dataset};
use maprat::explore::drilldown::{drill_group, render_drilldown};
use maprat::explore::timeline::render_sweep;
use maprat::explore::{exploration_maps, TimeSlider};
use maprat::geo::svg::{render as render_svg, SvgOptions};
use maprat::server::{AppState, HttpServer};
use maprat::MapRatEngine;
use std::process::ExitCode;

fn load_or_generate(spec_data: &Option<String>) -> Result<Dataset, String> {
    match spec_data {
        Some(dir) => loader::load_movielens_dir(dir)
            .map_err(|e| format!("cannot load MovieLens directory {dir:?}: {e}")),
        None => {
            eprintln!("generating the default synthetic dataset (small, seed 42)…");
            generate(&SynthConfig::small(42)).map_err(|e| e.to_string())
        }
    }
}

fn engine_for(spec_data: &Option<String>) -> Result<MapRatEngine, String> {
    Ok(MapRatEngine::from_dataset(load_or_generate(spec_data)?))
}

fn scale_config(scale: &str, seed: u64) -> Result<SynthConfig, String> {
    match scale {
        "tiny" => Ok(SynthConfig::tiny(seed)),
        "small" => Ok(SynthConfig::small(seed)),
        "full" => Ok(SynthConfig::movielens_1m(seed)),
        other => Err(format!("unknown scale {other:?} (tiny|small|full)")),
    }
}

fn run_explain(spec: &QuerySpec, svg: Option<String>) -> Result<(), String> {
    let engine = engine_for(&spec.data)?;
    let query = spec.to_query()?;
    let result = engine.explain_query(&query, &spec.to_settings()?);
    let r = result.as_ref().as_ref().map_err(|e| e.to_string())?;
    print!("{}", r.explanation.render_text());
    if let Some(path) = svg {
        let (sm, _) = exploration_maps(&r.explanation);
        let body = render_svg(&sm, &SvgOptions::default());
        std::fs::write(&path, body).map_err(|e| format!("cannot write {path:?}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn run_timeline(spec: &QuerySpec, window: usize) -> Result<(), String> {
    let engine = engine_for(&spec.data)?;
    let query = spec.to_query()?;
    let slider = TimeSlider::over_dataset(&engine.dataset(), window.max(1), window.max(1))
        .ok_or("dataset has no ratings")?;
    let points = slider.sweep(&engine, &query, &spec.to_settings()?);
    print!("{}", render_sweep(&points));
    Ok(())
}

fn run_drill(spec: &QuerySpec, index: usize) -> Result<(), String> {
    let engine = engine_for(&spec.data)?;
    let query = spec.to_query()?;
    let result = engine.explain_query(&query, &spec.to_settings()?);
    let r = result.as_ref().as_ref().map_err(|e| e.to_string())?;
    let group = r
        .explanation
        .similarity
        .groups
        .get(index)
        .ok_or_else(|| format!("no similarity group {index}"))?;
    let cities = drill_group(&engine.dataset(), r, &group.desc)
        .ok_or("group carries no state condition (drill needs one)")?;
    print!("{}", render_drilldown(&group.desc, &cities));
    Ok(())
}

fn run_generate(out: &str, scale: &str, seed: u64) -> Result<(), String> {
    let config = scale_config(scale, seed)?;
    eprintln!("generating {scale} dataset (seed {seed})…");
    let dataset = generate(&config).map_err(|e| e.to_string())?;
    eprintln!("{}", dataset.summary());
    writer::write_movielens_dir(&dataset, out).map_err(|e| e.to_string())?;
    println!("wrote MovieLens-format files into {out}");
    Ok(())
}

fn run_serve(port: u16, data: Option<String>) -> Result<(), String> {
    let dataset = load_or_generate(&data)?;
    eprintln!("{}", dataset.summary());
    // The engine owns the dataset behind an Arc — no leak, and worker
    // threads share one cache through cheap clones.
    let engine = MapRatEngine::from_dataset(dataset);
    let warmed = engine.precompute_popular(
        8,
        &SearchSettings::builder()
            .min_coverage(0.2)
            .build()
            .map_err(|e| e.to_string())?,
    );
    eprintln!("pre-computed {warmed} popular items");
    // Background precompute keeps warming whatever visitors ask for, on
    // idle pool workers (tunable via MAPRAT_PRECOMPUTE_BUDGET / _MS).
    let scheduler =
        std::sync::Arc::new(maprat::explore::PrecomputeScheduler::start(engine.clone()));
    let mut state = AppState::new(engine.clone()).with_precompute(scheduler);
    // Live ingestion is on by default; MAPRAT_INGEST=0 serves read-only.
    // With MAPRAT_WAL_DIR set, commits are write-ahead logged there and
    // replayed on startup (crash recovery); without it they are
    // in-memory only.
    if !matches!(
        std::env::var("MAPRAT_INGEST").as_deref(),
        Ok("0") | Ok("false")
    ) {
        let service = match std::env::var("MAPRAT_WAL_DIR") {
            Ok(dir) if !dir.is_empty() => {
                let (service, report) = maprat::ingest::IngestService::with_wal(engine, &dir)
                    .map_err(|e| format!("cannot open WAL in {dir:?}: {e}"))?;
                eprintln!(
                    "WAL at {dir}: replayed {} commit(s) (checkpoint {}, last seq {}{})",
                    report.replayed,
                    report.checkpoint,
                    report.last_seq,
                    if report.truncated > 0 {
                        ", repaired a torn tail"
                    } else {
                        ""
                    }
                );
                service
            }
            _ => maprat::ingest::IngestService::new(engine),
        };
        state = state.with_ingest(std::sync::Arc::new(service));
    }
    // Requests execute as shared-pool jobs; the accept loop admits a few
    // times the worker count and back-pressures beyond that.
    let max_in_flight = 4 * maprat::core::parallel::num_threads();
    let server = HttpServer::start(
        &format!("127.0.0.1:{port}"),
        max_in_flight,
        state.into_handler(),
    )
    .map_err(|e| format!("cannot bind port {port}: {e}"))?;
    println!(
        "MapRat demo listening on http://127.0.0.1:{}/",
        server.port()
    );
    println!("press Ctrl-C to stop");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse(&args) {
        Ok(c) => c,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match command {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Explain { spec, svg } => run_explain(&spec, svg),
        Command::Timeline { spec, window } => run_timeline(&spec, window),
        Command::Drill { spec, index } => run_drill(&spec, index),
        Command::Generate { out, scale, seed } => run_generate(&out, &scale, seed),
        Command::Serve { port, data } => run_serve(port, data),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
