//! Deterministic stratified sampling of `R_I` by packed base-cell profile.
//!
//! The reviewer schema is fully enumerable — every rating already carries
//! its reviewer's 15-bit [`PackedUserCode`] in a dense column
//! ([`Dataset::rating_user_codes`]) — so stratum assignment is a counting
//! pass, not a join: the stratum of a rating IS its packed demographic
//! profile. Stratifying on the base cell means every nonempty demographic
//! cell of `R_I` keeps at least one representative in the sample
//! (allocation is `max(1, ceil(frac · N_s))` per stratum), so rare cells
//! that an unstratified sample would wipe out survive and the cube built
//! on the sample still materializes their ancestors.
//!
//! # Determinism
//!
//! Sampling is *systematic within stratum*: the ratings of stratum `s`
//! are ranked in dataset order, and rank `r` is selected iff
//!
//! ```text
//! floor(((r+1)·n_s + φ_s) / N_s)  >  floor((r·n_s + φ_s) / N_s)
//! ```
//!
//! where `N_s` is the stratum population, `n_s` the allocation, and the
//! phase `φ_s ∈ [0, N_s)` is a hash of `(seed, s)` — selecting exactly
//! `n_s` ranks with an O(1) integer membership test and **no data-dependent
//! RNG stream**. Both passes (count, select) run over fixed-size position
//! chunks whose results are merged in chunk order, so the selected set is
//! bit-identical for any worker count; the determinism CI matrix pins
//! this.
//!
//! ```
//! use maprat_approx::StratifiedSampler;
//! use maprat_data::synth::{generate, SynthConfig};
//!
//! let d = generate(&SynthConfig::tiny(7)).unwrap();
//! let all: Vec<u32> = (0..d.ratings().len() as u32).collect();
//! let sample = StratifiedSampler::new(0.2, 42).sample(&d, &all);
//! // Every nonempty stratum keeps at least one rating…
//! assert!(sample.strata.iter().all(|s| s.sampled >= 1));
//! // …and the same inputs reproduce the same sample exactly.
//! let again = StratifiedSampler::new(0.2, 42).sample(&d, &all);
//! assert_eq!(sample.rating_idx, again.rating_idx);
//! ```

use maprat_data::packed::PackedUserCode;
use maprat_data::Dataset;
use maprat_pool::parallel_map;

/// Number of possible strata: one per 15-bit packed profile.
pub const STRATUM_SPACE: usize = 1 << PackedUserCode::BITS;

/// Fixed chunk width (in universe positions) for both parallel passes.
/// Chunking by a constant — not by worker count — is what makes the
/// selected set independent of `MAPRAT_THREADS`.
const CHUNK: usize = 1 << 20;

/// One nonempty stratum of a [`StratifiedSample`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StratumSummary {
    /// The packed demographic profile shared by the stratum's ratings.
    pub code: u16,
    /// Ratings of `R_I` in this stratum.
    pub population: u32,
    /// Ratings selected into the sample (`max(1, ceil(frac · population))`).
    pub sampled: u32,
}

/// The output of [`StratifiedSampler::sample`]: the selected subset of the
/// input universe plus the per-stratum census the bound computation needs.
#[derive(Debug, Clone)]
pub struct StratifiedSample {
    /// Selected rating indexes — a subset of the input, in input order.
    pub rating_idx: Vec<u32>,
    /// Size of the input universe (`|R_I|`).
    pub population: usize,
    /// Nonempty strata in ascending code order, with exact populations.
    pub strata: Vec<StratumSummary>,
    /// The sampling fraction that was asked for (clamped to `[0, 1]`).
    pub requested_frac: f64,
    /// The seed the per-stratum phases were derived from.
    pub seed: u64,
}

impl StratifiedSample {
    /// Number of selected ratings.
    pub fn sampled(&self) -> usize {
        self.rating_idx.len()
    }

    /// The fraction actually achieved (≥ requested: per-stratum ceilings
    /// and the one-per-stratum floor round the allocation up).
    pub fn achieved_frac(&self) -> f64 {
        if self.population == 0 {
            return 0.0;
        }
        self.rating_idx.len() as f64 / self.population as f64
    }

    /// Whether the sample is the whole universe (nothing was skipped) —
    /// callers should fall back to the exact path when this holds.
    pub fn is_exhaustive(&self) -> bool {
        self.rating_idx.len() == self.population
    }

    /// Exact number of input ratings whose packed profile satisfies
    /// `pred` — a census query over the stratum table, no rescan.
    pub fn population_where(&self, pred: impl Fn(PackedUserCode) -> bool) -> u64 {
        self.strata
            .iter()
            .filter(|s| pred(PackedUserCode::from_raw(s.code)))
            .map(|s| u64::from(s.population))
            .sum()
    }
}

/// The seed- and fraction-independent half of a stratified sample: the
/// per-stratum populations of a universe plus each chunk's starting
/// rank per stratum (the prefix sums Pass B seeds its Bresenham
/// counters from).
///
/// The census is the sampler's only full pass over `R_I` whose output
/// does not move with the seed (`seed_changes_selection_but_not_census`
/// pins this), so serving layers memoize one census per query and share
/// it between the primary sample, its paired validation sample, and
/// every later sampled explain of the same universe.
#[derive(Debug, Clone)]
pub struct StratumCensus {
    population: Vec<u32>,
    chunk_start_rank: Vec<Vec<u32>>,
    n: usize,
}

impl StratumCensus {
    /// Runs the census pass (Pass A plus the chunk-order fold) over a
    /// universe with the process-default worker count.
    pub fn over(dataset: &Dataset, rating_idx: &[u32]) -> StratumCensus {
        Self::over_with_threads(dataset, rating_idx, maprat_pool::num_threads())
    }

    /// Like [`StratumCensus::over`] with an explicit worker-count cap.
    /// Bit-identical for every `threads` value (fixed-size chunks merged
    /// in chunk order).
    pub fn over_with_threads(dataset: &Dataset, rating_idx: &[u32], threads: usize) -> Self {
        let codes = dataset.rating_user_codes();
        let n = rating_idx.len();
        let chunks = n.div_ceil(CHUNK);

        // Pass A — census: per-chunk stratum counts over the u16 profile
        // column (no user-table chasing).
        let chunk_counts: Vec<Vec<u32>> = parallel_map(chunks, threads, |c| {
            let mut counts = vec![0u32; STRATUM_SPACE];
            for &r in &rating_idx[c * CHUNK..((c + 1) * CHUNK).min(n)] {
                counts[codes[r as usize] as usize] += 1;
            }
            counts
        });

        // Fold in chunk order: global populations plus each chunk's
        // starting rank per stratum (the prefix sums).
        let mut population = vec![0u32; STRATUM_SPACE];
        let mut chunk_start_rank: Vec<Vec<u32>> = Vec::with_capacity(chunks);
        for counts in &chunk_counts {
            chunk_start_rank.push(population.clone());
            for (p, c) in population.iter_mut().zip(counts) {
                *p += *c;
            }
        }
        StratumCensus {
            population,
            chunk_start_rank,
            n,
        }
    }

    /// Size of the censused universe (`|R_I|`).
    pub fn population(&self) -> usize {
        self.n
    }

    /// Number of nonempty strata.
    pub fn strata(&self) -> usize {
        self.population.iter().filter(|&&p| p > 0).count()
    }
}

/// Deterministic stratified sampler over a rating universe.
///
/// See the [module docs](self) for the scheme. The same `(frac, seed,
/// universe)` triple always yields the same sample, on any machine and
/// any worker count.
#[derive(Debug, Clone, Copy)]
pub struct StratifiedSampler {
    frac: f64,
    seed: u64,
}

impl StratifiedSampler {
    /// Creates a sampler targeting `frac` of each stratum (clamped to
    /// `[0, 1]`; every nonempty stratum contributes at least one rating).
    pub fn new(frac: f64, seed: u64) -> Self {
        let frac = if frac.is_finite() {
            frac.clamp(0.0, 1.0)
        } else {
            1.0
        };
        StratifiedSampler { frac, seed }
    }

    /// The clamped sampling fraction.
    pub fn frac(&self) -> f64 {
        self.frac
    }

    /// The seed phases are derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The paired *validation* sampler: same fraction (hence the same
    /// per-stratum allocations and census), but phases derived from an
    /// independent seed. Mining selects groups on the primary sample;
    /// computing their error bounds from this second sample removes the
    /// winner's-curse bias of estimating a group from the very draw that
    /// made it look extreme (see `docs/APPROX.md`).
    pub fn validation(&self) -> StratifiedSampler {
        StratifiedSampler {
            frac: self.frac,
            seed: splitmix64(self.seed ^ VALIDATION_SALT),
        }
    }

    /// Samples `rating_idx` with the process-default worker count.
    pub fn sample(&self, dataset: &Dataset, rating_idx: &[u32]) -> StratifiedSample {
        self.sample_with_threads(dataset, rating_idx, maprat_pool::num_threads())
    }

    /// Samples `rating_idx` with an explicit worker-count cap. The result
    /// is bit-identical for every `threads` value.
    pub fn sample_with_threads(
        &self,
        dataset: &Dataset,
        rating_idx: &[u32],
        threads: usize,
    ) -> StratifiedSample {
        let census = StratumCensus::over_with_threads(dataset, rating_idx, threads);
        self.sample_with_census(dataset, rating_idx, &census, threads)
    }

    /// Samples `rating_idx` reusing a memoized [`StratumCensus`] of the
    /// same universe, skipping Pass A entirely. Bit-identical to
    /// [`StratifiedSampler::sample_with_threads`] — the census is seed-
    /// and fraction-independent, so one census serves every sampler over
    /// the universe (the engine shares it between the primary and
    /// validation samples and across repeated sampled explains).
    ///
    /// # Panics
    /// Debug-asserts that the census was taken over a universe of the
    /// same size; a mismatched census would silently mis-select.
    pub fn sample_with_census(
        &self,
        dataset: &Dataset,
        rating_idx: &[u32],
        census: &StratumCensus,
        threads: usize,
    ) -> StratifiedSample {
        debug_assert_eq!(
            census.n,
            rating_idx.len(),
            "census universe size must match the sampled universe"
        );
        let codes = dataset.rating_user_codes();
        let n = rating_idx.len();
        if n == 0 {
            return StratifiedSample {
                rating_idx: Vec::new(),
                population: 0,
                strata: Vec::new(),
                requested_frac: self.frac,
                seed: self.seed,
            };
        }
        let chunks = n.div_ceil(CHUNK);
        let population = &census.population;
        let chunk_start_rank = &census.chunk_start_rank;

        // Per-stratum allocation and phase. `max(1, ceil(frac·N_s))`
        // guarantees rare cells survive; the phase is a pure function of
        // (seed, stratum) so no RNG state crosses strata or chunks.
        let mut alloc = vec![0u32; STRATUM_SPACE];
        let mut phase = vec![0u32; STRATUM_SPACE];
        for s in 0..STRATUM_SPACE {
            let pop = population[s];
            if pop == 0 {
                continue;
            }
            let want = (self.frac * f64::from(pop)).ceil() as u64;
            alloc[s] = want.clamp(1, u64::from(pop)) as u32;
            phase[s] = (splitmix64(self.seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                % u64::from(pop)) as u32;
        }

        // Pass B — systematic selection, Bresenham form: per stratum keep
        // rem = (rank·n_s + φ_s) mod N_s and select whenever adding n_s
        // carries past N_s. Each chunk seeds its counters from the fold's
        // prefix ranks, so chunks are independent and order-merged.
        let picks: Vec<Vec<u32>> = parallel_map(chunks, threads, |c| {
            let lo = c * CHUNK;
            let hi = ((c + 1) * CHUNK).min(n);
            let start = &chunk_start_rank[c];
            let mut rem = vec![0u64; STRATUM_SPACE];
            for s in 0..STRATUM_SPACE {
                if population[s] == 0 {
                    continue;
                }
                rem[s] = ((u128::from(start[s]) * u128::from(alloc[s]) + u128::from(phase[s]))
                    % u128::from(population[s])) as u64;
            }
            let mut out = Vec::with_capacity((hi - lo) / 8 + 16);
            for &r in &rating_idx[lo..hi] {
                let s = codes[r as usize] as usize;
                let next = rem[s] + u64::from(alloc[s]);
                if next >= u64::from(population[s]) {
                    rem[s] = next - u64::from(population[s]);
                    out.push(r);
                } else {
                    rem[s] = next;
                }
            }
            out
        });

        let mut selected = Vec::with_capacity(picks.iter().map(Vec::len).sum());
        for p in picks {
            selected.extend(p);
        }
        let strata: Vec<StratumSummary> = (0..STRATUM_SPACE)
            .filter(|&s| population[s] > 0)
            .map(|s| StratumSummary {
                code: s as u16,
                population: population[s],
                sampled: alloc[s],
            })
            .collect();
        debug_assert_eq!(
            selected.len() as u64,
            strata.iter().map(|s| u64::from(s.sampled)).sum::<u64>(),
            "systematic selection must hit every stratum allocation exactly"
        );
        StratifiedSample {
            rating_idx: selected,
            population: n,
            strata,
            requested_frac: self.frac,
            seed: self.seed,
        }
    }
}

/// Domain separator between a sampler's phase stream and its paired
/// validation sampler's phase stream.
const VALIDATION_SALT: u64 = 0xC0FF_EE11_D15C_0E5A;

/// SplitMix64 finalizer — the phase hash.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maprat_data::synth::{generate, SynthConfig};

    fn dataset() -> Dataset {
        generate(&SynthConfig::tiny(11)).unwrap()
    }

    fn full_universe(d: &Dataset) -> Vec<u32> {
        (0..d.ratings().len() as u32).collect()
    }

    #[test]
    fn sample_is_ordered_subset_with_exact_allocations() {
        let d = dataset();
        let idx = full_universe(&d);
        let s = StratifiedSampler::new(0.15, 1).sample(&d, &idx);
        assert_eq!(s.population, idx.len());
        assert!(s.sampled() < s.population);
        // Subset, strictly increasing (input order preserved).
        assert!(s.rating_idx.windows(2).all(|w| w[0] < w[1]));
        // Per-stratum counts in the output match the declared allocations.
        let codes = d.rating_user_codes();
        let mut got = vec![0u32; STRATUM_SPACE];
        for &r in &s.rating_idx {
            got[codes[r as usize] as usize] += 1;
        }
        for st in &s.strata {
            assert_eq!(got[st.code as usize], st.sampled, "code {}", st.code);
            assert!(st.sampled >= 1);
            assert!(st.sampled <= st.population);
        }
        // Census totals cover the whole universe.
        let total: u64 = s.strata.iter().map(|st| u64::from(st.population)).sum();
        assert_eq!(total, idx.len() as u64);
    }

    #[test]
    fn worker_count_does_not_change_the_sample() {
        let d = dataset();
        let idx = full_universe(&d);
        let sampler = StratifiedSampler::new(0.1, 99);
        let single = sampler.sample_with_threads(&d, &idx, 1);
        for threads in [2, 4, 16] {
            let multi = sampler.sample_with_threads(&d, &idx, threads);
            assert_eq!(single.rating_idx, multi.rating_idx, "threads={threads}");
            assert_eq!(single.strata, multi.strata, "threads={threads}");
        }
    }

    #[test]
    fn seed_changes_selection_but_not_census() {
        let d = dataset();
        let idx = full_universe(&d);
        let a = StratifiedSampler::new(0.1, 1).sample(&d, &idx);
        let b = StratifiedSampler::new(0.1, 2).sample(&d, &idx);
        assert_eq!(a.strata, b.strata, "census is seed-independent");
        assert_eq!(a.sampled(), b.sampled(), "allocations are seed-independent");
        assert_ne!(a.rating_idx, b.rating_idx, "phases move with the seed");
    }

    #[test]
    fn full_fraction_is_exhaustive_and_zero_keeps_one_per_stratum() {
        let d = dataset();
        let idx = full_universe(&d);
        let all = StratifiedSampler::new(1.0, 5).sample(&d, &idx);
        assert!(all.is_exhaustive());
        assert_eq!(all.rating_idx, idx);
        let floor = StratifiedSampler::new(0.0, 5).sample(&d, &idx);
        assert_eq!(floor.sampled(), floor.strata.len(), "one per stratum");
    }

    #[test]
    fn memoized_census_reproduces_the_direct_sample() {
        // One census serves every (seed, frac) sampler over the universe
        // bit-identically — the contract the engine's census memo rests on.
        let d = dataset();
        let idx = full_universe(&d);
        let census = StratumCensus::over(&d, &idx);
        assert_eq!(census.population(), idx.len());
        assert!(census.strata() >= 1);
        for (frac, seed) in [(0.1, 1u64), (0.25, 99), (0.0, 7)] {
            let sampler = StratifiedSampler::new(frac, seed);
            let direct = sampler.sample(&d, &idx);
            let via_census = sampler.sample_with_census(&d, &idx, &census, 1);
            assert_eq!(direct.rating_idx, via_census.rating_idx, "frac={frac}");
            assert_eq!(direct.strata, via_census.strata, "frac={frac}");
            let validation = sampler
                .validation()
                .sample_with_census(&d, &idx, &census, 1);
            assert_eq!(
                validation.rating_idx,
                sampler.validation().sample(&d, &idx).rating_idx,
                "validation shares the census"
            );
        }
    }

    #[test]
    fn empty_universe_yields_empty_sample() {
        let d = dataset();
        let s = StratifiedSampler::new(0.5, 3).sample(&d, &[]);
        assert_eq!(s.sampled(), 0);
        assert_eq!(s.population, 0);
        assert!(s.strata.is_empty());
        assert_eq!(s.achieved_frac(), 0.0);
    }

    #[test]
    fn census_query_matches_rescan() {
        let d = dataset();
        let idx = full_universe(&d);
        let s = StratifiedSampler::new(0.2, 8).sample(&d, &idx);
        let codes = d.rating_user_codes();
        use maprat_data::UserAttr;
        let pred = |c: PackedUserCode| c.field(UserAttr::Gender) == 0;
        let by_census = s.population_where(pred);
        let by_scan = idx
            .iter()
            .filter(|&&r| pred(PackedUserCode::from_raw(codes[r as usize])))
            .count() as u64;
        assert_eq!(by_census, by_scan);
    }

    #[test]
    fn subset_of_universe_strata_shrink() {
        let d = dataset();
        let idx: Vec<u32> = (0..d.ratings().len() as u32).step_by(3).collect();
        let s = StratifiedSampler::new(0.25, 4).sample(&d, &idx);
        assert_eq!(s.population, idx.len());
        assert!(s.rating_idx.iter().all(|r| idx.contains(r)));
    }
}
