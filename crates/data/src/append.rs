//! Live-append support: explicit id allocation, append batches and the
//! rating-index remap produced by [`Dataset::with_appended`].
//!
//! The dataset keeps its ratings sorted by `(item, ts, user)`, so appending
//! ratings to an existing item *inserts* into the middle of the dense rating
//! column and shifts every later index. [`IndexRemap`] captures that shift
//! exactly: retained cube state calls [`IndexRemap::remap_in_place`] after a
//! commit so its `rating_idx` lists stay aligned with the new dataset, and
//! in-flight readers keep their pinned `Arc<Dataset>` so old indexes stay
//! valid against the snapshot they were resolved on.
//!
//! [`Dataset::with_appended`]: crate::dataset::Dataset::with_appended

use crate::dataset::Dataset;
use crate::ids::{ItemId, UserId};
use crate::item::Item;
use crate::rating::Rating;
use crate::user::User;

/// Hands out dense ids for ingested users and items.
///
/// The dataset's columnar layout (and the 15-bit `PackedUserCode` column in
/// particular) requires every entity id to equal its dense table position.
/// Loader and synth paths guarantee this by construction at load time; the
/// ingest path must keep the invariant while the system is serving. This
/// allocator makes that contract explicit: it continues the id space of the
/// dataset it was derived from, so appends can neither collide with nor
/// reorder existing rows.
#[derive(Debug, Clone)]
pub struct IdAllocator {
    next_user: u32,
    next_item: u32,
}

impl IdAllocator {
    /// An allocator continuing `dataset`'s dense id space.
    pub fn for_dataset(dataset: &Dataset) -> Self {
        IdAllocator {
            next_user: dataset.users().len() as u32,
            next_item: dataset.items().len() as u32,
        }
    }

    /// An allocator starting after `num_users` users and `num_items` items.
    pub fn new(num_users: u32, num_items: u32) -> Self {
        IdAllocator {
            next_user: num_users,
            next_item: num_items,
        }
    }

    /// Allocates the next dense user id.
    pub fn alloc_user(&mut self) -> UserId {
        let id = UserId(self.next_user);
        self.next_user += 1;
        id
    }

    /// Allocates the next dense item id.
    pub fn alloc_item(&mut self) -> ItemId {
        let id = ItemId(self.next_item);
        self.next_item += 1;
        id
    }

    /// The next user id that [`alloc_user`](Self::alloc_user) would return.
    pub fn peek_user(&self) -> UserId {
        UserId(self.next_user)
    }

    /// The next item id that [`alloc_item`](Self::alloc_item) would return.
    pub fn peek_item(&self) -> ItemId {
        ItemId(self.next_item)
    }
}

/// A validated batch of entities and ratings to append to a dataset.
///
/// New users and items must carry ids allocated by an [`IdAllocator`]
/// continuing the target dataset ([`Dataset::with_appended`] rejects any
/// batch whose ids do not densely continue the existing tables). Ratings may
/// reference both pre-existing and batch-new entities.
#[derive(Debug, Clone, Default)]
pub struct AppendBatch {
    /// New users, ids continuing the dataset's user table.
    pub users: Vec<User>,
    /// New items, ids continuing the dataset's item table.
    pub items: Vec<Item>,
    /// New ratings over old or new entities.
    pub ratings: Vec<Rating>,
}

impl AppendBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the batch carries nothing.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty() && self.items.is_empty() && self.ratings.is_empty()
    }
}

/// Maps old-dataset rating indexes to their new-dataset positions after an
/// append.
///
/// Internally this is the sorted list of *old* positions in front of which a
/// new rating was spliced; an old index `o` moves to `o +` (number of
/// splices at positions `≤ o`).
#[derive(Debug, Clone, Default)]
pub struct IndexRemap {
    inserts: Vec<u32>,
}

impl IndexRemap {
    pub(crate) fn from_inserts(inserts: Vec<u32>) -> Self {
        debug_assert!(inserts.windows(2).all(|w| w[0] <= w[1]));
        IndexRemap { inserts }
    }

    /// Number of ratings the append spliced in.
    pub fn num_inserted(&self) -> usize {
        self.inserts.len()
    }

    /// True when the append left every old index unchanged (all new
    /// ratings landed strictly after the old column).
    pub fn is_identity(&self) -> bool {
        self.inserts.is_empty()
    }

    /// The new-dataset position of old rating index `old`.
    #[inline]
    pub fn remap(&self, old: u32) -> u32 {
        old + self.inserts.partition_point(|&p| p <= old) as u32
    }

    /// Remaps a list of old indexes in place.
    ///
    /// Sorted inputs stay sorted: the map is strictly monotone.
    pub fn remap_in_place(&self, idx: &mut [u32]) {
        if self.is_identity() {
            return;
        }
        for v in idx {
            *v = self.remap(*v);
        }
    }
}

/// The outcome of [`Dataset::with_appended`]: the merged dataset plus the
/// bookkeeping the serving layer needs to commit it.
#[derive(Debug)]
pub struct AppendResult {
    /// The new immutable dataset.
    pub dataset: Dataset,
    /// Distinct items whose rating slices changed (plus brand-new items),
    /// sorted ascending — the partition-scoped cache invalidation key.
    pub changed_items: Vec<ItemId>,
    /// New-dataset rating indexes of the appended ratings, ascending.
    pub appended_idx: Vec<u32>,
    /// Old-index → new-index translation for retained per-query state.
    pub remap: IndexRemap,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{AgeGroup, Gender, Occupation, UsState};
    use crate::dataset::DatasetBuilder;
    use crate::genre::{Genre, GenreSet};
    use crate::score::Score;
    use crate::time::Timestamp;
    use crate::zipcode::Zip;

    fn mk_user(id: u32, state: UsState) -> User {
        User {
            id: UserId(id),
            age: AgeGroup::From25To34,
            gender: Gender::Female,
            occupation: Occupation::Artist,
            zip: Zip::new(94103),
            state,
            city: 0,
        }
    }

    fn mk_item(id: u32, title: &str) -> Item {
        Item::new(ItemId(id), title, 1999, GenreSet::of([Genre::Drama]))
    }

    fn base() -> Dataset {
        let mut b = DatasetBuilder::new();
        b.add_user(mk_user(0, UsState::CA));
        b.add_user(mk_user(1, UsState::NY));
        b.add_item(mk_item(0, "Alpha"));
        b.add_item(mk_item(1, "Beta"));
        let t = |d| Timestamp::from_ymd(2001, 3, d);
        b.add_rating(Rating::new(
            UserId(0),
            ItemId(0),
            Score::new(4).unwrap(),
            t(1),
        ));
        b.add_rating(Rating::new(
            UserId(1),
            ItemId(0),
            Score::new(2).unwrap(),
            t(9),
        ));
        b.add_rating(Rating::new(
            UserId(0),
            ItemId(1),
            Score::new(5).unwrap(),
            t(4),
        ));
        b.build().unwrap()
    }

    #[test]
    fn allocator_continues_dense_id_space() {
        let d = base();
        let mut alloc = IdAllocator::for_dataset(&d);
        assert_eq!(alloc.peek_user(), UserId(2));
        assert_eq!(alloc.alloc_user(), UserId(2));
        assert_eq!(alloc.alloc_user(), UserId(3));
        assert_eq!(alloc.alloc_item(), ItemId(2));
        assert_eq!(alloc.peek_item(), ItemId(3));
    }

    #[test]
    fn remap_counts_inserts_at_or_before() {
        let remap = IndexRemap::from_inserts(vec![0, 2, 2]);
        // One splice before old 0, two before old 2.
        assert_eq!(remap.remap(0), 1);
        assert_eq!(remap.remap(1), 2);
        assert_eq!(remap.remap(2), 5);
        assert_eq!(remap.remap(3), 6);
        let mut idx = vec![0, 1, 2, 3];
        remap.remap_in_place(&mut idx);
        assert_eq!(idx, vec![1, 2, 5, 6]);
        assert!(!remap.is_identity());
        assert!(IndexRemap::default().is_identity());
    }

    #[test]
    fn append_merges_and_remaps() {
        let d = base();
        let mut alloc = IdAllocator::for_dataset(&d);
        let u2 = alloc.alloc_user();
        let mut batch = AppendBatch::new();
        batch.users.push(mk_user(u2.0, UsState::TX));
        let t = |day| Timestamp::from_ymd(2001, 3, day);
        // Splices between item 0's two ratings; tail-append on item 1.
        batch
            .ratings
            .push(Rating::new(u2, ItemId(0), Score::new(3).unwrap(), t(5)));
        batch
            .ratings
            .push(Rating::new(u2, ItemId(1), Score::new(1).unwrap(), t(20)));
        let out = d.with_appended(batch).unwrap();

        assert_eq!(out.dataset.num_ratings(), 5);
        assert_eq!(out.changed_items, vec![ItemId(0), ItemId(1)]);
        assert_eq!(out.appended_idx, vec![1, 4]);
        // Old indexes 0,1,2 → 0,2,3.
        assert_eq!(out.remap.remap(0), 0);
        assert_eq!(out.remap.remap(1), 2);
        assert_eq!(out.remap.remap(2), 3);
        // The merged column is exactly what a from-scratch build produces.
        let mut b = DatasetBuilder::new();
        for u in out.dataset.users() {
            b.add_user(u.clone());
        }
        for it in out.dataset.items() {
            b.add_item(it.clone());
        }
        for r in out.dataset.ratings() {
            b.add_rating(*r);
        }
        let rebuilt = b.build().unwrap();
        assert_eq!(rebuilt.ratings(), out.dataset.ratings());
        assert_eq!(rebuilt.rating_user_codes(), out.dataset.rating_user_codes());
        assert_eq!(rebuilt.rating_score_bins(), out.dataset.rating_score_bins());
        for item in [ItemId(0), ItemId(1)] {
            assert_eq!(
                rebuilt.rating_range_for_item(item),
                out.dataset.rating_range_for_item(item)
            );
        }
        for user in [UserId(0), UserId(1), u2] {
            assert_eq!(
                rebuilt.rating_indexes_for_user(user),
                out.dataset.rating_indexes_for_user(user)
            );
        }
    }

    #[test]
    fn append_rejects_gapped_user_ids() {
        let d = base();
        let mut batch = AppendBatch::new();
        batch.users.push(mk_user(7, UsState::TX)); // dense next id is 2
        let err = d.with_appended(batch).unwrap_err();
        assert!(err.to_string().contains("dense"), "{err}");
    }

    #[test]
    fn append_rejects_dangling_refs() {
        let d = base();
        let mut batch = AppendBatch::new();
        batch.ratings.push(Rating::new(
            UserId(9),
            ItemId(0),
            Score::new(3).unwrap(),
            Timestamp::from_ymd(2001, 4, 1),
        ));
        assert!(matches!(
            d.with_appended(batch),
            Err(crate::error::DataError::UnknownUser(9))
        ));
    }

    #[test]
    fn tail_append_is_identity_remap() {
        let d = base();
        let mut batch = AppendBatch::new();
        // Item 1 is the last item; a late timestamp lands after everything.
        batch.ratings.push(Rating::new(
            UserId(0),
            ItemId(1),
            Score::new(2).unwrap(),
            Timestamp::from_ymd(2002, 1, 1),
        ));
        let out = d.with_appended(batch).unwrap();
        assert!(out.remap.is_identity());
        assert_eq!(out.appended_idx, vec![3]);
        assert_eq!(out.changed_items, vec![ItemId(1)]);
    }

    #[test]
    fn new_item_with_ratings_appends_at_tail() {
        let d = base();
        let mut alloc = IdAllocator::for_dataset(&d);
        let i2 = alloc.alloc_item();
        let mut batch = AppendBatch::new();
        batch.items.push(mk_item(i2.0, "Gamma"));
        batch.ratings.push(Rating::new(
            UserId(1),
            i2,
            Score::new(5).unwrap(),
            Timestamp::from_ymd(2001, 6, 1),
        ));
        let out = d.with_appended(batch).unwrap();
        assert!(out.remap.is_identity());
        assert_eq!(out.dataset.find_title("gamma"), Some(i2));
        assert_eq!(out.dataset.ratings_for_item(i2).len(), 1);
        assert_eq!(out.changed_items, vec![i2]);
    }
}
