//! A minimal JSON document model: writer + parser.
//!
//! The approved dependency set has no `serde_json`, and the demo API only
//! needs to *emit* JSON plus round-trip it in tests, so this module
//! implements the subset precisely: correct string escaping (including
//! control characters), finite-number formatting, and a recursive-descent
//! parser used by the test-suite and by API-consuming tooling.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
///
/// ```
/// use maprat_server::Json;
/// let doc = Json::obj([("mean", Json::Num(4.5)), ("label", Json::str("CA"))]);
/// assert_eq!(doc.render(), r#"{"label":"CA","mean":4.5}"#);
/// assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite inputs render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys — deterministic output).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serializes to a compact JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Accesses an object member.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Accesses an array element.
    pub fn at(&self, idx: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(idx),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Array length, if it is one.
    pub fn len(&self) -> Option<usize> {
        match self {
            Json::Arr(items) => Some(items.len()),
            _ => None,
        }
    }

    /// Whether the value is an empty array.
    pub fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }

    /// Parses a JSON document.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("invalid utf-8 in string: {e}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| "eof in escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are rare in our data; combine
                            // when present.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let hex2 =
                                        std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                            .map_err(|_| "bad low surrogate".to_string())?;
                                    let low = u32::from_str_radix(hex2, 16)
                                        .map_err(|_| "bad low surrogate".to_string())?;
                                    self.pos += 4;
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    return Err("lone high surrogate".into());
                                }
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(ch).ok_or_else(|| "bad codepoint".to_string())?,
                            );
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => return Err(format!("expected , or }} found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(3.25).render(), "3.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::str("hi").render(), "\"hi\"");
    }

    #[test]
    fn escapes_strings() {
        let s = Json::str("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn renders_structures_deterministically() {
        let v = Json::obj([
            ("b", Json::Num(2.0)),
            ("a", Json::Arr(vec![Json::Num(1.0), Json::Null])),
        ]);
        assert_eq!(v.render(), r#"{"a":[1,null],"b":2}"#);
    }

    #[test]
    fn parse_round_trips() {
        let docs = [
            r#"{"a":[1,2.5,null,true,"x\ny"],"b":{"c":false}}"#,
            "[]",
            "{}",
            r#""unicode: héllo ♂""#,
            "-12.5e2",
        ];
        for doc in docs {
            let v = Json::parse(doc).unwrap();
            let round = Json::parse(&v.render()).unwrap();
            assert_eq!(v, round, "{doc}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse(r#""\q""#).is_err());
    }

    #[test]
    fn surrogate_pairs() {
        let v = Json::parse(r#""🍺""#).unwrap();
        assert_eq!(v.as_str(), Some("🍺"));
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"groups":[{"label":"x","mean":4.5}]}"#).unwrap();
        let first = v.get("groups").and_then(|g| g.at(0)).unwrap();
        assert_eq!(first.get("label").and_then(Json::as_str), Some("x"));
        assert_eq!(first.get("mean").and_then(Json::as_f64), Some(4.5));
        assert_eq!(v.get("groups").and_then(Json::len), Some(1));
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").and_then(Json::len), Some(2));
    }
}
