//! Popularity-driven background precompute.
//!
//! The paper's demo stayed interactive through "aggressive … result
//! pre-computation" (§2.3). [`PrecomputeScheduler`] makes that
//! continuous: routes record every explain they serve, and a ticker
//! re-warms the most popular requests that have fallen out of the cache
//! — so the entries users actually revisit are the ones that answer at
//! cache latency.
//!
//! Warm work *rides idle pool workers*: the ticker itself is a
//! lightweight thread that never mines; each tick it submits at most one
//! short job to the shared worker pool, and that job warms at most
//! [`budget`](PrecomputeScheduler::start_with) requests. Backpressure is
//! explicit and two-layered — a tick is skipped entirely while any
//! foreground explain is in flight, and the warm job re-checks the
//! foreground gauge between requests and yields early. Foreground
//! traffic therefore always wins: the scheduler only ever spends worker
//! time that would otherwise be idle.
//!
//! Tuned by `MAPRAT_PRECOMPUTE_BUDGET` (warms per tick, default 2;
//! `0` disables the scheduler) and `MAPRAT_PRECOMPUTE_MS` (tick
//! interval, default 50 ms).

use crate::engine::{ExplainRequest, MapRatEngine};
use maprat_core::pool;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// How many popularity entries we track before pruning cold ones.
const MAX_TRACKED: usize = 1024;

struct SchedulerInner {
    engine: MapRatEngine,
    popularity: Mutex<HashMap<ExplainRequest, u64>>,
    budget: usize,
    /// `stop` flag behind a mutex so [`PrecomputeScheduler::stop`] can
    /// interrupt the ticker's inter-tick wait via `stop_signal` instead
    /// of sleeping out the full interval.
    stop: Mutex<bool>,
    stop_signal: Condvar,
    tick_in_flight: AtomicBool,
    warmed: AtomicU64,
    deferred: AtomicU64,
}

/// A background warmer bound to one [`MapRatEngine`] (see the
/// [module docs](self) for the scheduling and backpressure model).
///
/// Dropping the scheduler stops the ticker. In-flight warm jobs finish
/// (they are short by construction) but no new ticks fire.
pub struct PrecomputeScheduler {
    inner: Arc<SchedulerInner>,
    ticker: Option<std::thread::JoinHandle<()>>,
}

impl PrecomputeScheduler {
    /// Starts a scheduler with environment-tuned budget and interval
    /// (`MAPRAT_PRECOMPUTE_BUDGET`, `MAPRAT_PRECOMPUTE_MS`).
    pub fn start(engine: MapRatEngine) -> Self {
        let budget = std::env::var("MAPRAT_PRECOMPUTE_BUDGET")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2);
        let interval = std::env::var("MAPRAT_PRECOMPUTE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .map(Duration::from_millis)
            .unwrap_or(Duration::from_millis(50));
        Self::start_with(engine, budget, interval)
    }

    /// Starts a scheduler with an explicit per-tick warm budget and tick
    /// interval. A `budget` of 0 records popularity but never warms.
    pub fn start_with(engine: MapRatEngine, budget: usize, interval: Duration) -> Self {
        let inner = Arc::new(SchedulerInner {
            engine,
            popularity: Mutex::new(HashMap::new()),
            budget,
            stop: Mutex::new(false),
            stop_signal: Condvar::new(),
            tick_in_flight: AtomicBool::new(false),
            warmed: AtomicU64::new(0),
            deferred: AtomicU64::new(0),
        });
        let ticker = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("maprat-precompute".into())
                .spawn(move || loop {
                    // Interruptible inter-tick wait: `stop()` flips the
                    // flag and notifies, so shutdown never waits out the
                    // interval (which may be hours in tests). The flag is
                    // checked *before* waiting too — a stop that lands
                    // while the ticker is outside the wait (or before its
                    // first one) must not be lost for a full interval.
                    let stopped = lock(&inner.stop);
                    if *stopped {
                        return;
                    }
                    let (stopped, timeout) = inner
                        .stop_signal
                        .wait_timeout(stopped, interval)
                        .unwrap_or_else(PoisonError::into_inner);
                    if *stopped {
                        return;
                    }
                    drop(stopped); // never tick while holding the lock
                    if timeout.timed_out() {
                        inner.dispatch_tick();
                    }
                })
                .expect("spawn precompute ticker")
        };
        PrecomputeScheduler {
            inner,
            ticker: Some(ticker),
        }
    }

    /// Records one served request: the popularity signal the warm picks
    /// maximise. Cheap enough to call on every explain route hit.
    pub fn record(&self, request: &ExplainRequest) {
        let mut popularity = lock(&self.inner.popularity);
        if popularity.len() >= MAX_TRACKED && !popularity.contains_key(request) {
            // Prune the cold half rather than grow without bound.
            popularity.retain(|_, count| *count > 1);
        }
        *popularity.entry(request.clone()).or_insert(0) += 1;
    }

    /// Runs one warm pass synchronously on the calling thread (the
    /// ticker submits exactly this as a pool job; tests call it directly
    /// for determinism). Returns how many requests were warmed.
    pub fn tick_once(&self) -> usize {
        self.inner.tick_once()
    }

    /// Requests warmed so far.
    pub fn warmed(&self) -> u64 {
        self.inner.warmed.load(Ordering::Relaxed)
    }

    /// Ticks skipped or cut short because foreground traffic was in
    /// flight (the backpressure counter).
    pub fn deferred(&self) -> u64 {
        self.inner.deferred.load(Ordering::Relaxed)
    }

    /// Stops the ticker and waits for it to exit (immediately — the
    /// ticker's wait is interruptible, not a sleep).
    pub fn stop(&mut self) {
        *lock(&self.inner.stop) = true;
        self.inner.stop_signal.notify_all();
        if let Some(ticker) = self.ticker.take() {
            let _ = ticker.join();
        }
    }
}

impl Drop for PrecomputeScheduler {
    fn drop(&mut self) {
        self.stop();
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl SchedulerInner {
    /// Ticker-side gate: skip under foreground load or while a previous
    /// warm job is still running, otherwise submit one pool job.
    fn dispatch_tick(self: &Arc<Self>) {
        if self.budget == 0 {
            return;
        }
        if self.engine.foreground_inflight() > 0 {
            self.deferred.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if self
            .tick_in_flight
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return; // previous warm job still on the pool
        }
        let inner = Arc::clone(self);
        pool::global().spawn(move || {
            let _ = inner.tick_once();
            inner.tick_in_flight.store(false, Ordering::SeqCst);
        });
    }

    fn tick_once(&self) -> usize {
        // Most-popular-first; ties broken by fingerprint for determinism.
        let mut candidates: Vec<(u64, ExplainRequest)> = lock(&self.popularity)
            .iter()
            .map(|(request, &count)| (count, request.clone()))
            .collect();
        candidates
            .sort_by_key(|(count, request)| (std::cmp::Reverse(*count), request.fingerprint()));
        // Assemble up to `budget` non-resident requests, then warm them
        // as ONE fused batch: requests sharing cube-build options pay a
        // single combined cube build (`MapRatEngine::explain_batch`)
        // instead of one dataset scan each.
        let mut batch: Vec<ExplainRequest> = Vec::new();
        for (_, request) in candidates {
            if batch.len() >= self.budget {
                break;
            }
            if self.engine.foreground_inflight() > 0 {
                // Foreground arrived mid-pass: yield the worker now.
                self.deferred.fetch_add(1, Ordering::Relaxed);
                break;
            }
            if !self.engine.cached(&request) {
                batch.push(request);
            }
        }
        let warmed = self.engine.warm_batch(&batch);
        self.warmed.fetch_add(warmed as u64, Ordering::Relaxed);
        warmed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maprat_core::query::ItemQuery;
    use maprat_core::SearchSettings;
    use maprat_data::synth::{generate, SynthConfig};

    fn engine() -> MapRatEngine {
        MapRatEngine::from_dataset(generate(&SynthConfig::tiny(117)).unwrap())
    }

    fn request(title: &str) -> ExplainRequest {
        ExplainRequest::new(
            ItemQuery::title(title),
            SearchSettings::default()
                .with_min_coverage(0.1)
                .with_require_geo(false),
        )
    }

    #[test]
    fn tick_warms_most_popular_first() {
        let engine = engine();
        // Budget 0 + long interval: the ticker never warms on its own, so
        // the synchronous tick below is the only actor.
        let scheduler =
            PrecomputeScheduler::start_with(engine.clone(), 0, Duration::from_secs(3600));
        let popular = request("Toy Story");
        for _ in 0..5 {
            scheduler.record(&popular);
        }
        scheduler.record(&request("No Such Movie"));
        // Budget-0 scheduler records but never warms.
        assert_eq!(scheduler.tick_once(), 0);
        assert_eq!(engine.cache_len(), 0);

        let scheduler2 =
            PrecomputeScheduler::start_with(engine.clone(), 1, Duration::from_secs(3600));
        for _ in 0..5 {
            scheduler2.record(&popular);
        }
        scheduler2.record(&request("No Such Movie"));
        assert_eq!(scheduler2.tick_once(), 1, "one warm within budget");
        assert_eq!(scheduler2.warmed(), 1);
        let (_, served) = engine.explain_traced(&popular);
        assert_eq!(
            served,
            crate::engine::ServedFrom::ResultCache,
            "the popular request was the one warmed"
        );
    }

    #[test]
    fn warmed_entries_are_not_rewarmed() {
        let engine = engine();
        let scheduler =
            PrecomputeScheduler::start_with(engine.clone(), 4, Duration::from_secs(3600));
        scheduler.record(&request("Toy Story"));
        assert_eq!(scheduler.tick_once(), 1);
        assert_eq!(scheduler.tick_once(), 0, "already resident → no work");
        assert_eq!(scheduler.warmed(), 1);
    }

    #[test]
    fn background_ticker_warms_recorded_requests() {
        let engine = engine();
        let mut scheduler =
            PrecomputeScheduler::start_with(engine.clone(), 2, Duration::from_millis(5));
        scheduler.record(&request("Toy Story"));
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while scheduler.warmed() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(scheduler.warmed() >= 1, "ticker warmed in the background");
        scheduler.stop();
        let warmed = scheduler.warmed();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(scheduler.warmed(), warmed, "no warms after stop");
    }

    #[test]
    fn popularity_table_is_bounded() {
        let engine = engine();
        let scheduler = PrecomputeScheduler::start_with(engine, 0, Duration::from_secs(3600));
        for i in 0..(MAX_TRACKED + 200) {
            scheduler.record(&request(&format!("Movie {i}")));
        }
        assert!(lock(&scheduler.inner.popularity).len() <= MAX_TRACKED + 1);
    }
}
