//! The §1 motivating example: a controversial movie whose single overall
//! average hides everything. Diversity Mining splits it open.
//!
//! Paper narration (The Twilight Saga: Eclipse): "the average rating of
//! all reviewers is 4.8 on a scale of 10 [i.e. ≈2.4/5]… female reviewers
//! under 18 and female reviewers above 45 love the movie (SM). … male
//! reviewers under 18 and female reviewers under 18 consistently disagree
//! … the former group hates it while the latter loves it (DM)."
//!
//! Run with `cargo run --release --example controversial`.

use maprat::core::query::ItemQuery;
use maprat::core::Miner;
use maprat::core::SearchSettings;
use maprat::data::synth::{generate, SynthConfig};

fn main() {
    let dataset = generate(&SynthConfig::small(42)).expect("generation succeeds");
    let miner = Miner::new(&dataset);

    // The §1 narration speaks in pure demographic groups, so the geo
    // requirement is off here (the map demo of §3 turns it on). The
    // coverage setting is low because demographic cells are small slices
    // of a heavily rated item — exactly why the Figure-1 form exposes it.
    let settings = SearchSettings::default()
        .with_require_geo(false)
        .with_min_coverage(0.08)
        .with_max_groups(2);

    let query = ItemQuery::title("The Twilight Saga: Eclipse");
    let explanation = miner.explain(&query, &settings).expect("planted movie");

    let overall = explanation.total.mean().unwrap();
    println!(
        "overall average: {:.2}/5 (the paper's '4.8 on a scale of 10') — useless on its own",
        overall
    );
    print!("{}", explanation.similarity.render_text());
    print!("{}", explanation.diversity.render_text());

    // Show the DM gap explicitly.
    if explanation.diversity.groups.len() >= 2 {
        let means: Vec<(String, f64)> = explanation
            .diversity
            .groups
            .iter()
            .map(|g| (g.label.clone(), g.stats.mean().unwrap()))
            .collect();
        let (max, min) = (
            means
                .iter()
                .cloned()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap(),
            means
                .iter()
                .cloned()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap(),
        );
        println!(
            "disagreement: {} ({:.2}) vs {} ({:.2}) — gap {:.2} points",
            max.0,
            max.1,
            min.0,
            min.1,
            max.1 - min.1
        );
    }
}
