//! Synthetic MovieLens-scale dataset generation.
//!
//! The paper's demo runs on the MovieLens-1M dataset joined with IMDB
//! metadata (§3), which this reproduction cannot ship. This module builds a
//! statistically faithful substitute:
//!
//! * the same cardinalities (6040 users / ~3900 movies / 1M ratings at the
//!   `movielens_1m` preset) and the same attribute domains;
//! * MovieLens-like marginals — age/gender/occupation distributions from
//!   the published ML-1M statistics, state distribution proportional to
//!   population, Zipf-like item popularity, long-tailed user activity;
//! * a latent *demographic affinity* rating model, so that demographic
//!   groups genuinely differ in how they rate — the structure MapRat mines;
//! * **planted scenarios** ([`planted`]) reproducing the paper's named
//!   examples (Toy Story, The Twilight Saga: Eclipse, Tom Hanks / Steven
//!   Spielberg catalogues, the Lord of the Rings trilogy) with known ground
//!   truth, which the figure-regeneration binaries and integration tests
//!   assert against.
//!
//! Everything is deterministic given [`SynthConfig::seed`].

mod affinity;
mod config;
mod movies;
mod names;
pub mod planted;
mod ratings;
mod users;

pub use affinity::MovieAffinity;
pub use config::SynthConfig;
pub use planted::{PlantRule, PlantedScenario};

use crate::dataset::{Dataset, DatasetBuilder};
use crate::error::DataError;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generates a complete synthetic dataset from a configuration.
pub fn generate(config: &SynthConfig) -> Result<Dataset, DataError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = DatasetBuilder::new();

    users::generate_users(config, &mut rng, &mut builder);
    let movie_world = movies::generate_movies(config, &mut rng, &mut builder);
    ratings::generate_ratings(config, &mut rng, &mut builder, &movie_world);

    builder.build()
}

/// Convenience: the small demo dataset used by examples and integration
/// tests (deterministic, ~60k ratings, includes all planted scenarios).
pub fn demo_dataset() -> Dataset {
    generate(&SynthConfig::small(42)).expect("demo generation cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{Gender, UserAttr};

    #[test]
    fn tiny_generation_is_deterministic() {
        let cfg = SynthConfig::tiny(7);
        let a = generate(&cfg).unwrap();
        let b = generate(&cfg).unwrap();
        assert_eq!(a.num_ratings(), b.num_ratings());
        assert_eq!(a.users().len(), b.users().len());
        // Spot-check identical tuples.
        for (x, y) in a.ratings().iter().zip(b.ratings()).step_by(97) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SynthConfig::tiny(1)).unwrap();
        let b = generate(&SynthConfig::tiny(2)).unwrap();
        let same = a
            .ratings()
            .iter()
            .zip(b.ratings())
            .filter(|(x, y)| x == y)
            .count();
        assert!(same < a.num_ratings(), "seeds produce identical data");
    }

    #[test]
    fn cardinalities_match_config() {
        let cfg = SynthConfig::tiny(3);
        let d = generate(&cfg).unwrap();
        assert_eq!(d.users().len(), cfg.num_users);
        assert!(
            d.items().len() >= cfg.num_movies,
            "planted movies add extras"
        );
        // Rating count is approximate (duplicate (user,item) draws are
        // rejected) but must be close.
        let target = cfg.num_ratings;
        assert!(
            d.num_ratings() as f64 > target as f64 * 0.9,
            "only {} of {target}",
            d.num_ratings()
        );
    }

    #[test]
    fn gender_skew_matches_movielens() {
        // ML-1M is ~72% male.
        let d = generate(&SynthConfig::small(11)).unwrap();
        let male = d
            .users()
            .iter()
            .filter(|u| u.gender == Gender::Male)
            .count() as f64
            / d.users().len() as f64;
        assert!((0.62..0.82).contains(&male), "male fraction {male}");
    }

    #[test]
    fn all_attribute_values_inhabited_at_small_scale() {
        let d = generate(&SynthConfig::small(5)).unwrap();
        for attr in UserAttr::ALL {
            let mut seen = vec![false; attr.cardinality()];
            for u in d.users() {
                seen[u.attr_value(attr).value_index()] = true;
            }
            let inhabited = seen.iter().filter(|&&b| b).count();
            // States may miss a couple of tiny ones at this scale.
            assert!(
                inhabited * 10 >= seen.len() * 9,
                "{attr}: only {inhabited}/{} values inhabited",
                seen.len()
            );
        }
    }

    #[test]
    fn time_span_within_configured_window() {
        let cfg = SynthConfig::tiny(9);
        let d = generate(&cfg).unwrap();
        let (lo, hi) = d.time_span().unwrap();
        assert!(lo >= cfg.time_start);
        assert!(hi < cfg.time_end);
    }
}
