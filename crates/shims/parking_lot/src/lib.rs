//! Offline stand-in for the subset of the `parking_lot` API that MapRat
//! uses: a [`Mutex`]/[`RwLock`] whose guards are returned directly (no
//! poisoning `Result`), implemented over `std::sync` primitives.
//!
//! Poisoning is handled the way `parking_lot` behaves observably: a
//! panicked holder does not poison the lock for later users.

#![warn(missing_docs)]

use std::sync::{self, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning like `parking_lot` does.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn no_poisoning_on_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
