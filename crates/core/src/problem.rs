//! The SM/DM optimization problems over a candidate pool (§2.2).
//!
//! A solution is a subset `S` of the cube's candidate groups with
//! `|S| ≤ k`, subject to the *coverage constraint*
//! `|∪_{g∈S} cover(g)| ≥ α·|R_I|`. The objective depends on the task:
//!
//! * **Similarity**: maximize `1 − err(S)/4`, where `err(S)` is the mean
//!   absolute deviation of covered ratings from their group averages
//!   (ratings covered by several selected groups count once per group, as
//!   in the MRI description-error formulation);
//! * **Diversity**: maximize the mean pairwise gap between group averages,
//!   normalized to `[0, 1]`, minus `λ · err(S)/4` so that disagreeing
//!   groups are still internally consistent.

use maprat_cube::{Bitmap, CandidateGroup, RatingCube};
use std::sync::Mutex;

/// Which of the two mining sub-problems to solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// Similarity Mining: groups that rate consistently.
    Similarity,
    /// Diversity Mining: groups that disagree with each other.
    Diversity,
}

impl Task {
    /// Both tasks.
    pub const ALL: [Task; 2] = [Task::Similarity, Task::Diversity];

    /// Display name as used in the UI tabs.
    pub fn name(self) -> &'static str {
        match self {
            Task::Similarity => "Similarity Mining",
            Task::Diversity => "Diversity Mining",
        }
    }
}

/// A mining problem instance: candidate pool + constraints.
///
/// Construction precomputes per-candidate scalars (support, mean, mean
/// absolute deviation) and the descending-support prefix sums, so the
/// solver's inner loops and [`max_achievable_coverage`] never re-derive
/// them from the cube's aggregates.
///
/// [`max_achievable_coverage`]: MiningProblem::max_achievable_coverage
pub struct MiningProblem<'a> {
    cube: &'a RatingCube,
    /// Group budget `k`.
    pub max_groups: usize,
    /// Coverage constraint `α`.
    pub min_coverage: f64,
    /// DM consistency penalty `λ`.
    pub dm_lambda: f64,
    /// Per-candidate `stats.count()` as `f64`.
    pub(crate) cand_n: Vec<f64>,
    /// Per-candidate `stats.count()` as integers — the solver's bound
    /// gates compare these against precomputed integer thresholds (one
    /// add + compare per scanned candidate, no float division).
    pub(crate) cand_support: Vec<u32>,
    /// Per-candidate mean absolute deviation.
    pub(crate) cand_mad: Vec<f64>,
    /// Per-candidate mean rating.
    pub(crate) cand_mean: Vec<f64>,
    /// `support_prefix[j]` = sum of the `j` largest candidate supports.
    support_prefix: Vec<usize>,
    /// Sparse cover word entries, all candidates concatenated: candidate
    /// `i` owns `word_idx/word_bits[word_offsets[i]..word_offsets[i+1]]`
    /// — only its covers' *non-zero* blocks. Coverage probes intersect
    /// these few entries against the scratch unions instead of streaming
    /// every candidate's full dense bitmap per scan.
    word_idx: Vec<u32>,
    word_bits: Vec<u64>,
    word_offsets: Vec<u32>,
    /// Reusable union scratch for [`coverage`](MiningProblem::coverage), so
    /// the cold path stops allocating a fresh bitmap per call.
    cover_scratch: Mutex<Bitmap>,
}

impl<'a> MiningProblem<'a> {
    /// Creates a problem over a materialized cube.
    pub fn new(cube: &'a RatingCube, max_groups: usize, min_coverage: f64, dm_lambda: f64) -> Self {
        let groups = cube.groups();
        let cand_n: Vec<f64> = groups.iter().map(|g| g.stats.count() as f64).collect();
        let cand_support: Vec<u32> = groups.iter().map(|g| g.support() as u32).collect();
        let cand_mad: Vec<f64> = groups
            .iter()
            .map(|g| g.stats.mean_abs_deviation().unwrap_or(0.0))
            .collect();
        let cand_mean: Vec<f64> = groups
            .iter()
            .map(|g| g.stats.mean().unwrap_or(0.0))
            .collect();
        let mut supports: Vec<usize> = groups.iter().map(|g| g.support()).collect();
        supports.sort_unstable_by_key(|&s| std::cmp::Reverse(s));
        let mut support_prefix = Vec::with_capacity(supports.len() + 1);
        support_prefix.push(0);
        for s in supports {
            support_prefix.push(support_prefix.last().expect("non-empty prefix") + s);
        }
        let mut word_idx: Vec<u32> = Vec::new();
        let mut word_bits: Vec<u64> = Vec::new();
        let mut word_offsets: Vec<u32> = Vec::with_capacity(groups.len() + 1);
        word_offsets.push(0);
        for g in groups {
            g.cover.for_each_set_word(|w, bits| {
                word_idx.push(w as u32);
                word_bits.push(bits);
            });
            word_offsets.push(word_idx.len() as u32);
        }
        MiningProblem {
            cube,
            max_groups,
            min_coverage,
            dm_lambda,
            cand_n,
            cand_support,
            cand_mad,
            cand_mean,
            support_prefix,
            word_idx,
            word_bits,
            word_offsets,
            cover_scratch: Mutex::new(Bitmap::new(cube.universe())),
        }
    }

    /// `|cover(candidate) \ base|` where `base` is a union scratch's raw
    /// blocks: the number of positions the candidate would add to it.
    /// Exactly `base.union_count(cover) - base.count()`, but it touches
    /// only the candidate's non-zero blocks — candidate covers are
    /// sparse, so a scan over the pool streams a fraction of the bytes
    /// the dense unions would.
    #[inline]
    pub(crate) fn missing_count(&self, candidate: usize, base: &[u64]) -> usize {
        let range =
            self.word_offsets[candidate] as usize..self.word_offsets[candidate + 1] as usize;
        let mut missing = 0usize;
        for (&w, &bits) in self.word_idx[range.clone()]
            .iter()
            .zip(&self.word_bits[range])
        {
            debug_assert!((w as usize) < base.len(), "cover block outside universe");
            // SAFETY: every entry's block index comes from a cover of the
            // same universe as `base` (both `ceil(universe/64)` blocks),
            // so `w < base.len()` by construction. This probe runs ~10⁵
            // times per solve; the bounds check is measurable.
            missing += (bits & !unsafe { *base.get_unchecked(w as usize) }).count_ones() as usize;
        }
        missing
    }

    /// Precomputed `(count, mean absolute deviation, mean)` of candidate
    /// `i` — the scalars every incremental probe combines.
    #[inline]
    pub(crate) fn cand(&self, i: usize) -> (f64, f64, f64) {
        (self.cand_n[i], self.cand_mad[i], self.cand_mean[i])
    }

    /// The task score assembled from running aggregates: `err_weighted` /
    /// `err_total` are the description-error sums `Σ n·mad` / `Σ n`, and
    /// `pair_sum` is `Σ_{i<j} |mean_i − mean_j|` over the `k` members.
    /// Single source of truth shared by the naive evaluation below and the
    /// incremental [`SelectionEval`](crate::eval::SelectionEval).
    pub(crate) fn score_from_parts(
        &self,
        task: Task,
        k: usize,
        err_weighted: f64,
        err_total: f64,
        pair_sum: f64,
    ) -> f64 {
        let err = if err_total == 0.0 {
            0.0
        } else {
            err_weighted / err_total
        };
        match task {
            Task::Similarity => 1.0 - err / 4.0,
            Task::Diversity => {
                let gap = if k < 2 {
                    0.0
                } else {
                    pair_sum / (k * (k - 1) / 2) as f64 / 4.0
                };
                gap - self.dm_lambda * err / 4.0
            }
        }
    }

    /// The candidate pool.
    pub fn candidates(&self) -> &[CandidateGroup] {
        self.cube.groups()
    }

    /// The cube the problem ranges over.
    pub fn cube(&self) -> &RatingCube {
        self.cube
    }

    /// Number of candidates.
    pub fn pool_size(&self) -> usize {
        self.cube.len()
    }

    /// The effective selection size: `min(k, pool)`.
    pub fn selection_size(&self) -> usize {
        self.max_groups.min(self.pool_size())
    }

    /// Union cover of a selection, written into `scratch` (cleared first).
    pub fn union_into(&self, selection: &[usize], scratch: &mut Bitmap) {
        scratch.clear();
        for &i in selection {
            scratch.union_with(&self.cube.groups()[i].cover);
        }
    }

    /// Coverage fraction of a selection.
    ///
    /// Reuses an internal union scratch (no allocation per call); callers
    /// on the solver's hot path should use the incremental
    /// [`SelectionEval`](crate::eval::SelectionEval) instead.
    pub fn coverage(&self, selection: &[usize]) -> f64 {
        if self.cube.universe() == 0 {
            return 0.0;
        }
        let mut scratch = self
            .cover_scratch
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        self.union_into(selection, &mut scratch);
        scratch.count() as f64 / self.cube.universe() as f64
    }

    /// Whether a selection satisfies both constraints.
    pub fn is_feasible(&self, selection: &[usize]) -> bool {
        selection.len() <= self.max_groups && self.coverage(selection) + 1e-12 >= self.min_coverage
    }

    /// The description error `err(S) ∈ [0, 4]`: covered-rating-weighted
    /// mean absolute deviation from group averages.
    pub fn description_error(&self, selection: &[usize]) -> f64 {
        let mut weighted = 0.0;
        let mut total = 0.0;
        for &i in selection {
            weighted += self.cand_mad[i] * self.cand_n[i];
            total += self.cand_n[i];
        }
        if total == 0.0 {
            0.0
        } else {
            weighted / total
        }
    }

    /// The similarity score `1 − err/4 ∈ [0, 1]` (higher = more consistent).
    pub fn similarity_score(&self, selection: &[usize]) -> f64 {
        1.0 - self.description_error(selection) / 4.0
    }

    /// Mean pairwise disagreement between group averages, normalized to
    /// `[0, 1]`. Zero for selections of fewer than two groups.
    pub fn diversity_gap(&self, selection: &[usize]) -> f64 {
        if selection.len() < 2 {
            return 0.0;
        }
        let mut sum = 0.0;
        let mut pairs = 0usize;
        for i in 0..selection.len() {
            for j in i + 1..selection.len() {
                sum += (self.cand_mean[selection[i]] - self.cand_mean[selection[j]]).abs();
                pairs += 1;
            }
        }
        sum / pairs as f64 / 4.0
    }

    /// The diversity score `gap − λ·err/4` (may be negative for terrible
    /// selections; normalized components keep λ interpretable).
    pub fn diversity_score(&self, selection: &[usize]) -> f64 {
        self.diversity_gap(selection) - self.dm_lambda * self.description_error(selection) / 4.0
    }

    /// The task objective (always maximized).
    pub fn objective(&self, task: Task, selection: &[usize]) -> f64 {
        match task {
            Task::Similarity => self.similarity_score(selection),
            Task::Diversity => self.diversity_score(selection),
        }
    }

    /// Provable upper bound on achievable coverage with `k` groups: the
    /// sum of the `k` largest supports (which over-counts overlaps),
    /// capped at 1.
    ///
    /// Used to detect provably infeasible constraint combinations before
    /// searching; when the bound is met the constraint may still be
    /// unachievable, in which case the solver reports
    /// `meets_coverage = false` on its best effort.
    ///
    /// `O(1)`: the descending-support prefix sums are computed once at
    /// construction instead of cloning and sorting the pool per call.
    pub fn max_achievable_coverage(&self) -> f64 {
        if self.cube.universe() == 0 {
            return 0.0;
        }
        let top = self.support_prefix[self.selection_size()];
        (top as f64 / self.cube.universe() as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maprat_cube::CubeOptions;
    use maprat_data::synth::{generate, SynthConfig};
    use maprat_data::Dataset;

    fn setup() -> (Dataset, RatingCube) {
        let dataset = generate(&SynthConfig::tiny(51)).unwrap();
        let item = dataset.find_title("Toy Story").unwrap();
        let idx: Vec<u32> = dataset.rating_range_for_item(item).collect();
        let cube = RatingCube::build(
            &dataset,
            idx,
            CubeOptions {
                min_support: 3,
                require_geo: false,
                max_arity: 2,
            },
        );
        (dataset, cube)
    }

    #[test]
    fn coverage_matches_union_oracle() {
        let (_, cube) = setup();
        let p = MiningProblem::new(&cube, 3, 0.2, 0.5);
        let sel = vec![0, 1.min(cube.len() - 1)];
        let mut union = Bitmap::new(cube.universe());
        for &i in &sel {
            union.union_with(&cube.groups()[i].cover);
        }
        let expected = union.count() as f64 / cube.universe() as f64;
        assert!((p.coverage(&sel) - expected).abs() < 1e-12);
    }

    #[test]
    fn similarity_prefers_consistent_groups() {
        let (_, cube) = setup();
        let p = MiningProblem::new(&cube, 1, 0.0, 0.5);
        // Find the most and least consistent candidates.
        let mut best = 0;
        let mut worst = 0;
        for (i, g) in cube.groups().iter().enumerate() {
            let mad = g.stats.mean_abs_deviation().unwrap();
            if mad < cube.groups()[best].stats.mean_abs_deviation().unwrap() {
                best = i;
            }
            if mad > cube.groups()[worst].stats.mean_abs_deviation().unwrap() {
                worst = i;
            }
        }
        assert!(p.similarity_score(&[best]) >= p.similarity_score(&[worst]));
        assert!((0.0..=1.0).contains(&p.similarity_score(&[best])));
    }

    #[test]
    fn diversity_needs_two_groups() {
        let (_, cube) = setup();
        let p = MiningProblem::new(&cube, 3, 0.0, 0.0);
        assert_eq!(p.diversity_gap(&[0]), 0.0);
        if cube.len() >= 2 {
            assert!(p.diversity_gap(&[0, 1]) >= 0.0);
        }
    }

    #[test]
    fn diversity_gap_matches_pairwise_oracle() {
        let (_, cube) = setup();
        assert!(cube.len() >= 3);
        let p = MiningProblem::new(&cube, 3, 0.0, 0.0);
        let sel = [0usize, 1, 2];
        let m: Vec<f64> = sel.iter().map(|&i| cube.groups()[i].mean()).collect();
        let oracle = ((m[0] - m[1]).abs() + (m[0] - m[2]).abs() + (m[1] - m[2]).abs()) / 3.0 / 4.0;
        assert!((p.diversity_gap(&sel) - oracle).abs() < 1e-12);
    }

    #[test]
    fn lambda_penalizes_inconsistency() {
        let (_, cube) = setup();
        let strict = MiningProblem::new(&cube, 3, 0.0, 2.0);
        let lax = MiningProblem::new(&cube, 3, 0.0, 0.0);
        let sel = [0usize, 1];
        assert!(strict.diversity_score(&sel) <= lax.diversity_score(&sel));
    }

    #[test]
    fn feasibility_checks_both_constraints() {
        let (_, cube) = setup();
        let p = MiningProblem::new(&cube, 2, 0.0, 0.5);
        assert!(p.is_feasible(&[0]));
        assert!(!p.is_feasible(&[0, 1, 2]), "k violated");
        let tight = MiningProblem::new(&cube, 1, 0.99, 0.5);
        // A single 1-arity group rarely covers 99%.
        let small = (0..cube.len())
            .min_by_key(|&i| cube.groups()[i].support())
            .unwrap();
        assert!(!tight.is_feasible(&[small]));
    }

    #[test]
    fn max_achievable_coverage_bounds_everything() {
        let (_, cube) = setup();
        let p = MiningProblem::new(&cube, 3, 0.2, 0.5);
        let bound = p.max_achievable_coverage();
        for i in 0..cube.len().min(10) {
            for j in 0..cube.len().min(10) {
                for l in 0..cube.len().min(10) {
                    let c = p.coverage(&[i, j, l]);
                    assert!(c <= bound + 1e-9, "{c} > {bound}");
                }
            }
        }
    }

    #[test]
    fn description_error_weighted_by_cover_size() {
        let (_, cube) = setup();
        let p = MiningProblem::new(&cube, 3, 0.0, 0.5);
        let sel = [0usize, 1];
        let g0 = &cube.groups()[0];
        let g1 = &cube.groups()[1];
        let n0 = g0.stats.count() as f64;
        let n1 = g1.stats.count() as f64;
        let oracle = (g0.stats.mean_abs_deviation().unwrap() * n0
            + g1.stats.mean_abs_deviation().unwrap() * n1)
            / (n0 + n1);
        assert!((p.description_error(&sel) - oracle).abs() < 1e-12);
    }
}
