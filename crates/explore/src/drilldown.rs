//! State → city drill-down over an explained group (§3.1: "It is also
//! possible to drill down and view the city level aggregate movie rating
//! statistics for each of the groups").

use crate::engine::ExplorationResult;
use maprat_cube::drill::{drill_to_cities, CityStats};
use maprat_cube::GroupDesc;
use maprat_data::Dataset;

/// Drills into a group of a cached exploration result.
///
/// Returns `None` when the descriptor is not among the result's candidates
/// or carries no state condition.
pub fn drill_group(
    dataset: &Dataset,
    result: &ExplorationResult,
    desc: &GroupDesc,
) -> Option<Vec<CityStats>> {
    let group = result.cube.find(desc)?;
    drill_to_cities(dataset, &result.cube, group)
}

/// Renders a drill-down as a text table with histogram sparklines.
pub fn render_drilldown(desc: &GroupDesc, cities: &[CityStats]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "city-level statistics for {}", desc.label());
    let mut sorted: Vec<&CityStats> = cities.iter().collect();
    sorted.sort_by_key(|c| std::cmp::Reverse(c.stats.count()));
    for c in sorted {
        if c.stats.is_empty() {
            let _ = writeln!(out, "  {:<18} (no ratings)", c.city);
        } else {
            let _ = writeln!(
                out,
                "  {:<18} avg {:.2}  n={:<4} {}",
                c.city,
                c.stats.mean().unwrap(),
                c.stats.count(),
                sparkline(&c.stats.histogram())
            );
        }
    }
    out
}

/// Unicode bar sparkline of a 5-bucket histogram.
pub fn sparkline(hist: &[u64; 5]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = hist.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return "▁▁▁▁▁".to_string();
    }
    hist.iter()
        .map(|&v| {
            let level = (v * (BARS.len() as u64 - 1)).div_ceil(max) as usize;
            BARS[level.min(BARS.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MapRatEngine;
    use maprat_core::query::ItemQuery;
    use maprat_core::SearchSettings;
    use maprat_data::synth::{generate, SynthConfig};
    use maprat_data::{Gender, UsState};

    #[test]
    fn drill_into_explained_group() {
        let engine = MapRatEngine::from_dataset(generate(&SynthConfig::small(141)).unwrap());
        let settings = SearchSettings::default().with_min_coverage(0.15);
        let result = engine.explain_query(&ItemQuery::title("Toy Story"), &settings);
        let r = result.as_ref().as_ref().expect("explanation succeeds");
        // Drill into whichever SM group came back first.
        let desc = r.explanation.similarity.groups[0].desc;
        let cities = drill_group(&engine.dataset(), r, &desc).expect("geo group drills");
        let total: u64 = cities.iter().map(|c| c.stats.count()).sum();
        assert_eq!(total as usize, r.explanation.similarity.groups[0].support);
    }

    #[test]
    fn unknown_descriptor_returns_none() {
        let engine = MapRatEngine::from_dataset(generate(&SynthConfig::tiny(142)).unwrap());
        let settings = SearchSettings::default()
            .with_min_coverage(0.1)
            .with_require_geo(false);
        let result = engine.explain_query(&ItemQuery::title("Toy Story"), &settings);
        let r = result.as_ref().as_ref().unwrap();
        // A maximally specific descriptor that almost surely missed the
        // iceberg threshold:
        let desc = GroupDesc::from_pairs([
            maprat_data::AVPair::from(Gender::Female),
            maprat_data::AgeGroup::Above56.into(),
            maprat_data::Occupation::Farmer.into(),
            UsState::WY.into(),
        ]);
        assert!(drill_group(&engine.dataset(), r, &desc).is_none());
    }

    #[test]
    fn sparkline_levels() {
        assert_eq!(sparkline(&[0, 0, 0, 0, 0]), "▁▁▁▁▁");
        let s = sparkline(&[0, 1, 2, 4, 8]);
        assert_eq!(s.chars().count(), 5);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[4], '█');
        assert!(chars[3] > chars[1]);
    }

    #[test]
    fn render_sorts_by_volume() {
        let engine = MapRatEngine::from_dataset(generate(&SynthConfig::small(143)).unwrap());
        let settings = SearchSettings::default().with_min_coverage(0.15);
        let result = engine.explain_query(&ItemQuery::title("Toy Story"), &settings);
        let r = result.as_ref().as_ref().unwrap();
        let desc = r.explanation.similarity.groups[0].desc;
        let cities = drill_group(&engine.dataset(), r, &desc).unwrap();
        let text = render_drilldown(&desc, &cities);
        assert!(text.contains("city-level statistics"));
        assert!(text.lines().count() >= cities.len());
    }
}
