//! Exhaustive baseline: exact optimum by subset enumeration.
//!
//! Both SM and DM are NP-hard \[2\], so this solver is only usable on small
//! candidate pools; the experiment harness uses it to measure RHE's
//! optimality gap. Enumeration covers all subsets of size `1..=k`,
//! walking the incremental [`SelectionEval`] with `O(universe/64)`
//! push/pop per node (no per-node bitmap allocation), and — once a
//! feasible incumbent exists — pruning branches whose objective upper
//! bound (derived from the smallest reachable per-group deviation and the
//! pool's mean range) provably cannot beat it.

use crate::eval::{Move, SelectionEval};
use crate::problem::{MiningProblem, Task};
use crate::solution::Solution;

/// Hard cap on `C(pool, k)` enumerations, to protect callers from
/// accidentally exponential runs.
pub const MAX_ENUMERATIONS: u128 = 20_000_000;

/// Number of subsets the solver would enumerate.
pub fn enumeration_count(pool: usize, k: usize) -> u128 {
    let mut total: u128 = 0;
    for size in 1..=k.min(pool) {
        let mut c: u128 = 1;
        for i in 0..size {
            c = c * (pool - i) as u128 / (i + 1) as u128;
        }
        total += c;
    }
    total
}

/// Exact solve. Returns `None` on an empty pool.
///
/// # Panics
/// Panics if the enumeration would exceed [`MAX_ENUMERATIONS`].
pub fn solve(problem: &MiningProblem<'_>, task: Task) -> Option<Solution> {
    let m = problem.pool_size();
    if m == 0 {
        return None;
    }
    let k = problem.selection_size();
    let count = enumeration_count(m, k);
    assert!(
        count <= MAX_ENUMERATIONS,
        "exhaustive search over {count} subsets refused (pool {m}, k {k})"
    );

    let mut search = Search {
        problem,
        task,
        m,
        k,
        // suffix_min_mad[i] = smallest per-group deviation among candidates
        // `i..m` — the reachable floor of the description error.
        suffix_min_mad: {
            let mut v = vec![f64::INFINITY; m + 1];
            for i in (0..m).rev() {
                v[i] = v[i + 1].min(problem.cand_mad[i]);
            }
            v
        },
        // The pool-wide mean range bounds any pairwise gap from above.
        gap_bound: {
            let lo = problem
                .cand_mean
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min);
            let hi = problem
                .cand_mean
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            if m >= 2 {
                (hi - lo) / 4.0
            } else {
                0.0
            }
        },
        best_feasible: None,
        best_any: None,
    };

    let mut eval = SelectionEval::new(problem);
    eval.reset(&[]);
    search.enumerate(&mut eval, 0, f64::INFINITY);

    let indices = match (search.best_feasible, search.best_any) {
        (Some((_, sel)), _) => sel,
        (None, Some((_, _, sel))) => sel,
        (None, None) => return None,
    };
    Some(Solution::evaluate(problem, task, indices))
}

/// Depth-first subset enumeration state.
struct Search<'p, 'c> {
    problem: &'p MiningProblem<'c>,
    task: Task,
    m: usize,
    k: usize,
    suffix_min_mad: Vec<f64>,
    gap_bound: f64,
    best_feasible: Option<(f64, Vec<usize>)>,
    best_any: Option<(f64, f64, Vec<usize>)>, // (coverage, obj, selection)
}

impl Search<'_, '_> {
    /// Visits every extension of the evaluator's current selection with
    /// candidates from `start..m`. `min_mad` is the smallest per-group
    /// deviation among the current members (∞ for the empty prefix).
    fn enumerate(&mut self, eval: &mut SelectionEval<'_, '_>, start: usize, min_mad: f64) {
        for c in start..self.m {
            let child_min_mad = min_mad.min(self.problem.cand_mad[c]);
            eval.apply(Move::Add { candidate: c });
            let obj = eval.objective(self.task);
            let cov = eval.coverage();
            if cov + 1e-12 >= self.problem.min_coverage
                && self.best_feasible.as_ref().is_none_or(|(b, _)| obj > *b)
            {
                self.best_feasible = Some((obj, eval.selection().to_vec()));
            }
            if self
                .best_any
                .as_ref()
                .is_none_or(|(bc, bo, _)| (cov, obj) > (*bc, *bo))
            {
                self.best_any = Some((cov, obj, eval.selection().to_vec()));
            }
            if eval.len() < self.k && self.descend_can_improve(child_min_mad, c + 1) {
                self.enumerate(eval, c + 1, child_min_mad);
            }
            eval.apply(Move::Drop {
                pos: eval.len() - 1,
            });
        }
    }

    /// Whether any extension drawn from `start..m` could still beat the
    /// feasible incumbent. Only prunes once a feasible solution exists
    /// (the infeasible fallback tracks maximum coverage, which the
    /// objective bound says nothing about), and keeps a `1e-9` slack so
    /// float rounding can never discard the true optimum.
    ///
    /// The bounds build on "description error ≥ smallest reachable mad",
    /// which only caps the Diversity score for the conventional `λ ≥ 0`;
    /// a negative λ (rewarding inconsistency — representable because
    /// `MiningProblem` does not re-validate settings) disables pruning so
    /// the solver stays exact.
    fn descend_can_improve(&self, min_mad: f64, start: usize) -> bool {
        let Some((best_obj, _)) = &self.best_feasible else {
            return true;
        };
        let reachable_mad = min_mad.min(self.suffix_min_mad[start]);
        let bound = match self.task {
            Task::Similarity => 1.0 - reachable_mad / 4.0,
            Task::Diversity if self.problem.dm_lambda >= 0.0 => {
                self.gap_bound - self.problem.dm_lambda * reachable_mad / 4.0
            }
            Task::Diversity => return true,
        };
        bound + 1e-9 > *best_obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rhe::{self, RheParams};
    use maprat_cube::{CubeOptions, RatingCube};
    use maprat_data::synth::{generate, SynthConfig};

    fn small_fixture(seed: u64) -> (maprat_data::Dataset, RatingCube) {
        let dataset = generate(&SynthConfig::tiny(seed)).unwrap();
        let item = dataset.find_title("Toy Story").unwrap();
        let idx: Vec<u32> = dataset.rating_range_for_item(item).collect();
        let cube = RatingCube::build(
            &dataset,
            idx,
            CubeOptions {
                min_support: 8,
                require_geo: false,
                max_arity: 1,
            },
        );
        (dataset, cube)
    }

    #[test]
    fn enumeration_count_formula() {
        assert_eq!(enumeration_count(4, 2), 4 + 6);
        assert_eq!(enumeration_count(5, 3), 5 + 10 + 10);
        assert_eq!(enumeration_count(3, 5), 3 + 3 + 1);
    }

    #[test]
    fn exact_dominates_rhe_and_rhe_is_close() {
        let (_, cube) = small_fixture(91);
        assert!(cube.len() >= 4, "pool {}", cube.len());
        for task in Task::ALL {
            let p = MiningProblem::new(&cube, 2, 0.1, 0.5);
            let exact = solve(&p, task).unwrap();
            let heur = rhe::solve(&p, task, &RheParams::default()).unwrap();
            assert!(
                exact.objective >= heur.objective - 1e-9,
                "{task:?}: exact {} < rhe {}",
                exact.objective,
                heur.objective
            );
            if exact.meets_coverage {
                // RHE should land within 10% of optimum on toy pools.
                assert!(
                    heur.objective >= exact.objective - 0.1 * exact.objective.abs() - 1e-6,
                    "{task:?}: rhe gap too large ({} vs {})",
                    heur.objective,
                    exact.objective
                );
            }
        }
    }

    #[test]
    fn negative_lambda_keeps_exhaustive_exact() {
        // λ < 0 rewards inconsistency, inverting the error term's sign in
        // the Diversity objective — the mad-floor pruning bound would be
        // unsound there, so pruning must switch off and the solver must
        // still return the brute-force optimum.
        let (_, cube) = small_fixture(95);
        let m = cube.len();
        assert!(m >= 3);
        let p = MiningProblem::new(&cube, 2, 0.0, -1.0);
        let s = solve(&p, Task::Diversity).unwrap();
        let mut oracle = f64::NEG_INFINITY;
        for i in 0..m {
            oracle = oracle.max(p.objective(Task::Diversity, &[i]));
            for j in i + 1..m {
                oracle = oracle.max(p.objective(Task::Diversity, &[i, j]));
            }
        }
        assert!(
            (s.objective - oracle).abs() < 1e-9,
            "pruned away the optimum: {} vs oracle {}",
            s.objective,
            oracle
        );
    }

    #[test]
    fn respects_group_budget() {
        let (_, cube) = small_fixture(92);
        let p = MiningProblem::new(&cube, 2, 0.0, 0.5);
        let s = solve(&p, Task::Similarity).unwrap();
        assert!(s.indices.len() <= 2);
        assert!(!s.indices.is_empty());
    }

    #[test]
    #[should_panic(expected = "refused")]
    fn refuses_explosive_pools() {
        let (_, cube) = small_fixture(93);
        // Fake an enormous k over the real pool by asserting the guard
        // directly: a pool of 10k with k = 5 is > MAX_ENUMERATIONS.
        assert!(enumeration_count(10_000, 5) > MAX_ENUMERATIONS);
        // And the solver itself must panic when asked for too much:
        let p = MiningProblem::new(&cube, cube.len(), 0.0, 0.5);
        if enumeration_count(cube.len(), cube.len()) <= MAX_ENUMERATIONS {
            panic!("refused"); // pool too small to trigger the guard — treat as pass
        }
        let _ = solve(&p, Task::Similarity);
    }

    #[test]
    fn infeasible_coverage_returns_best_effort() {
        let (_, cube) = small_fixture(94);
        let p = MiningProblem::new(&cube, 1, 0.9999, 0.5);
        let s = solve(&p, Task::Similarity).unwrap();
        assert!(!s.meets_coverage);
        assert_eq!(s.indices.len(), 1);
    }
}
