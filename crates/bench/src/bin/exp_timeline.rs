//! TXT-DRILL — the §3.1 narration: moving the time slider over Toy Story
//! and watching the best interpretation groups evolve, plus the
//! state→city drill-down at each position.
//!
//! The planted ground truth makes California's male reviewers extra
//! enthusiastic early (4.85 before ~2001-11, 4.6 after), so the series
//! must show the CA group's mean cooling over time.
//!
//! Run: `cargo run --release -p maprat-bench --bin exp_timeline [--check]`

use maprat_bench::{dataset_arc, table::Table, ShapeCheck};
use maprat_core::query::ItemQuery;
use maprat_core::SearchSettings;
use maprat_explore::{MapRatEngine, TimeSlider};

fn main() {
    let mut check = ShapeCheck::new();
    let engine = MapRatEngine::new(dataset_arc());
    let settings = SearchSettings::default().with_min_coverage(0.1);
    let query = ItemQuery::title("Toy Story");

    let slider = TimeSlider::over_dataset(&engine.dataset(), 6, 6).expect("dataset has history");
    let points = slider.sweep(&engine, &query, &settings);

    println!("=== TXT-DRILL: time-slider evolution for Toy Story ===\n");
    let mut t = Table::new(["window", "ratings", "overall", "top groups (label avg)"]);
    for p in &points {
        t.row([
            format!("{}..{}", p.from, p.to),
            p.num_ratings.to_string(),
            p.overall_mean
                .map(|m| format!("{m:.2}"))
                .unwrap_or_else(|| "—".into()),
            if let Some(reason) = &p.skipped {
                format!("({reason})")
            } else {
                p.top_groups
                    .iter()
                    .map(|(l, m, _)| format!("{l} ({m:.2})"))
                    .collect::<Vec<_>>()
                    .join("; ")
            },
        ]);
    }
    t.print();

    // Track the CA group across windows.
    let ca_series: Vec<(String, f64)> = points
        .iter()
        .filter_map(|p| {
            p.top_groups
                .iter()
                .find(|(l, _, _)| l.contains("California"))
                .map(|(_, m, _)| (format!("{}..{}", p.from, p.to), *m))
        })
        .collect();
    println!("\nCalifornia group across windows:");
    for (w, m) in &ca_series {
        println!("  {w}: {m:.2}");
    }

    check.expect("≥4 slider positions", points.len() >= 4);
    check.expect(
        "most windows have ratings and groups",
        points.iter().filter(|p| p.num_ratings > 0).count() * 2 >= points.len(),
    );
    check.expect("CA group visible in ≥2 windows", ca_series.len() >= 2);
    if ca_series.len() >= 2 {
        check.expect(
            "CA enthusiasm cools over time (planted drift)",
            ca_series.first().unwrap().1 > ca_series.last().unwrap().1,
        );
    }
    check.finish();
}
