//! Incremental cube maintenance over retained profile summaries.
//!
//! The dense two-pass builder's counting pass produces an
//! options-independent intermediate — the distinct reviewer profiles of a
//! rating universe, each with its score histogram and sparse cover word
//! pattern. [`ProfileSummary`] *retains* that intermediate so it can be
//! maintained instead of recomputed:
//!
//! * [`ProfileSummary::append`] runs the counting pass over only the
//!   *appended* positions and merges the new distinct profiles in — the
//!   live-ingest delta path (cost scales with the batch, not the
//!   universe);
//! * [`ProfileSummary::merge`] concatenates partition summaries with
//!   bit-exact word realignment — the time slider mines a window by
//!   merging its month partitions instead of re-streaming ratings;
//! * [`ProfileSummary::build_reusing`] rebuilds a cube after an append
//!   while **reusing the previous cube's cover chunks**: unchanged
//!   chunks are re-shared wholesale (`Arc` bump, zero copy), changed
//!   survivors copy their old cover and OR only the delta word entries
//!   (copy-on-write at chunk granularity).
//!
//! Every path is pinned bit-identical to a from-scratch
//! [`RatingCube::build`] — and therefore to the retained naive
//! [`crate::oracle`] — by property tests over random append sequences.
//!
//! The maintained universe is *commit-major*: the initial universe keeps
//! its (item-major) order and every commit's matching ratings append at
//! the tail. All mined quantities (counts, histograms, coverage unions)
//! are invariant under universe permutation, so a commit-major cube
//! mines identically to a freshly collected one.

use crate::bitmap::{
    alloc_chunk, seal_chunk, sparse_cover_eligible, Bitmap, PooledBlocks, SparseStore,
};
use crate::builder::{
    code_of_base_cell, CandidateGroup, CellLayout, CubeOptions, CubePlan, CuboidPass, RatingCube,
    CHUNK_WORDS, NO_SLOT,
};
use crate::group::GroupDesc;
use crate::lattice::{attribute_subsets, geo_cuboids, Cuboid};
use maprat_data::{Dataset, IndexRemap, RatingIdx, RatingStats};
use maprat_pool::{num_threads, parallel_map};
use std::sync::Arc;

/// The retained counting-pass state of one rating universe: its distinct
/// reviewer profiles in ascending base-cell order, each with the number
/// of covered positions, a score histogram and a sparse cover word
/// pattern (CSR over `u64` cover blocks).
///
/// Everything a cube build needs downstream of the per-rating scan lives
/// here, so a summary can be built once and re-materialized under any
/// [`CubeOptions`] — or maintained incrementally via [`append`] and
/// [`merge`] without ever rescanning old ratings.
///
/// [`append`]: ProfileSummary::append
/// [`merge`]: ProfileSummary::merge
#[derive(Debug, Clone, Default)]
pub struct ProfileSummary {
    /// Universe size (`rating_idx.len()`).
    universe: usize,
    /// Dataset rating indexes, in cover-position order.
    rating_idx: Vec<u32>,
    /// Base-cuboid cell of each distinct profile, strictly ascending.
    cells: Vec<u32>,
    /// Packed reviewer code of each profile (decodes its cell).
    codes: Vec<u16>,
    /// Number of universe positions carrying each profile.
    counts: Vec<u32>,
    /// Score histogram of each profile.
    hists: Vec<[u32; 5]>,
    /// Sparse cover word CSR: profile `k` ORs `word_bits[j]` into cover
    /// block `word_idx[j]` for `j ∈ word_offsets[k]..word_offsets[k+1]`;
    /// entries are strictly ascending by word within a profile.
    word_idx: Vec<u32>,
    word_bits: Vec<u64>,
    word_offsets: Vec<u32>,
    /// Score histogram over the whole universe.
    total_hist: [u64; 5],
}

/// The per-commit delta of an [`ProfileSummary::append`]: the appended
/// positions' profiles with word entries already in merged-universe
/// coordinates. [`ProfileSummary::build_reusing`] ORs exactly these
/// entries on top of the previous cube's covers.
#[derive(Debug, Clone)]
pub struct AppendDelta {
    /// Counting-pass state of the appended tail, word entries addressed
    /// in the merged universe (positions `old_universe..`).
    part: ProfileSummary,
    /// Universe size before the append.
    old_universe: usize,
}

impl AppendDelta {
    /// Number of appended positions.
    pub fn len(&self) -> usize {
        self.part.universe
    }

    /// True when the commit appended nothing to this universe.
    pub fn is_empty(&self) -> bool {
        self.part.universe == 0
    }
}

/// Pushes a word entry, folding into the previous entry when it lands in
/// the same cover block (the scratch scan folds consecutive same-word
/// runs, so maintained entry lists must too for bit-identity).
#[inline]
fn push_word(word_idx: &mut Vec<u32>, word_bits: &mut Vec<u64>, floor: usize, w: u32, bits: u64) {
    if word_idx.len() > floor && *word_idx.last().expect("non-empty") == w {
        *word_bits.last_mut().expect("non-empty") |= bits;
    } else {
        word_idx.push(w);
        word_bits.push(bits);
    }
}

impl ProfileSummary {
    /// Runs the counting pass over a rating universe: gathers the packed
    /// code/score columns, counting-sorts positions by distinct reviewer
    /// profile, and materializes per-profile histograms and sparse cover
    /// word patterns. This is byte-for-byte the scratch builder's first
    /// pass ([`CubePlan::prepare`] delegates here).
    pub fn scan(dataset: &Dataset, rating_idx: Vec<u32>) -> ProfileSummary {
        Self::scan_with_offset(dataset, rating_idx, 0)
    }

    /// [`scan`](Self::scan) with cover positions numbered from
    /// `offset` — the append path scans only the new tail but addresses
    /// its word entries in merged-universe coordinates.
    fn scan_with_offset(dataset: &Dataset, rating_idx: Vec<u32>, offset: usize) -> ProfileSummary {
        let all_codes = dataset.rating_user_codes();
        let all_bins = dataset.rating_score_bins();
        let mut codes: Vec<u16> = Vec::with_capacity(rating_idx.len());
        let mut bins: Vec<u8> = Vec::with_capacity(rating_idx.len());
        let mut total_hist = [0u64; 5];
        for &ridx in &rating_idx {
            let i = RatingIdx(ridx).index();
            codes.push(all_codes[i]);
            let bin = all_bins[i];
            bins.push(bin);
            total_hist[usize::from(bin)] += 1;
        }
        let universe = codes.len();

        // Universal base-cell counting sort: group positions by distinct
        // reviewer profile. The only per-position loop in the pipeline.
        let base = CellLayout::new(Cuboid::BASE);
        let mut counts = vec![0u32; base.cells];
        for &code in &codes {
            counts[base.cell_of(code)] += 1;
        }
        let mut cursor = vec![0u32; base.cells];
        let mut sum = 0u32;
        for (cur, &c) in cursor.iter_mut().zip(&counts) {
            *cur = sum;
            sum += c;
        }
        let mut positions = vec![0u32; universe];
        for (pos, &code) in codes.iter().enumerate() {
            let cell = base.cell_of(code);
            positions[cursor[cell] as usize] = pos as u32;
            cursor[cell] += 1;
        }
        // Compact non-empty cells into the profile list (ascending
        // base-cell order; after the scatter `cursor[cell]` is the END
        // of the cell's contiguous range).
        let mut cells: Vec<u32> = Vec::new();
        let mut profiles: Vec<u16> = Vec::new();
        let mut profile_counts: Vec<u32> = Vec::new();
        let mut profile_offsets: Vec<u32> = vec![0];
        for (cell, &cnt) in counts.iter().enumerate() {
            if cnt > 0 {
                cells.push(cell as u32);
                profiles.push(code_of_base_cell(&base, cell));
                profile_counts.push(cnt);
                profile_offsets.push(cursor[cell]);
            }
        }
        let mut hists = vec![[0u32; 5]; profiles.len()];
        for (k, hist) in hists.iter_mut().enumerate() {
            let range = profile_offsets[k] as usize..profile_offsets[k + 1] as usize;
            for &p in &positions[range] {
                hist[usize::from(bins[p as usize])] += 1;
            }
        }

        // Per-profile cover word patterns (sparse CSR). Positions are
        // ascending within a profile, so runs sharing a block fold into
        // one entry.
        let mut word_idx: Vec<u32> = Vec::with_capacity(universe);
        let mut word_bits: Vec<u64> = Vec::with_capacity(universe);
        let mut word_offsets: Vec<u32> = Vec::with_capacity(profiles.len() + 1);
        word_offsets.push(0);
        for k in 0..profiles.len() {
            let range = profile_offsets[k] as usize..profile_offsets[k + 1] as usize;
            let mut current = u32::MAX;
            for &p in &positions[range] {
                let global = offset + p as usize;
                let w = (global / 64) as u32;
                if w != current {
                    word_idx.push(w);
                    word_bits.push(0);
                    current = w;
                }
                *word_bits.last_mut().expect("just pushed") |= 1u64 << (global % 64);
            }
            word_offsets.push(word_idx.len() as u32);
        }

        ProfileSummary {
            universe,
            rating_idx,
            cells,
            codes: profiles,
            counts: profile_counts,
            hists,
            word_idx,
            word_bits,
            word_offsets,
            total_hist,
        }
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of distinct reviewer profiles.
    pub fn num_profiles(&self) -> usize {
        self.codes.len()
    }

    /// The dataset rating indexes, in cover-position order.
    pub fn rating_indexes(&self) -> &[u32] {
        &self.rating_idx
    }

    /// Rewrites the retained dataset rating indexes after a commit
    /// shifted the dense rating column (splices by other items move
    /// later indexes). Cover positions are untouched — only the labels
    /// pointing back into the dataset change.
    pub fn remap_rating_indexes(&mut self, remap: &IndexRemap) {
        remap.remap_in_place(&mut self.rating_idx);
    }

    /// Counting pass over only the appended tail, merged into a new
    /// summary. Returns the merged summary plus the [`AppendDelta`] that
    /// [`build_reusing`](Self::build_reusing) needs to OR the new bits
    /// on top of an existing cube's covers.
    ///
    /// `appended_idx` are dataset rating indexes valid in `dataset`
    /// (call [`remap_rating_indexes`](Self::remap_rating_indexes) first
    /// if the commit shifted old indexes); their cover positions are
    /// `self.universe()..` in submission order.
    pub fn append(&self, dataset: &Dataset, appended_idx: &[u32]) -> (ProfileSummary, AppendDelta) {
        let part = Self::scan_with_offset(dataset, appended_idx.to_vec(), self.universe);
        let merged = Self::merge_adjacent(self, &part);
        (
            merged,
            AppendDelta {
                part,
                old_universe: self.universe,
            },
        )
    }

    /// Merges two summaries whose word entries already live in the same
    /// (concatenated) coordinate space: `right`'s positions start at
    /// `left.universe`.
    fn merge_adjacent(left: &ProfileSummary, right: &ProfileSummary) -> ProfileSummary {
        let mut rating_idx = Vec::with_capacity(left.universe + right.universe);
        rating_idx.extend_from_slice(&left.rating_idx);
        rating_idx.extend_from_slice(&right.rating_idx);
        let mut total_hist = left.total_hist;
        for (t, r) in total_hist.iter_mut().zip(&right.total_hist) {
            *t += r;
        }

        let n = left.cells.len() + right.cells.len();
        let mut cells = Vec::with_capacity(n);
        let mut codes = Vec::with_capacity(n);
        let mut counts = Vec::with_capacity(n);
        let mut hists = Vec::with_capacity(n);
        let mut word_idx = Vec::with_capacity(left.word_idx.len() + right.word_idx.len());
        let mut word_bits = Vec::with_capacity(word_idx.capacity());
        let mut word_offsets = Vec::with_capacity(n + 1);
        word_offsets.push(0u32);

        let (mut i, mut j) = (0usize, 0usize);
        while i < left.cells.len() || j < right.cells.len() {
            let take_left =
                j == right.cells.len() || (i < left.cells.len() && left.cells[i] <= right.cells[j]);
            let take_right =
                i == left.cells.len() || (j < right.cells.len() && right.cells[j] <= left.cells[i]);
            let floor = word_idx.len();
            if take_left {
                cells.push(left.cells[i]);
                codes.push(left.codes[i]);
                counts.push(left.counts[i]);
                hists.push(left.hists[i]);
                let range = left.word_offsets[i] as usize..left.word_offsets[i + 1] as usize;
                word_idx.extend_from_slice(&left.word_idx[range.clone()]);
                word_bits.extend_from_slice(&left.word_bits[range]);
                i += 1;
            }
            if take_right {
                if !take_left {
                    cells.push(right.cells[j]);
                    codes.push(right.codes[j]);
                    counts.push(0);
                    hists.push([0u32; 5]);
                }
                let k = cells.len() - 1;
                counts[k] += right.counts[j];
                for (h, rh) in hists[k].iter_mut().zip(&right.hists[j]) {
                    *h += rh;
                }
                // Concatenate the right part's entries; the first may
                // land in the same cover block the left part ended in
                // (the boundary word) and must fold into it, exactly as
                // a scratch scan of the concatenation would.
                for e in right.word_offsets[j] as usize..right.word_offsets[j + 1] as usize {
                    push_word(
                        &mut word_idx,
                        &mut word_bits,
                        floor,
                        right.word_idx[e],
                        right.word_bits[e],
                    );
                }
                j += 1;
            }
            word_offsets.push(word_idx.len() as u32);
        }

        ProfileSummary {
            universe: left.universe + right.universe,
            rating_idx,
            cells,
            codes,
            counts,
            hists,
            word_idx,
            word_bits,
            word_offsets,
            total_hist,
        }
    }

    /// Realigns every word entry to a universe where this summary's
    /// positions start at `offset` (bit-exact shift across block
    /// boundaries).
    fn shifted(&self, offset: usize) -> ProfileSummary {
        if offset == 0 {
            return self.clone();
        }
        let s = (offset % 64) as u32;
        let base = (offset / 64) as u32;
        let mut out = self.clone();
        out.word_idx = Vec::with_capacity(self.word_idx.len());
        out.word_bits = Vec::with_capacity(self.word_bits.len());
        out.word_offsets = Vec::with_capacity(self.word_offsets.len());
        out.word_offsets.push(0);
        for k in 0..self.codes.len() {
            let floor = out.word_idx.len();
            for e in self.word_offsets[k] as usize..self.word_offsets[k + 1] as usize {
                let w = self.word_idx[e] + base;
                let bits = self.word_bits[e];
                if s == 0 {
                    push_word(&mut out.word_idx, &mut out.word_bits, floor, w, bits);
                } else {
                    let lo = bits << s;
                    if lo != 0 {
                        push_word(&mut out.word_idx, &mut out.word_bits, floor, w, lo);
                    }
                    let hi = bits >> (64 - s);
                    if hi != 0 {
                        push_word(&mut out.word_idx, &mut out.word_bits, floor, w + 1, hi);
                    }
                }
            }
            out.word_offsets.push(out.word_idx.len() as u32);
        }
        out
    }

    /// Concatenates partition summaries into the summary of the combined
    /// universe (parts in order; positions of part `k` start at the sum
    /// of the earlier parts' universes).
    ///
    /// Bit-identical to [`scan`](Self::scan) over the concatenated
    /// rating-index list — the time slider merges month partitions
    /// through this instead of re-streaming their ratings.
    pub fn merge<'a>(parts: impl IntoIterator<Item = &'a ProfileSummary>) -> ProfileSummary {
        let mut acc = ProfileSummary::default();
        for part in parts {
            if part.universe == 0 {
                continue;
            }
            let shifted = part.shifted(acc.universe);
            acc = Self::merge_adjacent(&acc, &shifted);
        }
        acc
    }

    /// Materializes the cube for these profiles under `options` with the
    /// default worker count.
    pub fn build(&self, options: CubeOptions) -> RatingCube {
        self.build_with_threads(options, num_threads())
    }

    /// [`build`](Self::build) with an explicit worker budget.
    pub fn build_with_threads(&self, options: CubeOptions, threads: usize) -> RatingCube {
        self.clone().into_plan(options).fill(threads)
    }

    /// Rollup + iceberg threshold + slot assignment: turns the retained
    /// counting-pass state into a fill-ready [`CubePlan`]. Identical in
    /// effect to the second half of the original `prepare`.
    pub(crate) fn into_plan(self, options: CubeOptions) -> CubePlan {
        let layouts: Vec<CellLayout> = if options.require_geo {
            geo_cuboids()
        } else {
            attribute_subsets()
        }
        .into_iter()
        .filter(|c| {
            let d = c.dimensionality() as usize;
            d >= 1 && d <= options.max_arity
        })
        .map(CellLayout::new)
        .collect();

        // Per-cuboid cell counts (and per-cell word-entry counts for the
        // fill pass's regrouping), rolled up from the distinct profiles
        // — a handful of adds per profile, not a pass over the universe.
        // An empty cell can never become a candidate, so the effective
        // threshold is at least 1 (matching the naive builder, which
        // only ever saw touched cells).
        let min_support = options.min_support.max(1) as u32;
        let mut survivors: Vec<(GroupDesc, usize, u32, u32)> = Vec::new();
        for (ci, layout) in layouts.iter().enumerate() {
            let mut cell_counts = vec![0u32; layout.cells];
            let mut cell_entries = vec![0u32; layout.cells];
            for (k, &code) in self.codes.iter().enumerate() {
                let cell = layout.cell_of(code);
                cell_counts[cell] += self.counts[k];
                cell_entries[cell] += self.word_offsets[k + 1] - self.word_offsets[k];
            }
            let arity = layout.cuboid.dimensionality() as usize;
            for (cell, &n) in cell_counts.iter().enumerate() {
                if n >= min_support {
                    let desc = layout.decode(cell as u32);
                    debug_assert_eq!(desc.arity(), arity);
                    survivors.push((desc, ci, cell as u32, cell_entries[cell]));
                }
            }
        }

        // Survivors ordered coarse-to-fine (arity, then descriptor) —
        // the deterministic candidate order. Keys are unique (a
        // descriptor identifies its cuboid), so the order is total.
        survivors.sort_unstable_by_key(|&(desc, _, _, _)| desc.sort_key());

        let mut passes: Vec<CuboidPass> = layouts
            .into_iter()
            .map(|layout| CuboidPass {
                local: vec![NO_SLOT; layout.cells],
                globals: Vec::new(),
                entry_offsets: vec![0],
                layout,
            })
            .collect();
        let mut slot_descs = Vec::with_capacity(survivors.len());
        for (slot, &(desc, ci, cell, entries)) in survivors.iter().enumerate() {
            let pass = &mut passes[ci];
            pass.local[cell as usize] = pass.globals.len() as u32;
            pass.globals.push(slot as u32);
            let last = *pass.entry_offsets.last().expect("starts at [0]");
            pass.entry_offsets.push(last + entries);
            slot_descs.push(desc);
        }

        CubePlan {
            rating_idx: self.rating_idx.into(),
            options,
            profiles: self.codes,
            profile_hists: self.hists,
            word_idx: self.word_idx,
            word_bits: self.word_bits,
            word_offsets: self.word_offsets,
            passes,
            slot_descs,
            total: RatingStats::from_histogram(self.total_hist),
        }
    }

    /// Rebuilds the cube after an [`append`](Self::append), reusing the
    /// previous cube's cover chunks instead of re-scattering the whole
    /// universe:
    ///
    /// * a chunk none of whose survivors gained bits (and whose block
    ///   geometry is unchanged) is **re-shared wholesale** — new cover
    ///   headers over the same `Arc`'d pool, zero copies;
    /// * a changed chunk is written copy-on-write: survivors that
    ///   existed before `memcpy` their old cover and OR only the
    ///   *delta* word entries; survivors newly above the iceberg
    ///   threshold scatter their full pattern.
    ///
    /// `prev` must be the cube built from this summary's pre-append
    /// state under the same `options` (support counts only grow under
    /// appends, so `prev`'s survivors are a subset of the new ones).
    /// The result is bit-identical to [`build`](Self::build) — pinned by
    /// the oracle property tests.
    pub fn build_reusing(
        &self,
        delta: &AppendDelta,
        prev: &RatingCube,
        options: CubeOptions,
        threads: usize,
    ) -> RatingCube {
        assert_eq!(
            prev.options(),
            &options,
            "delta maintenance requires the previous cube's options"
        );
        assert_eq!(
            delta.old_universe + delta.part.universe,
            self.universe,
            "delta does not extend the previous universe to this one"
        );
        let plan = self.clone().into_plan(options);
        fill_reusing(plan, delta, prev, threads)
    }
}

/// Whether `prev`'s covers for the new-layout dense survivors in `chunk`
/// (all unchanged, geometry-stable) are exactly consecutive windows of
/// one shared pool — in which case that pool can back the new chunk
/// wholesale.
fn wholesale_pool<'a>(
    prev: &'a RatingCube,
    prev_of: &[Option<usize>],
    chunk: &[u32],
    words: usize,
) -> Option<&'a Arc<PooledBlocks>> {
    let first = prev.groups()[prev_of[chunk[0] as usize]?]
        .cover
        .shared_parts()?;
    if first.1 != 0 || first.2 != words {
        return None;
    }
    for (li, &l) in chunk.iter().enumerate().skip(1) {
        let (pool, start, w) = prev.groups()[prev_of[l as usize]?].cover.shared_parts()?;
        if !Arc::ptr_eq(pool, first.0) || start != li * words || w != words {
            return None;
        }
    }
    Some(first.0)
}

/// The fill pass of [`ProfileSummary::build_reusing`]: identical slot
/// assignment and output to [`CubePlan::fill`], but covers come from the
/// previous cube wherever possible.
fn fill_reusing(
    plan: CubePlan,
    delta: &AppendDelta,
    prev: &RatingCube,
    threads: usize,
) -> RatingCube {
    let universe = plan.rating_idx.len();
    let words = universe.div_ceil(64).max(1);
    let old_words = delta.old_universe.div_ceil(64).max(1);
    let same_geometry = words == old_words;
    let dpart = &delta.part;

    let filled: Vec<(Vec<Bitmap>, Vec<[u32; 5]>)> =
        parallel_map(plan.passes.len(), threads, |ci| {
            let pass = &plan.passes[ci];
            let layout = &pass.layout;
            let n = pass.globals.len();
            let mut hists = vec![[0u32; 5]; n];
            if n == 0 {
                return (Vec::new(), hists);
            }
            // Survivor stats: rolled up from the merged profile
            // histograms (u32 adds — order-independent, so identical to
            // the scratch fill's accumulation).
            for (k, &code) in plan.profiles.iter().enumerate() {
                let local = pass.local[layout.cell_of(code)];
                if local == NO_SLOT {
                    continue;
                }
                for (h, ph) in hists[local as usize].iter_mut().zip(&plan.profile_hists[k]) {
                    *h += ph;
                }
            }
            // Where each new survivor lived in the previous cube (`None`
            // = newly above threshold this commit).
            let prev_of: Vec<Option<usize>> = pass
                .globals
                .iter()
                .map(|&slot| prev.index_of(&plan.slot_descs[slot as usize]))
                .collect();
            // Regroup the delta word entries by survivor (counting-sort
            // scatter over the — small — appended-profile list).
            let mut d_offsets = vec![0u32; n + 1];
            for (k, &code) in dpart.codes.iter().enumerate() {
                let local = pass.local[layout.cell_of(code)];
                if local != NO_SLOT {
                    d_offsets[local as usize + 1] +=
                        dpart.word_offsets[k + 1] - dpart.word_offsets[k];
                }
            }
            for l in 0..n {
                d_offsets[l + 1] += d_offsets[l];
            }
            let total_d = d_offsets[n] as usize;
            let mut d_word_idx = vec![0u32; total_d];
            let mut d_word_bits = vec![0u64; total_d];
            let mut cursor: Vec<u32> = d_offsets[..n].to_vec();
            for (k, &code) in dpart.codes.iter().enumerate() {
                let local = pass.local[layout.cell_of(code)];
                if local == NO_SLOT {
                    continue;
                }
                let l = local as usize;
                let mut dst = cursor[l] as usize;
                for j in dpart.word_offsets[k] as usize..dpart.word_offsets[k + 1] as usize {
                    d_word_idx[dst] = dpart.word_idx[j];
                    d_word_bits[dst] = dpart.word_bits[j];
                    dst += 1;
                }
                cursor[l] = dst as u32;
            }

            // Same per-survivor representation decision as the scratch
            // fill (a pure function of the plan's raw entry counts), so
            // a delta rebuild and a from-scratch build agree on every
            // cover's container.
            let raw_entries =
                |l: usize| (pass.entry_offsets[l + 1] - pass.entry_offsets[l]) as usize;
            let mut dense_list: Vec<u32> = Vec::with_capacity(n);
            let mut sparse_list: Vec<u32> = Vec::new();
            for l in 0..n {
                if sparse_cover_eligible(words, raw_entries(l)) {
                    sparse_list.push(l as u32);
                } else {
                    dense_list.push(l as u32);
                }
            }
            let mut covers: Vec<Option<Bitmap>> = vec![None; n];

            // Full-pattern scatter of one fresh survivor (newly above
            // the iceberg threshold this commit) into a zeroed window.
            let scatter_fresh = |l: usize, window: &mut [u64]| {
                let target = l as u32;
                for (k, &code) in plan.profiles.iter().enumerate() {
                    if pass.local[layout.cell_of(code)] != target {
                        continue;
                    }
                    for j in plan.word_offsets[k] as usize..plan.word_offsets[k + 1] as usize {
                        window[plan.word_idx[j] as usize] |= plan.word_bits[j];
                    }
                }
            };

            // Sparse survivors: an unchanged one whose previous cover is
            // already sparse re-shares its entry window (the sparse
            // analog of wholesale chunk re-sharing); anything else is
            // re-materialized through a dense scratch word buffer and
            // re-scanned into the cuboid's fresh entry store — the scan
            // yields the same canonical entries as the scratch fill's
            // sort-and-fold.
            if !sparse_list.is_empty() {
                let cap: usize = sparse_list.iter().map(|&l| raw_entries(l as usize)).sum();
                let mut store = SparseStore::with_capacity(cap);
                let mut windows: Vec<(u32, u32, u32)> = Vec::with_capacity(sparse_list.len());
                let mut scratch = vec![0u64; words];
                for &l in &sparse_list {
                    let l = l as usize;
                    if d_offsets[l + 1] == d_offsets[l] {
                        if let Some((s, start, entries)) =
                            prev_of[l].and_then(|pi| prev.groups()[pi].cover.sparse_parts())
                        {
                            covers[l] = Some(Bitmap::from_sparse_store(
                                universe,
                                Arc::clone(s),
                                start,
                                entries,
                            ));
                            continue;
                        }
                    }
                    scratch.fill(0);
                    if let Some(pi) = prev_of[l] {
                        prev.groups()[pi].cover.or_into(&mut scratch);
                        let range = d_offsets[l] as usize..d_offsets[l + 1] as usize;
                        for (&wi, &wb) in d_word_idx[range.clone()].iter().zip(&d_word_bits[range])
                        {
                            scratch[wi as usize] |= wb;
                        }
                    } else {
                        scatter_fresh(l, &mut scratch);
                    }
                    let start = store.len();
                    for (wi, &wb) in scratch.iter().enumerate() {
                        if wb != 0 {
                            store.push(wi as u32, wb);
                        }
                    }
                    windows.push((l as u32, start as u32, (store.len() - start) as u32));
                }
                let store = store.seal();
                for (l, start, entries) in windows {
                    covers[l as usize] = Some(Bitmap::from_sparse_store(
                        universe,
                        Arc::clone(&store),
                        start as usize,
                        entries as usize,
                    ));
                }
            }

            let per_chunk = (CHUNK_WORDS / words).max(1);
            for chunk in dense_list.chunks(per_chunk) {
                let count = chunk.len();
                // Wholesale re-share: every survivor of the chunk is
                // unchanged (no delta bits, existed before) and the
                // block geometry is stable, and the previous covers are
                // exactly this chunk layout over one pool.
                let unchanged = same_geometry
                    && chunk.iter().all(|&l| {
                        let l = l as usize;
                        d_offsets[l + 1] == d_offsets[l] && prev_of[l].is_some()
                    });
                if unchanged {
                    if let Some(pool) = wholesale_pool(prev, &prev_of, chunk, words) {
                        let pool = Arc::clone(pool);
                        for (li, &l) in chunk.iter().enumerate() {
                            covers[l as usize] = Some(Bitmap::from_shared_pool(
                                universe,
                                Arc::clone(&pool),
                                li * words,
                            ));
                        }
                        continue;
                    }
                }
                // Copy-on-write chunk: carry old covers over (whatever
                // their previous representation), OR only the delta
                // entries; full scatter for fresh survivors.
                let mut blocks = alloc_chunk(count * words);
                for (li, &l) in chunk.iter().enumerate() {
                    let l = l as usize;
                    let window = &mut blocks[li * words..][..words];
                    if let Some(pi) = prev_of[l] {
                        prev.groups()[pi]
                            .cover
                            .or_into(&mut window[..old_words.min(words)]);
                        let range = d_offsets[l] as usize..d_offsets[l + 1] as usize;
                        for (&wi, &wb) in d_word_idx[range.clone()].iter().zip(&d_word_bits[range])
                        {
                            window[wi as usize] |= wb;
                        }
                    } else {
                        scatter_fresh(l, window);
                    }
                }
                let pool = seal_chunk(blocks);
                for (li, &l) in chunk.iter().enumerate() {
                    covers[l as usize] = Some(Bitmap::from_shared_pool(
                        universe,
                        Arc::clone(&pool),
                        li * words,
                    ));
                }
            }
            let covers: Vec<Bitmap> = covers
                .into_iter()
                .map(|c| c.expect("every survivor got a cover"))
                .collect();
            (covers, hists)
        });

    // Scatter each cuboid's covers into the global slot order (same
    // assembly as the scratch fill).
    let mut slots: Vec<Option<CandidateGroup>> = Vec::with_capacity(plan.slot_descs.len());
    slots.resize_with(plan.slot_descs.len(), || None);
    for (pass, (covers, hists)) in plan.passes.iter().zip(filled) {
        for ((&slot, cover), hist) in pass.globals.iter().zip(covers).zip(hists) {
            let hist64 = hist.map(u64::from);
            slots[slot as usize] = Some(CandidateGroup {
                desc: plan.slot_descs[slot as usize],
                cover,
                stats: RatingStats::from_histogram(hist64),
            });
        }
    }
    let groups: Vec<CandidateGroup> = slots
        .into_iter()
        .map(|g| g.expect("every slot belongs to exactly one cuboid"))
        .collect();
    RatingCube::from_parts(plan.rating_idx.to_vec(), groups, plan.total, plan.options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maprat_data::synth::{generate, SynthConfig};

    fn assert_cubes_identical(a: &RatingCube, b: &RatingCube) {
        assert_eq!(a.rating_indexes(), b.rating_indexes());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.total_stats(), b.total_stats());
        for (ga, gb) in a.groups().iter().zip(b.groups()) {
            assert_eq!(ga.desc, gb.desc);
            assert_eq!(ga.stats, gb.stats, "{}", ga.desc);
            assert_eq!(ga.cover, gb.cover, "{}", ga.desc);
        }
    }

    fn toy_universe() -> (maprat_data::Dataset, Vec<u32>) {
        let dataset = generate(&SynthConfig::tiny(31)).unwrap();
        let item = dataset.find_title("Toy Story").unwrap();
        let idx: Vec<u32> = dataset.rating_range_for_item(item).collect();
        (dataset, idx)
    }

    #[test]
    fn summary_build_matches_scratch_build() {
        let (dataset, idx) = toy_universe();
        for require_geo in [false, true] {
            let options = CubeOptions {
                min_support: 3,
                require_geo,
                max_arity: 4,
            };
            let summary = ProfileSummary::scan(&dataset, idx.clone());
            let from_summary = summary.build(options.clone());
            let scratch = RatingCube::build(&dataset, idx.clone(), options);
            assert_cubes_identical(&from_summary, &scratch);
        }
    }

    #[test]
    fn append_matches_scan_of_concatenation() {
        let (dataset, idx) = toy_universe();
        for split in [1, idx.len() / 3, idx.len() / 2, idx.len() - 1] {
            let (head, tail) = idx.split_at(split);
            let (merged, delta) =
                ProfileSummary::scan(&dataset, head.to_vec()).append(&dataset, tail);
            assert_eq!(delta.len(), tail.len());
            let direct = ProfileSummary::scan(&dataset, idx.clone());
            let options = CubeOptions {
                min_support: 2,
                require_geo: false,
                max_arity: 4,
            };
            assert_cubes_identical(&merged.build(options.clone()), &direct.build(options));
        }
    }

    #[test]
    fn merge_matches_scan_of_concatenation() {
        let (dataset, idx) = toy_universe();
        // Uneven parts force non-64-aligned shifts.
        let a = idx[..7].to_vec();
        let b = idx[7..idx.len() / 2].to_vec();
        let c = idx[idx.len() / 2..].to_vec();
        let parts = [
            ProfileSummary::scan(&dataset, a),
            ProfileSummary::scan(&dataset, b),
            ProfileSummary::scan(&dataset, c),
        ];
        let merged = ProfileSummary::merge(parts.iter());
        let direct = ProfileSummary::scan(&dataset, idx);
        let options = CubeOptions {
            min_support: 2,
            require_geo: false,
            max_arity: 4,
        };
        assert_cubes_identical(&merged.build(options.clone()), &direct.build(options));
    }

    #[test]
    fn build_reusing_is_bit_identical_and_shares_unchanged_chunks() {
        let (dataset, idx) = toy_universe();
        let options = CubeOptions {
            min_support: 3,
            require_geo: false,
            max_arity: 4,
        };
        let split = idx.len() - 5;
        let (head, tail) = idx.split_at(split);
        let base = ProfileSummary::scan(&dataset, head.to_vec());
        let prev = base.build(options.clone());
        let (merged, delta) = base.append(&dataset, tail);
        let reused = merged.build_reusing(&delta, &prev, options.clone(), 1);
        let scratch = RatingCube::build(&dataset, idx, options);
        assert_cubes_identical(&reused, &scratch);
    }

    #[test]
    fn empty_append_reshares_every_cover() {
        let (dataset, idx) = toy_universe();
        let options = CubeOptions {
            min_support: 3,
            require_geo: false,
            max_arity: 4,
        };
        let base = ProfileSummary::scan(&dataset, idx);
        let prev = base.build(options.clone());
        let (merged, delta) = base.append(&dataset, &[]);
        assert!(delta.is_empty());
        let reused = merged.build_reusing(&delta, &prev, options, 1);
        // Geometry and survivors are unchanged, so every cover must be a
        // wholesale re-share of the previous storage: same pool (dense)
        // or entry-store (sparse) pointers.
        assert_eq!(reused.len(), prev.len());
        for (new, old) in reused.groups().iter().zip(prev.groups()) {
            match (new.cover.shared_parts(), old.cover.shared_parts()) {
                (Some((np, ns, _)), Some((op, os, _))) => {
                    assert!(Arc::ptr_eq(np, op), "{}", new.desc);
                    assert_eq!(ns, os);
                }
                (None, None) => {
                    let (np, ns, _) = new.cover.sparse_parts().expect("sparse");
                    let (op, os, _) = old.cover.sparse_parts().expect("sparse");
                    assert!(Arc::ptr_eq(np, op), "{}", new.desc);
                    assert_eq!(ns, os);
                }
                (n, o) => panic!(
                    "representation flipped across an empty append for {}: {:?} vs {:?}",
                    new.desc,
                    n.is_some(),
                    o.is_some()
                ),
            }
        }
    }

    #[test]
    fn threads_do_not_change_delta_builds() {
        let (dataset, idx) = toy_universe();
        let options = CubeOptions {
            min_support: 2,
            require_geo: true,
            max_arity: 3,
        };
        let split = idx.len() / 2;
        let (head, tail) = idx.split_at(split);
        let base = ProfileSummary::scan(&dataset, head.to_vec());
        let prev = base.build_with_threads(options.clone(), 1);
        let (merged, delta) = base.append(&dataset, tail);
        let one = merged.build_reusing(&delta, &prev, options.clone(), 1);
        let many = merged.build_reusing(&delta, &prev, options, 4);
        assert_cubes_identical(&one, &many);
    }
}
