//! Property-based tests on the color scale and choropleth model.

use maprat_data::{AttrValue, Gender, UsState};
use maprat_geo::choropleth::StateShade;
use maprat_geo::svg::{render, xml_escape, SvgOptions};
use maprat_geo::{likert_color, Choropleth};
use proptest::prelude::*;

proptest! {
    /// Within one gradient segment every channel stays between the two
    /// stop endpoints (the renderer is a plain linear interpolation), and
    /// the green-minus-red balance is strictly increasing across the
    /// integer stops (red at 1 → green at 5).
    #[test]
    fn likert_interpolates_between_stops(x in 1.0f64..5.0) {
        let seg = (x.floor() as u8).min(4);
        let lo = likert_color(f64::from(seg));
        let hi = likert_color(f64::from(seg + 1));
        let c = likert_color(x);
        let within = |v: u8, a: u8, b: u8| {
            let (min, max) = if a <= b { (a, b) } else { (b, a) };
            (min.saturating_sub(1)..=max.saturating_add(1)).contains(&v)
        };
        prop_assert!(within(c.r, lo.r, hi.r), "r out of segment at {x}");
        prop_assert!(within(c.g, lo.g, hi.g), "g out of segment at {x}");
        prop_assert!(within(c.b, lo.b, hi.b), "b out of segment at {x}");
        // Stop-level monotonicity of the red→green balance.
        let balance = |c: maprat_geo::Rgb| i32::from(c.g) - i32::from(c.r);
        for s in 1..5u8 {
            prop_assert!(
                balance(likert_color(f64::from(s + 1))) > balance(likert_color(f64::from(s)))
            );
        }
    }

    /// Colors are deterministic and clamped outside the scale.
    #[test]
    fn likert_total(x in -1e6f64..1e6) {
        let c = likert_color(x);
        prop_assert_eq!(c, likert_color(x));
        if x <= 1.0 {
            prop_assert_eq!(c, likert_color(1.0));
        }
        if x >= 5.0 {
            prop_assert_eq!(c, likert_color(5.0));
        }
    }

    /// XML escaping removes every raw metacharacter and is idempotent on
    /// its fixed points.
    #[test]
    fn xml_escape_sound(s in ".{0,48}") {
        let escaped = xml_escape(&s);
        prop_assert!(!escaped.contains('<'));
        prop_assert!(!escaped.contains('>'));
        // '&' only as part of entities.
        for (i, _) in escaped.match_indices('&') {
            let rest = &escaped[i..];
            prop_assert!(
                rest.starts_with("&amp;")
                    || rest.starts_with("&lt;")
                    || rest.starts_with("&gt;")
                    || rest.starts_with("&quot;")
                    || rest.starts_with("&apos;"),
                "raw & in {escaped:?}"
            );
        }
    }

    /// SVG rendering is total over arbitrary shades and always well-formed
    /// at the bracket level.
    #[test]
    fn svg_total(
        states in proptest::collection::vec(0usize..51, 0..8),
        values in proptest::collection::vec(0.0f64..6.0, 8),
        title in ".{0,24}",
    ) {
        let mut map = Choropleth::new(title);
        for (i, s) in states.iter().enumerate() {
            map.add(StateShade::new(
                UsState::from_index(*s).unwrap(),
                values[i % values.len()],
                format!("group {i}"),
                i + 1,
                &[AttrValue::Gender(Gender::Male)],
            ));
        }
        let svg = render(&map, &SvgOptions::default());
        prop_assert!(svg.starts_with("<svg"));
        prop_assert!(svg.trim_end().ends_with("</svg>"));
        prop_assert_eq!(svg.matches("<g>").count(), svg.matches("</g>").count());
    }
}
