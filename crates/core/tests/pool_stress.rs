//! Stress contract of the shared worker pool under the real solver: many
//! concurrent submitters make progress (no deadlock), results stay
//! bit-identical to the serial run, and a panicking job never poisons the
//! pool for the solves that follow.

use maprat_core::{parallel, pool, rhe, MiningProblem, RheParams, Task};
use maprat_cube::{CubeOptions, RatingCube};
use maprat_data::synth::{generate, SynthConfig};

fn fixture(seed: u64) -> (maprat_data::Dataset, RatingCube) {
    let dataset = generate(&SynthConfig::tiny(seed)).unwrap();
    let item = dataset.find_title("Toy Story").unwrap();
    let idx: Vec<u32> = dataset.rating_range_for_item(item).collect();
    let cube = RatingCube::build(
        &dataset,
        idx,
        CubeOptions {
            min_support: 3,
            require_geo: false,
            max_arity: 3,
        },
    );
    (dataset, cube)
}

#[test]
fn concurrent_submitters_solve_without_deadlock_and_match_serial() {
    let (_dataset, cube) = fixture(241);
    let problem = MiningProblem::new(&cube, 3, 0.25, 0.5);
    let params = RheParams {
        restarts: 7,
        ..Default::default()
    };

    // The serial ground truth, one per task.
    let serial: Vec<_> = Task::ALL
        .iter()
        .map(|&task| rhe::solve_with_threads(&problem, task, &params, 1).unwrap())
        .collect();

    // Eight submitters × repeated parallel solves, all fanning out onto
    // the one shared pool concurrently. Every result must equal the
    // serial run bit for bit — scheduling may never leak into output.
    std::thread::scope(|scope| {
        for submitter in 0..8 {
            let serial = &serial;
            let problem = &problem;
            let params = &params;
            scope.spawn(move || {
                for round in 0..6 {
                    let task = Task::ALL[(submitter + round) % Task::ALL.len()];
                    let expected = &serial[(submitter + round) % Task::ALL.len()];
                    let got = rhe::solve_with_threads(problem, task, params, 4).unwrap();
                    assert_eq!(
                        &got, expected,
                        "submitter {submitter} round {round} diverged from serial"
                    );
                }
            });
        }
    });
}

#[test]
fn panic_in_a_job_does_not_poison_the_pool() {
    // A panicking fan-out propagates to its submitter…
    let result = std::panic::catch_unwind(|| {
        parallel::parallel_map(32, 4, |i| {
            if i == 17 {
                panic!("stress boom");
            }
            i
        })
    });
    assert!(result.is_err(), "panic must reach the submitter");

    // …and the same global pool then still runs real solves, repeatedly.
    let (_dataset, cube) = fixture(242);
    let problem = MiningProblem::new(&cube, 3, 0.2, 0.5);
    let serial = rhe::solve_with_threads(&problem, Task::Similarity, &RheParams::default(), 1);
    for _ in 0..3 {
        let solved = rhe::solve_with_threads(&problem, Task::Similarity, &RheParams::default(), 4);
        assert_eq!(solved, serial, "pool must keep solving after a panic");
    }
    // Plain fan-outs still work too.
    assert_eq!(parallel::parallel_map(64, 4, |i| i * 2)[63], 126);
}

#[test]
fn nested_solver_fan_out_stays_inline() {
    // An outer fan-out whose items each run a parallel-capable solve:
    // the inner solves must observe the fan-out flag and run inline,
    // with identical results.
    let (_dataset, cube) = fixture(243);
    let problem = MiningProblem::new(&cube, 2, 0.2, 0.5);
    let params = RheParams::default();
    let serial = rhe::solve_with_threads(&problem, Task::Similarity, &params, 1).unwrap();

    let outer = parallel::parallel_map(4, 4, |i| {
        assert!(
            pool::in_fan_out(),
            "outer items must run under the fan-out flag"
        );
        let inner = rhe::solve_with_threads(&problem, Task::Similarity, &params, 8).unwrap();
        (i, inner)
    });
    for (i, inner) in outer {
        assert_eq!(inner, serial, "nested solve {i} diverged");
    }
}
