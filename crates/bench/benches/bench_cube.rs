//! Criterion bench: iceberg-cube materialization throughput vs `|R_I|`
//! (EXT-SCALING companion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use maprat_bench::dataset;
use maprat_cube::{CubeOptions, RatingCube};
use std::hint::black_box;

fn bench_cube(c: &mut Criterion) {
    let d = dataset();
    // Concatenate item slices to grow |R_I|.
    let mut universe: Vec<u32> = Vec::new();
    for item in d.items() {
        universe.extend(d.rating_range_for_item(item.id));
        if universe.len() >= 40_000 {
            break;
        }
    }

    let mut group = c.benchmark_group("cube_build");
    group.sample_size(10);
    for &n in &[1_000usize, 4_000, 16_000] {
        if n > universe.len() {
            continue;
        }
        let slice: Vec<u32> = universe[..n].to_vec();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("geo_arity4", n), &slice, |b, s| {
            b.iter(|| {
                black_box(RatingCube::build(
                    d,
                    s.clone(),
                    CubeOptions {
                        min_support: 5,
                        require_geo: true,
                        max_arity: 4,
                    },
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("free_arity2", n), &slice, |b, s| {
            b.iter(|| {
                black_box(RatingCube::build(
                    d,
                    s.clone(),
                    CubeOptions {
                        min_support: 5,
                        require_geo: false,
                        max_arity: 2,
                    },
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cube);
criterion_main!(benches);
