//! Zip codes and the zip → state mapping.
//!
//! MovieLens users carry a raw zip code; MapRat's geo anchor is the state
//! (§3.1), so the loader resolves every zip to a state through the standard
//! USPS three-digit prefix ranges (approximated to state granularity: a few
//! exotic sub-ranges — military, territories — resolve to `None` and the
//! loader falls back deterministically).

use crate::attrs::UsState;
use std::fmt;

/// A five-digit US zip code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Zip(u32);

impl Zip {
    /// Creates a zip code. Values are taken modulo 100000 so that arbitrary
    /// integers (e.g. from ZIP+4 strings) normalize to five digits.
    pub fn new(value: u32) -> Self {
        Zip(value % 100_000)
    }

    /// Parses the leading five digits of a MovieLens zip field, which may be
    /// `98101` or `98101-2203`.
    pub fn parse(field: &str) -> Option<Self> {
        let digits: String = field.chars().take_while(|c| c.is_ascii_digit()).collect();
        if digits.is_empty() {
            return None;
        }
        digits.parse::<u32>().ok().map(Zip::new)
    }

    /// The raw five-digit value.
    #[inline]
    pub fn value(self) -> u32 {
        self.0
    }

    /// The three-digit USPS prefix.
    #[inline]
    pub fn prefix(self) -> u32 {
        self.0 / 100
    }

    /// The state this zip belongs to, per the USPS prefix ranges;
    /// `None` for territories / military prefixes.
    pub fn state(self) -> Option<UsState> {
        state_for_prefix(self.prefix())
    }

    /// Like [`Zip::state`], but resolves unmapped prefixes to a
    /// deterministic fallback state (spreading them by prefix) so every
    /// reviewer is visualizable on the map.
    pub fn state_or_fallback(self) -> UsState {
        self.state().unwrap_or_else(|| {
            let idx = (self.prefix() as usize * 7 + 3) % UsState::ALL.len();
            UsState::ALL[idx]
        })
    }
}

impl fmt::Display for Zip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:05}", self.0)
    }
}

/// USPS three-digit prefix ranges, state-granular. Sorted by range start;
/// ranges are inclusive and non-overlapping.
const PREFIX_RANGES: &[(u32, u32, UsState)] = &[
    (5, 5, UsState::NY),
    (10, 27, UsState::MA),
    (28, 29, UsState::RI),
    (30, 38, UsState::NH),
    (39, 49, UsState::ME),
    (50, 59, UsState::VT),
    (60, 69, UsState::CT),
    (70, 89, UsState::NJ),
    (100, 149, UsState::NY),
    (150, 196, UsState::PA),
    (197, 199, UsState::DE),
    (200, 205, UsState::DC),
    (206, 219, UsState::MD),
    (220, 246, UsState::VA),
    (247, 268, UsState::WV),
    (270, 289, UsState::NC),
    (290, 299, UsState::SC),
    (300, 319, UsState::GA),
    (320, 349, UsState::FL),
    (350, 369, UsState::AL),
    (370, 385, UsState::TN),
    (386, 397, UsState::MS),
    (398, 399, UsState::GA),
    (400, 427, UsState::KY),
    (430, 459, UsState::OH),
    (460, 479, UsState::IN),
    (480, 499, UsState::MI),
    (500, 528, UsState::IA),
    (530, 549, UsState::WI),
    (550, 567, UsState::MN),
    (570, 577, UsState::SD),
    (580, 588, UsState::ND),
    (590, 599, UsState::MT),
    (600, 629, UsState::IL),
    (630, 658, UsState::MO),
    (660, 679, UsState::KS),
    (680, 693, UsState::NE),
    (700, 714, UsState::LA),
    (716, 729, UsState::AR),
    (730, 749, UsState::OK),
    (750, 799, UsState::TX),
    (800, 816, UsState::CO),
    (820, 831, UsState::WY),
    (832, 838, UsState::ID),
    (840, 847, UsState::UT),
    (850, 865, UsState::AZ),
    (870, 884, UsState::NM),
    (885, 885, UsState::TX),
    (889, 898, UsState::NV),
    (900, 961, UsState::CA),
    (967, 968, UsState::HI),
    (970, 979, UsState::OR),
    (980, 994, UsState::WA),
    (995, 999, UsState::AK),
];

/// Resolves a three-digit prefix to a state.
pub fn state_for_prefix(prefix: u32) -> Option<UsState> {
    let idx = PREFIX_RANGES.partition_point(|&(start, _, _)| start <= prefix);
    if idx == 0 {
        return None;
    }
    let (start, end, state) = PREFIX_RANGES[idx - 1];
    debug_assert!(start <= prefix);
    (prefix <= end).then_some(state)
}

/// A representative prefix for a state (the start of its first range),
/// used by the synthetic generator to mint consistent zips.
pub fn canonical_prefix(state: UsState) -> u32 {
    PREFIX_RANGES
        .iter()
        .find(|&&(_, _, s)| s == state)
        .map(|&(start, _, _)| start)
        .expect("every state has a prefix range")
}

/// All prefix ranges belonging to a state.
pub fn prefix_ranges(state: UsState) -> impl Iterator<Item = (u32, u32)> {
    PREFIX_RANGES
        .iter()
        .filter(move |&&(_, _, s)| s == state)
        .map(|&(a, b, _)| (a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_sorted_and_disjoint() {
        for w in PREFIX_RANGES.windows(2) {
            assert!(w[0].1 < w[1].0, "{:?} overlaps {:?}", w[0], w[1]);
        }
        for &(a, b, _) in PREFIX_RANGES {
            assert!(a <= b);
        }
    }

    #[test]
    fn every_state_has_a_range() {
        for s in UsState::ALL {
            assert!(
                PREFIX_RANGES.iter().any(|&(_, _, st)| st == s),
                "{s} missing"
            );
            assert_eq!(state_for_prefix(canonical_prefix(s)), Some(s));
        }
    }

    #[test]
    fn known_city_zips_resolve() {
        assert_eq!(Zip::new(94103).state(), Some(UsState::CA)); // San Francisco
        assert_eq!(Zip::new(10001).state(), Some(UsState::NY)); // Manhattan
        assert_eq!(Zip::new(2139).state(), Some(UsState::MA)); // Cambridge (02139)
        assert_eq!(Zip::new(76019).state(), Some(UsState::TX)); // UT Arlington
        assert_eq!(Zip::new(98101).state(), Some(UsState::WA)); // Seattle
        assert_eq!(Zip::new(60601).state(), Some(UsState::IL)); // Chicago
    }

    #[test]
    fn territory_prefixes_unmapped_but_fallback_total() {
        assert_eq!(Zip::new(900).state(), None); // 009xx Puerto Rico
        assert_eq!(Zip::new(96201).state(), None); // military AP
                                                   // Fallback must always produce a state.
        let _ = Zip::new(900).state_or_fallback();
        let _ = Zip::new(96201).state_or_fallback();
    }

    #[test]
    fn parse_handles_plus4_and_garbage() {
        assert_eq!(Zip::parse("98101-2203"), Some(Zip::new(98101)));
        assert_eq!(Zip::parse("02139"), Some(Zip::new(2139)));
        assert_eq!(Zip::parse(""), None);
        assert_eq!(Zip::parse("abcde"), None);
    }

    #[test]
    fn display_pads_to_five() {
        assert_eq!(Zip::new(2139).to_string(), "02139");
        assert_eq!(Zip::new(94103).to_string(), "94103");
    }

    #[test]
    fn new_normalizes_modulo() {
        assert_eq!(Zip::new(194103).value(), 94103);
    }

    #[test]
    fn prefix_extraction() {
        assert_eq!(Zip::new(94103).prefix(), 941);
        assert_eq!(Zip::new(2139).prefix(), 21);
    }
}
