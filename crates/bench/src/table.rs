//! Plain-text experiment tables (the harness "prints the same rows the
//! paper reports" — here, figure captions and narrated numbers).

/// A simple aligned table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                let cell = &cells[i];
                line.push_str(cell);
                if i + 1 < cols {
                    let pad = widths[i] - cell.chars().count() + 2;
                    line.extend(std::iter::repeat_n(' ', pad));
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.extend(std::iter::repeat_n('-', total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let mut t = Table::new(["group", "mean", "n"]);
        t.row(["male reviewers from California", "4.82", "127"]);
        t.row(["x", "3.1", "9"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let mean_col = lines[0].find("mean").unwrap();
        assert_eq!(lines[2].find("4.82"), Some(mean_col));
        assert_eq!(lines[3].find("3.1"), Some(mean_col));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn unicode_width_by_chars() {
        let mut t = Table::new(["label", "v"]);
        t.row(["héllo ♂", "1"]);
        t.row(["ascii", "2"]);
        let text = t.render();
        assert!(text.lines().count() == 4);
    }
}
