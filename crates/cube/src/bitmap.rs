//! A fixed-size bitset over rating-tuple positions, with a hybrid
//! dense/sparse representation.
//!
//! Group covers are subsets of `0..|R_I|`; the mining loop's hot operations
//! are union (for the coverage constraint) and popcount. Dense covers are
//! stored as `u64`-block bitmaps whose word loops run through the
//! runtime-dispatched [`crate::kernels`] (AVX2 + POPCNT where the CPU has
//! them, unrolled portable code otherwise). At MovieLens scale (`|R_I|` in
//! the tens of thousands) a dense cover is a few KiB and unions run at
//! memory bandwidth.
//!
//! At `--scale huge` most fine-arity cells are nearly empty: thousands of
//! blocks, a handful of set bits. Those covers use the **sparse** container
//! — a sorted run of `(word, bits)` entries (12 bytes each) carved out of a
//! per-cuboid `SparseStore`, chosen per cell by the builder's density
//! threshold (`sparse_cover_eligible`). Every operation accepts any mix
//! of representations and is pinned bit-identical to the dense code by the
//! property tests below and by the retained naive oracle; mutation of a
//! sparse (or pool-shared) bitmap copies it out to owned dense blocks
//! first, so the representation is invisible to callers.

use crate::kernels;
use std::sync::{Arc, Mutex};

/// Cap on recycled chunk buffers parked in [`CHUNK_FREELIST`] (≈ 16 MiB
/// at the builder's 64 KiB chunk size).
const FREELIST_MAX: usize = 256;

/// Only buffers up to the standard chunk size are parked (keeping the
/// freelist's worst case at `FREELIST_MAX × 64 KiB` = the documented
/// 16 MiB); the oversized single-cover chunks of outsized universes
/// free normally instead of pinning megabytes each.
const FREELIST_MAX_WORDS: usize = 8 * 1024;

/// Recycled cover-block buffers.
///
/// A cube build materializes megabytes of cover blocks and a dropped
/// cube frees them all at once; handing that memory back to the
/// allocator lets glibc trim the heap top, so the *next* build
/// page-faults every block back in (kernel-zeroing included) — measured
/// at more than half the whole materialization cost. Parking the
/// buffers here instead keeps the pages mapped and warm.
static CHUNK_FREELIST: Mutex<Vec<Vec<u64>>> = Mutex::new(Vec::new());

/// A cover-block chunk that returns its buffer to the freelist on drop.
#[derive(Debug)]
pub(crate) struct PooledBlocks(Vec<u64>);

impl PooledBlocks {
    #[inline]
    fn blocks(&self) -> &[u64] {
        &self.0
    }
}

impl Drop for PooledBlocks {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.0);
        if buf.capacity() > 0 && buf.capacity() <= FREELIST_MAX_WORDS {
            let mut freelist = CHUNK_FREELIST.lock().unwrap();
            if freelist.len() < FREELIST_MAX {
                freelist.push(buf);
            }
        }
    }
}

/// Hands out a zeroed `words`-long chunk buffer, recycling a parked one
/// when available (zeroing warm pages streams at memory bandwidth;
/// faulting fresh ones does not).
pub(crate) fn alloc_chunk(words: usize) -> Vec<u64> {
    let recycled = CHUNK_FREELIST.lock().unwrap().pop();
    match recycled {
        Some(mut buf) => {
            buf.clear();
            buf.resize(words, 0);
            buf
        }
        None => vec![0u64; words],
    }
}

/// Wraps a filled chunk buffer for sharing between its covers.
pub(crate) fn seal_chunk(blocks: Vec<u64>) -> Arc<PooledBlocks> {
    Arc::new(PooledBlocks(blocks))
}

/// A columnar store of sparse cover entries: parallel `(word, bits)`
/// arrays shared by every sparse cover of one cuboid fill (the same
/// one-allocation-per-cuboid layout the dense chunks use). Entries of one
/// cover are a contiguous window, strictly ascending by word, every
/// `bits` non-zero — the canonical form all sparse code relies on.
#[derive(Debug, Default)]
pub(crate) struct SparseStore {
    words: Vec<u32>,
    bits: Vec<u64>,
}

impl SparseStore {
    /// An empty store ready to accumulate cover windows.
    pub(crate) fn new() -> Self {
        SparseStore::default()
    }

    /// An empty store with room for `cap` entries — the builder sizes
    /// stores from plan-level entry counts up front so the fill pass
    /// stays free of growth reallocation (the counting-allocator test
    /// bounds fill allocations structurally).
    pub(crate) fn with_capacity(cap: usize) -> Self {
        SparseStore {
            words: Vec::with_capacity(cap),
            bits: Vec::with_capacity(cap),
        }
    }

    /// Number of entries appended so far (the `start` of the next window).
    pub(crate) fn len(&self) -> usize {
        self.words.len()
    }

    /// Appends one `(word, bits)` entry.
    #[inline]
    pub(crate) fn push(&mut self, word: u32, bits: u64) {
        debug_assert_ne!(bits, 0, "sparse entries carry at least one bit");
        self.words.push(word);
        self.bits.push(bits);
    }

    /// Seals the store for sharing between its covers.
    pub(crate) fn seal(self) -> Arc<SparseStore> {
        Arc::new(self)
    }
}

/// Minimum dense block count before the sparse container is considered.
/// Below this a dense window is ≤ 8 KiB — cheap to zero, L1/L2-resident
/// for the kernels — while every sparse cover pays a per-survivor sort
/// in the fill pass; measured at MovieLens scale (250-word covers) that
/// sort costs ~15% of the whole build for a memory saving that does not
/// matter at those sizes. The sparse container is for the huge-scale
/// regime (tens of thousands of words per cover), where the dense form
/// wastes megabytes per nearly-empty cell.
const SPARSE_MIN_WORDS: usize = 1024;

/// Whether a cover over `words` dense blocks with `raw_entries` scattered
/// word entries (pre-fold, as counted by the plan's `entry_offsets`)
/// should use the sparse container.
///
/// At `raw_entries ≤ words / 4` the sparse form costs at most
/// `3 × words` bytes against the dense `8 × words` — a guaranteed ≥ 62 %
/// saving per sparse cover, before fold dedup shrinks it further. The
/// decision is a pure function of plan-level counts, so the scratch fill
/// and the delta rebuild always agree on a cover's representation.
pub(crate) fn sparse_cover_eligible(words: usize, raw_entries: usize) -> bool {
    words >= SPARSE_MIN_WORDS && raw_entries <= words / 4
}

/// `#[cold]` out-of-line panic for the universe checks: every binary
/// bitmap operation guards its universes with one predictable branch that
/// jumps here, keeping the panic formatting machinery out of the hot
/// loops.
#[cold]
#[inline(never)]
fn universe_mismatch(a: usize, b: usize) -> ! {
    panic!("universe mismatch: {a} vs {b}");
}

/// Checks two universes agree; diverges through the cold path otherwise.
#[inline(always)]
fn check_universe(a: usize, b: usize) {
    if a != b {
        universe_mismatch(a, b);
    }
}

/// Block storage of a bitmap: privately owned dense blocks, a window of a
/// shared columnar block pool, or a window of a shared sparse-entry store.
///
/// The cube builder materializes every dense cover of a cuboid into
/// **one** flat allocation (thousands of 2 KiB covers otherwise cost more
/// in `malloc` traffic than the whole counting pass) and hands each
/// candidate a `Shared` window into it; covers below the density
/// threshold get a `Sparse` window of the cuboid's entry store instead.
/// Reads see either representation transparently; the first mutation
/// copies the window out to owned dense blocks (copy-on-write), so
/// scratch bitmaps in the mining loops — which are constructed owned —
/// never pay the branch-and-copy.
#[derive(Debug, Clone)]
enum Blocks {
    Owned(Vec<u64>),
    Shared {
        /// The whole columnar pool chunk (shared, never reallocated;
        /// recycled through the chunk freelist when the last cover
        /// drops). `Arc<PooledBlocks>` wraps a moved-in buffer — never a
        /// copy (the pools are megabytes at catalogue scale).
        pool: Arc<PooledBlocks>,
        /// First block of this bitmap's window inside `pool`.
        start: usize,
        /// Number of blocks in the window.
        words: usize,
    },
    Sparse {
        /// The cuboid's shared sparse-entry store.
        store: Arc<SparseStore>,
        /// First entry of this bitmap's window inside `store`.
        start: usize,
        /// Number of entries in the window.
        entries: usize,
    },
}

/// A borrowed view of a bitmap's contents in whichever representation it
/// holds — the match header of every binary operation below.
enum View<'a> {
    Dense(&'a [u64]),
    Sparse(&'a [u32], &'a [u64]),
}

/// A fixed-universe bitset.
///
/// ```
/// use maprat_cube::Bitmap;
/// let mut a = Bitmap::from_positions(100, [1, 5, 70]);
/// let b = Bitmap::from_positions(100, [5, 99]);
/// assert_eq!(a.union_count(&b), 4);
/// assert_eq!(a.intersection_count(&b), 1);
/// a.union_with(&b);
/// assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 5, 70, 99]);
/// ```
#[derive(Debug, Clone)]
pub struct Bitmap {
    len: usize,
    blocks: Blocks,
}

impl PartialEq for Bitmap {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        // Equality is over the *set*, not the representation — a sparse
        // cover equals the dense bitmap with the same positions (the
        // oracle suites compare hybrid builder output against naive
        // dense covers through this).
        match (self.view(), other.view()) {
            (View::Dense(a), View::Dense(b)) => a == b,
            (View::Dense(d), View::Sparse(w, b)) | (View::Sparse(w, b), View::Dense(d)) => {
                dense_equals_sparse(d, w, b)
            }
            (View::Sparse(aw, ab), View::Sparse(bw, bb)) => {
                // Canonical form (ascending distinct words, non-zero
                // bits) makes representation equality set equality.
                aw == bw && ab == bb
            }
        }
    }
}

impl Eq for Bitmap {}

/// Whether dense blocks `d` carry exactly the sparse set `(w, b)`.
fn dense_equals_sparse(d: &[u64], w: &[u32], b: &[u64]) -> bool {
    let mut prev = 0usize;
    for (&wi, &wb) in w.iter().zip(b) {
        let wi = wi as usize;
        if d[prev..wi].iter().any(|&x| x != 0) || d[wi] != wb {
            return false;
        }
        prev = wi + 1;
    }
    d[prev..].iter().all(|&x| x == 0)
}

impl Bitmap {
    /// Creates an empty bitmap over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        Bitmap {
            len,
            blocks: Blocks::Owned(vec![0; len.div_ceil(64)]),
        }
    }

    /// Wraps already-filled owned dense blocks (`ceil(len/64)` of them)
    /// as a bitmap over `0..len` — the batch-explain derive materializes
    /// extracted covers directly into block buffers.
    pub(crate) fn from_owned_blocks(len: usize, blocks: Vec<u64>) -> Self {
        debug_assert_eq!(blocks.len(), len.div_ceil(64));
        debug_assert!(
            len.is_multiple_of(64)
                || blocks
                    .last()
                    .is_none_or(|&b| b & !(u64::MAX >> (64 - len % 64)) == 0),
            "bits outside the universe"
        );
        Bitmap {
            len,
            blocks: Blocks::Owned(blocks),
        }
    }

    /// Wraps a window of a shared block pool as a read-optimized bitmap
    /// over `0..len` (blocks `start..start + ceil(len/64)` of `pool`).
    /// Mutation copies the window out first (copy-on-write).
    pub(crate) fn from_shared_pool(len: usize, pool: Arc<PooledBlocks>, start: usize) -> Self {
        let words = len.div_ceil(64);
        debug_assert!(start + words <= pool.blocks().len());
        Bitmap {
            len,
            blocks: Blocks::Shared { pool, start, words },
        }
    }

    /// Wraps a window of a shared sparse-entry store as a bitmap over
    /// `0..len` (entries `start..start + entries` of `store`, which must
    /// be in canonical form). Mutation copies out to dense owned blocks.
    pub(crate) fn from_sparse_store(
        len: usize,
        store: Arc<SparseStore>,
        start: usize,
        entries: usize,
    ) -> Self {
        debug_assert!(start + entries <= store.len());
        debug_assert!(
            store.words[start..start + entries]
                .windows(2)
                .all(|p| p[0] < p[1]),
            "sparse entries must be strictly ascending by word"
        );
        Bitmap {
            len,
            blocks: Blocks::Sparse {
                store,
                start,
                entries,
            },
        }
    }

    /// Builds a sparse-container bitmap from canonical `(word, bits)`
    /// entries: strictly ascending by word, every `bits` non-zero, no
    /// bit outside the universe. Mostly a test/bench constructor — the
    /// builder goes through the shared per-cuboid store instead.
    pub fn from_entries<I: IntoIterator<Item = (u32, u64)>>(len: usize, entries: I) -> Self {
        let words = len.div_ceil(64);
        let mut store = SparseStore::new();
        for (w, b) in entries {
            assert!(
                (w as usize) < words,
                "entry word {w} outside universe {len}"
            );
            assert!(
                store.words.last().is_none_or(|&p| p < w),
                "entries must be strictly ascending by word"
            );
            assert_ne!(b, 0, "sparse entries carry at least one bit");
            if w as usize == words - 1 && !len.is_multiple_of(64) {
                assert_eq!(
                    b & !(u64::MAX >> (64 - len % 64)),
                    0,
                    "entry bits outside universe {len}"
                );
            }
            store.push(w, b);
        }
        let entries = store.len();
        Bitmap::from_sparse_store(len, store.seal(), 0, entries)
    }

    /// The current representation view.
    #[inline]
    fn view(&self) -> View<'_> {
        match &self.blocks {
            Blocks::Owned(v) => View::Dense(v),
            Blocks::Shared { pool, start, words } => {
                View::Dense(&pool.blocks()[*start..*start + *words])
            }
            Blocks::Sparse {
                store,
                start,
                entries,
            } => View::Sparse(
                &store.words[*start..*start + *entries],
                &store.bits[*start..*start + *entries],
            ),
        }
    }

    /// The dense block slice; `None` for the sparse container.
    #[inline]
    fn dense(&self) -> Option<&[u64]> {
        match self.view() {
            View::Dense(d) => Some(d),
            View::Sparse(..) => None,
        }
    }

    /// Mutable dense blocks; shared or sparse storage is copied out
    /// (once) to owned dense blocks first.
    #[inline]
    fn blocks_mut(&mut self) -> &mut [u64] {
        match &self.blocks {
            Blocks::Owned(_) => {}
            Blocks::Shared { .. } => {
                let copied = self.dense().expect("shared is dense").to_vec();
                self.blocks = Blocks::Owned(copied);
            }
            Blocks::Sparse { .. } => {
                let mut dense = vec![0u64; self.len.div_ceil(64)];
                if let View::Sparse(w, b) = self.view() {
                    for (&wi, &wb) in w.iter().zip(b) {
                        dense[wi as usize] = wb;
                    }
                }
                self.blocks = Blocks::Owned(dense);
            }
        }
        match &mut self.blocks {
            Blocks::Owned(v) => v,
            _ => unreachable!("just converted to owned"),
        }
    }

    /// The universe size (number of addressable positions).
    #[inline]
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Whether this bitmap uses the sparse run container.
    #[inline]
    pub fn is_sparse(&self) -> bool {
        matches!(self.blocks, Blocks::Sparse { .. })
    }

    /// Bytes of cover storage this bitmap references: its dense window
    /// (8 bytes/block) or its sparse entries (12 bytes each). Shared
    /// storage is attributed per window, not per `Arc` — the huge-scale
    /// memory check sums this across a cube's covers.
    pub fn cover_bytes(&self) -> usize {
        match self.view() {
            View::Dense(d) => d.len() * 8,
            View::Sparse(w, _) => w.len() * 12,
        }
    }

    /// The shared-pool parts of a pooled window (`None` for owned or
    /// sparse storage) — the delta builder re-shares whole unchanged
    /// chunks across incremental rebuilds through this.
    #[inline]
    pub(crate) fn shared_parts(&self) -> Option<(&Arc<PooledBlocks>, usize, usize)> {
        match &self.blocks {
            Blocks::Shared { pool, start, words } => Some((pool, *start, *words)),
            _ => None,
        }
    }

    /// The shared-store parts of a sparse window (`None` otherwise) —
    /// the delta builder re-shares unchanged sparse covers through this.
    #[inline]
    pub(crate) fn sparse_parts(&self) -> Option<(&Arc<SparseStore>, usize, usize)> {
        match &self.blocks {
            Blocks::Sparse {
                store,
                start,
                entries,
            } => Some((store, *start, *entries)),
            _ => None,
        }
    }

    /// Sets position `i`.
    ///
    /// # Panics
    /// Panics if `i` is outside the universe.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} outside universe {}", self.len);
        self.blocks_mut()[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether position `i` is set.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} outside universe {}", self.len);
        match self.view() {
            View::Dense(d) => d[i / 64] & (1u64 << (i % 64)) != 0,
            View::Sparse(w, b) => match w.binary_search(&((i / 64) as u32)) {
                Ok(e) => b[e] & (1u64 << (i % 64)) != 0,
                Err(_) => false,
            },
        }
    }

    /// Number of set positions.
    #[inline]
    pub fn count(&self) -> usize {
        match self.view() {
            View::Dense(d) => (kernels::active().count)(d),
            View::Sparse(_, b) => b.iter().map(|x| x.count_ones() as usize).sum(),
        }
    }

    /// Whether no position is set.
    pub fn is_empty(&self) -> bool {
        match self.view() {
            View::Dense(d) => d.iter().all(|&b| b == 0),
            // Canonical form: every entry carries at least one bit.
            View::Sparse(w, _) => w.is_empty(),
        }
    }

    /// Clears all positions (keeps the universe).
    pub fn clear(&mut self) {
        match &mut self.blocks {
            Blocks::Owned(v) => v.fill(0),
            // No point copying a window out just to zero it.
            _ => self.blocks = Blocks::Owned(vec![0; self.len.div_ceil(64)]),
        }
    }

    /// Overwrites `self` with the contents of `other`, reusing the block
    /// buffer when `self` already owns dense blocks (the mining loop's
    /// scratch bitmaps are assigned this way on every hill-climbing
    /// step).
    ///
    /// # Panics
    /// Panics on universe mismatch.
    #[inline]
    pub fn copy_from(&mut self, other: &Bitmap) {
        check_universe(self.len, other.len);
        let dst = self.blocks_mut();
        match other.view() {
            View::Dense(src) => (kernels::active().copy)(dst, src),
            View::Sparse(w, b) => {
                dst.fill(0);
                for (&wi, &wb) in w.iter().zip(b) {
                    dst[wi as usize] = wb;
                }
            }
        }
    }

    /// In-place union: `self |= other`.
    ///
    /// # Panics
    /// Panics on universe mismatch.
    #[inline]
    pub fn union_with(&mut self, other: &Bitmap) {
        check_universe(self.len, other.len);
        let dst = self.blocks_mut();
        match other.view() {
            View::Dense(src) => (kernels::active().union_with)(dst, src),
            // O(entries) scatter — the sparse fast path the coverage
            // union inherits for nearly-empty covers.
            View::Sparse(w, b) => {
                for (&wi, &wb) in w.iter().zip(b) {
                    dst[wi as usize] |= wb;
                }
            }
        }
    }

    /// In-place intersection: `self &= other`.
    ///
    /// # Panics
    /// Panics on universe mismatch.
    #[inline]
    pub fn intersect_with(&mut self, other: &Bitmap) {
        check_universe(self.len, other.len);
        let dst = self.blocks_mut();
        match other.view() {
            View::Dense(src) => (kernels::active().intersect_with)(dst, src),
            View::Sparse(w, b) => {
                // Zero the gaps between entries, AND the carried words.
                let mut prev = 0usize;
                for (&wi, &wb) in w.iter().zip(b) {
                    let wi = wi as usize;
                    dst[prev..wi].fill(0);
                    dst[wi] &= wb;
                    prev = wi + 1;
                }
                let n = dst.len();
                dst[prev..n].fill(0);
            }
        }
    }

    /// In-place difference: `self &= !other`.
    ///
    /// # Panics
    /// Panics on universe mismatch.
    #[inline]
    pub fn subtract(&mut self, other: &Bitmap) {
        check_universe(self.len, other.len);
        let dst = self.blocks_mut();
        match other.view() {
            View::Dense(src) => (kernels::active().subtract)(dst, src),
            View::Sparse(w, b) => {
                for (&wi, &wb) in w.iter().zip(b) {
                    dst[wi as usize] &= !wb;
                }
            }
        }
    }

    /// `|self ∩ other|` without allocating.
    ///
    /// # Panics
    /// Panics on universe mismatch.
    #[inline]
    pub fn intersection_count(&self, other: &Bitmap) -> usize {
        check_universe(self.len, other.len);
        match (self.view(), other.view()) {
            (View::Dense(a), View::Dense(b)) => (kernels::active().intersection_count)(a, b),
            (View::Dense(d), View::Sparse(w, b)) | (View::Sparse(w, b), View::Dense(d)) => w
                .iter()
                .zip(b)
                .map(|(&wi, &wb)| (d[wi as usize] & wb).count_ones() as usize)
                .sum(),
            (View::Sparse(aw, ab), View::Sparse(bw, bb)) => {
                let (mut i, mut j, mut total) = (0usize, 0usize, 0usize);
                while i < aw.len() && j < bw.len() {
                    match aw[i].cmp(&bw[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            total += (ab[i] & bb[j]).count_ones() as usize;
                            i += 1;
                            j += 1;
                        }
                    }
                }
                total
            }
        }
    }

    /// `|self ∪ other|` without allocating.
    ///
    /// # Panics
    /// Panics on universe mismatch.
    #[inline]
    pub fn union_count(&self, other: &Bitmap) -> usize {
        check_universe(self.len, other.len);
        match (self.view(), other.view()) {
            (View::Dense(a), View::Dense(b)) => (kernels::active().union_count)(a, b),
            // |d ∪ s| = |d| + |s \ d| — one kernel popcount plus an
            // O(entries) correction.
            (View::Dense(d), View::Sparse(w, b)) | (View::Sparse(w, b), View::Dense(d)) => {
                (kernels::active().count)(d)
                    + w.iter()
                        .zip(b)
                        .map(|(&wi, &wb)| (wb & !d[wi as usize]).count_ones() as usize)
                        .sum::<usize>()
            }
            (View::Sparse(aw, ab), View::Sparse(bw, bb)) => {
                let (mut i, mut j, mut total) = (0usize, 0usize, 0usize);
                while i < aw.len() && j < bw.len() {
                    match aw[i].cmp(&bw[j]) {
                        std::cmp::Ordering::Less => {
                            total += ab[i].count_ones() as usize;
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            total += bb[j].count_ones() as usize;
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            total += (ab[i] | bb[j]).count_ones() as usize;
                            i += 1;
                            j += 1;
                        }
                    }
                }
                total += ab[i..]
                    .iter()
                    .map(|x| x.count_ones() as usize)
                    .sum::<usize>();
                total += bb[j..]
                    .iter()
                    .map(|x| x.count_ones() as usize)
                    .sum::<usize>();
                total
            }
        }
    }

    /// Whether every set position of `self` is also set in `other`.
    ///
    /// # Panics
    /// Panics on universe mismatch.
    #[inline]
    pub fn is_subset_of(&self, other: &Bitmap) -> bool {
        check_universe(self.len, other.len);
        match (self.view(), other.view()) {
            (View::Dense(a), View::Dense(b)) => (kernels::active().is_subset)(a, b),
            (View::Sparse(w, b), View::Dense(d)) => {
                w.iter().zip(b).all(|(&wi, &wb)| wb & !d[wi as usize] == 0)
            }
            (View::Dense(d), View::Sparse(w, b)) => {
                // Dense words outside the sparse entries must be empty.
                let mut prev = 0usize;
                for (&wi, &wb) in w.iter().zip(b) {
                    let wi = wi as usize;
                    if d[prev..wi].iter().any(|&x| x != 0) || d[wi] & !wb != 0 {
                        return false;
                    }
                    prev = wi + 1;
                }
                d[prev..].iter().all(|&x| x == 0)
            }
            (View::Sparse(aw, ab), View::Sparse(bw, bb)) => {
                let mut j = 0usize;
                for (&wi, &wb) in aw.iter().zip(ab) {
                    while j < bw.len() && bw[j] < wi {
                        j += 1;
                    }
                    if j == bw.len() || bw[j] != wi || wb & !bb[j] != 0 {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// The raw `u64` blocks (64 positions per block, little-endian bit
    /// order). Read-only: the mining layer's sparse probes intersect
    /// candidate word entries against scratch blocks directly. Only
    /// dense bitmaps have a block slice — call sites that may see a
    /// sparse cover use [`for_each_set_word`](Self::for_each_set_word)
    /// or [`or_into`](Self::or_into) instead.
    ///
    /// # Panics
    /// Panics on a sparse-container bitmap.
    #[inline]
    pub fn block_slice(&self) -> &[u64] {
        self.dense()
            .expect("block_slice on a sparse cover; use for_each_set_word")
    }

    /// Calls `f(word_index, bits)` for every block that has at least one
    /// set bit, in ascending word order — the representation-agnostic
    /// way to walk a cover's words (sparse covers visit their entries;
    /// dense covers skip zero words).
    #[inline]
    pub fn for_each_set_word<F: FnMut(usize, u64)>(&self, mut f: F) {
        match self.view() {
            View::Dense(d) => {
                for (wi, &wb) in d.iter().enumerate() {
                    if wb != 0 {
                        f(wi, wb);
                    }
                }
            }
            View::Sparse(w, b) => {
                for (&wi, &wb) in w.iter().zip(b) {
                    f(wi as usize, wb);
                }
            }
        }
    }

    /// ORs this bitmap's blocks into `dst`, which must span at least the
    /// universe's blocks (`dst |= self`; extra trailing blocks of `dst`
    /// are untouched). The delta rebuild writes previous covers into
    /// fresh zeroed chunk windows through this, whatever their
    /// representation.
    #[inline]
    pub fn or_into(&self, dst: &mut [u64]) {
        match self.view() {
            View::Dense(src) => (kernels::active().union_with)(&mut dst[..src.len()], src),
            View::Sparse(w, b) => {
                for (&wi, &wb) in w.iter().zip(b) {
                    dst[wi as usize] |= wb;
                }
            }
        }
    }

    /// Popcount of the bit range `[start, start + len)` — the fused
    /// batch-explain derive computes per-segment supports through this
    /// without materializing sub-covers.
    ///
    /// # Panics
    /// Panics if the range extends past the universe.
    pub fn count_range(&self, start: usize, len: usize) -> usize {
        assert!(start + len <= self.len, "range outside universe");
        if len == 0 {
            return 0;
        }
        match self.view() {
            View::Dense(d) => kernels::count_range(d, start, len),
            View::Sparse(w, b) => {
                let end = start + len;
                let first = w.partition_point(|&wi| ((wi as usize) + 1) * 64 <= start);
                let mut total = 0usize;
                for (&wi, &wb) in w[first..].iter().zip(&b[first..]) {
                    let base = wi as usize * 64;
                    if base >= end {
                        break;
                    }
                    let lo = start.max(base) - base;
                    let hi = end.min(base + 64) - base;
                    let mask = (u64::MAX >> (64 - (hi - lo))) << lo;
                    total += (wb & mask).count_ones() as usize;
                }
                total
            }
        }
    }

    /// ORs the bit range `[src_start, src_start + len)` of `self` into
    /// `dst` starting at bit `dst_start` (any relative alignment; `dst`
    /// bits outside the target range are untouched) — the window
    /// extraction of the fused batch-explain derive.
    ///
    /// # Panics
    /// Panics if the source range extends past the universe.
    pub fn or_window_into(&self, src_start: usize, len: usize, dst: &mut [u64], dst_start: usize) {
        assert!(src_start + len <= self.len, "range outside universe");
        if len == 0 {
            return;
        }
        match self.view() {
            View::Dense(d) => kernels::or_bit_window(d, src_start, len, dst, dst_start),
            View::Sparse(w, b) => {
                let end = src_start + len;
                let first = w.partition_point(|&wi| ((wi as usize) + 1) * 64 <= src_start);
                for (&wi, &wb) in w[first..].iter().zip(&b[first..]) {
                    let base = wi as usize * 64;
                    if base >= end {
                        break;
                    }
                    let lo = src_start.max(base);
                    let hi = end.min(base + 64);
                    let seg = (wb >> (lo - base)) & kernels::low_mask(hi - lo);
                    if seg != 0 {
                        kernels::or_bit_window(
                            &[seg],
                            0,
                            hi - lo,
                            dst,
                            dst_start + (lo - src_start),
                        );
                    }
                }
            }
        }
    }

    /// Iterates the set positions in ascending order.
    pub fn iter(&self) -> BitmapIter<'_> {
        match self.view() {
            View::Dense(blocks) => BitmapIter::Dense {
                blocks,
                block_idx: 0,
                current: blocks.first().copied().unwrap_or(0),
            },
            View::Sparse(words, bits) => BitmapIter::Sparse {
                words,
                bits,
                entry: 0,
                word: 0,
                current: 0,
            },
        }
    }

    /// Builds a bitmap from set positions.
    pub fn from_positions<I: IntoIterator<Item = usize>>(len: usize, positions: I) -> Self {
        let mut bm = Bitmap::new(len);
        for p in positions {
            bm.set(p);
        }
        bm
    }
}

/// Ascending iterator over set positions (either representation).
pub enum BitmapIter<'a> {
    /// Walking dense blocks.
    Dense {
        /// The dense block slice.
        blocks: &'a [u64],
        /// Current block index.
        block_idx: usize,
        /// Remaining bits of the current block.
        current: u64,
    },
    /// Walking sparse entries.
    Sparse {
        /// Entry words, strictly ascending.
        words: &'a [u32],
        /// Entry bit patterns.
        bits: &'a [u64],
        /// Next entry to load.
        entry: usize,
        /// Word index of the bits currently being drained.
        word: usize,
        /// Remaining bits of the current entry.
        current: u64,
    },
}

impl Iterator for BitmapIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            BitmapIter::Dense {
                blocks,
                block_idx,
                current,
            } => loop {
                if *current != 0 {
                    let bit = current.trailing_zeros() as usize;
                    *current &= *current - 1; // clear lowest set bit
                    return Some(*block_idx * 64 + bit);
                }
                *block_idx += 1;
                if *block_idx >= blocks.len() {
                    return None;
                }
                *current = blocks[*block_idx];
            },
            BitmapIter::Sparse {
                words,
                bits,
                entry,
                word,
                current,
            } => loop {
                if *current != 0 {
                    let bit = current.trailing_zeros() as usize;
                    *current &= *current - 1;
                    return Some(*word * 64 + bit);
                }
                if *entry >= words.len() {
                    return None;
                }
                *word = words[*entry] as usize;
                *current = bits[*entry];
                *entry += 1;
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut bm = Bitmap::new(130);
        assert!(bm.is_empty());
        bm.set(0);
        bm.set(64);
        bm.set(129);
        assert!(bm.get(0) && bm.get(64) && bm.get(129));
        assert!(!bm.get(1));
        assert_eq!(bm.count(), 3);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_universe_panics() {
        let mut bm = Bitmap::new(10);
        bm.set(10);
    }

    #[test]
    fn union_and_intersection() {
        let a = Bitmap::from_positions(100, [1, 5, 70]);
        let b = Bitmap::from_positions(100, [5, 70, 99]);
        assert_eq!(a.intersection_count(&b), 2);
        assert_eq!(a.union_count(&b), 4);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 4);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.count(), 2);
        assert!(i.is_subset_of(&a));
        assert!(i.is_subset_of(&b));
    }

    #[test]
    fn subtract_removes() {
        let mut a = Bitmap::from_positions(10, [1, 2, 3]);
        let b = Bitmap::from_positions(10, [2]);
        a.subtract(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn iter_ascending_across_blocks() {
        let positions = vec![0, 63, 64, 65, 127, 128, 199];
        let bm = Bitmap::from_positions(200, positions.clone());
        assert_eq!(bm.iter().collect::<Vec<_>>(), positions);
    }

    #[test]
    fn copy_from_overwrites_in_place() {
        let a = Bitmap::from_positions(100, [1, 5, 70]);
        let mut b = Bitmap::from_positions(100, [2, 99]);
        b.copy_from(&a);
        assert_eq!(b, a);
        b.copy_from(&Bitmap::new(100));
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn copy_from_checks_universe() {
        let mut a = Bitmap::new(10);
        a.copy_from(&Bitmap::new(20));
    }

    #[test]
    fn clear_resets() {
        let mut bm = Bitmap::from_positions(50, [3, 30]);
        bm.clear();
        assert!(bm.is_empty());
        assert_eq!(bm.universe(), 50);
    }

    #[test]
    fn shared_pool_windows_behave_like_owned_bitmaps() {
        // Two bitmaps carved out of one flat pool (the builder's cover
        // layout): reads see their windows, mutation copies out.
        let universe = 70; // 2 blocks per window
        let pool = seal_chunk(vec![0b1011u64, 0, 0b100u64, 1 << 5]);
        let a = Bitmap::from_shared_pool(universe, Arc::clone(&pool), 0);
        let b = Bitmap::from_shared_pool(universe, Arc::clone(&pool), 2);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 1, 3]);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![2, 69]);
        assert_eq!(a.count(), 3);
        assert_eq!(a, Bitmap::from_positions(universe, [0, 1, 3]));

        // Copy-on-write: mutating one window leaves the pool (and the
        // sibling) untouched.
        let mut c = a.clone();
        c.set(42);
        assert!(c.get(42));
        assert!(!a.get(42), "mutation must not write through the pool");
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![2, 69]);

        // Owned/shared mixes interoperate in set algebra.
        let owned = Bitmap::from_positions(universe, [1, 2]);
        assert_eq!(a.intersection_count(&owned), 1);
        let mut u = owned.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 69]);
    }

    #[test]
    fn empty_universe_ok() {
        let bm = Bitmap::new(0);
        assert_eq!(bm.count(), 0);
        assert_eq!(bm.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn mismatched_universe_panics() {
        let mut a = Bitmap::new(10);
        let b = Bitmap::new(20);
        a.union_with(&b);
    }

    // ------------------------------------------------------------------
    // Hybrid sparse container.
    // ------------------------------------------------------------------

    /// Deterministic pseudo-random positions (SplitMix64 over the seed).
    fn random_positions(seed: u64, universe: usize, approx: usize) -> Vec<usize> {
        let mut s = seed;
        let mut out: Vec<usize> = (0..approx)
            .map(|_| {
                s = s.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                (z ^ (z >> 31)) as usize % universe.max(1)
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The same set in both containers.
    fn both_reprs(seed: u64, universe: usize, approx: usize) -> (Bitmap, Bitmap) {
        let positions = random_positions(seed, universe, approx);
        let dense = Bitmap::from_positions(universe, positions.clone());
        let mut entries: Vec<(u32, u64)> = Vec::new();
        for p in positions {
            match entries.last_mut() {
                Some((w, b)) if *w as usize == p / 64 => *b |= 1u64 << (p % 64),
                _ => entries.push(((p / 64) as u32, 1u64 << (p % 64))),
            }
        }
        let sparse = Bitmap::from_entries(universe, entries);
        assert!(sparse.is_sparse() && !dense.is_sparse());
        (dense, sparse)
    }

    #[test]
    fn sparse_round_trips_through_iteration() {
        for seed in 0..8u64 {
            let (dense, sparse) = both_reprs(seed, 1000, 25);
            assert_eq!(dense, sparse);
            assert_eq!(sparse, dense);
            assert_eq!(
                dense.iter().collect::<Vec<_>>(),
                sparse.iter().collect::<Vec<_>>(),
                "iteration order must not depend on representation"
            );
            assert_eq!(dense.count(), sparse.count());
            for i in (0..1000).step_by(7) {
                assert_eq!(dense.get(i), sparse.get(i));
            }
            assert_eq!(
                Bitmap::from_positions(1000, sparse.iter()),
                dense,
                "round trip through positions"
            );
        }
    }

    #[test]
    fn every_representation_mix_matches_the_dense_oracle() {
        let universe = 700;
        for seed in 0..4u64 {
            let (da, sa) = both_reprs(seed * 2 + 1, universe, 30);
            let (db, sb) = both_reprs(seed * 2 + 2, universe, 500);
            for a in [&da, &sa] {
                for b in [&db, &sb] {
                    assert_eq!(a.intersection_count(b), da.intersection_count(&db));
                    assert_eq!(b.intersection_count(a), da.intersection_count(&db));
                    assert_eq!(a.union_count(b), da.union_count(&db));
                    assert_eq!(b.union_count(a), da.union_count(&db));
                    assert_eq!(a.is_subset_of(b), da.is_subset_of(&db));
                    assert_eq!(b.is_subset_of(a), db.is_subset_of(&da));

                    let mut u = da.clone();
                    u.union_with(&db);
                    let mut got = a.clone();
                    got.union_with(b);
                    assert_eq!(got, u);

                    let mut i = da.clone();
                    i.intersect_with(&db);
                    let mut got = a.clone();
                    got.intersect_with(b);
                    assert_eq!(got, i);

                    let mut s = da.clone();
                    s.subtract(&db);
                    let mut got = a.clone();
                    got.subtract(b);
                    assert_eq!(got, s);

                    let mut c = Bitmap::new(universe);
                    c.copy_from(b);
                    assert_eq!(c, db);
                }
            }
            // Sparse ⊆ relations in both directions.
            let mut sub = da.clone();
            sub.intersect_with(&db);
            for b in [&db, &sb] {
                assert!(sub.is_subset_of(b));
            }
        }
    }

    #[test]
    fn sparse_mutation_copies_out_to_dense() {
        let (_, sparse) = both_reprs(5, 640, 10);
        let before = sparse.iter().collect::<Vec<_>>();
        let mut m = sparse.clone();
        m.set(333);
        assert!(!m.is_sparse(), "mutation densifies");
        assert!(m.get(333));
        assert!(sparse.is_sparse(), "the source window is untouched");
        assert_eq!(sparse.iter().collect::<Vec<_>>(), before);
    }

    #[test]
    fn for_each_set_word_agrees_across_representations() {
        let (dense, sparse) = both_reprs(9, 900, 40);
        let collect = |bm: &Bitmap| {
            let mut v = Vec::new();
            bm.for_each_set_word(|w, b| v.push((w, b)));
            v
        };
        assert_eq!(collect(&dense), collect(&sparse));
        assert!(!collect(&dense).iter().any(|&(_, b)| b == 0));
    }

    #[test]
    fn or_into_scatters_either_representation() {
        let (dense, sparse) = both_reprs(11, 500, 20);
        let words = 500usize.div_ceil(64);
        let mut a = vec![0u64; words];
        let mut b = vec![0u64; words];
        dense.or_into(&mut a);
        sparse.or_into(&mut b);
        assert_eq!(a, b);
        assert_eq!(a, dense.block_slice());
        // OR semantics: existing bits survive.
        let mut c = vec![u64::MAX; words];
        sparse.or_into(&mut c);
        assert!(c.iter().all(|&w| w == u64::MAX));
    }

    #[test]
    #[should_panic(expected = "block_slice on a sparse cover")]
    fn block_slice_rejects_sparse() {
        let (_, sparse) = both_reprs(3, 640, 5);
        let _ = sparse.block_slice();
    }

    #[test]
    fn eligibility_threshold_is_a_quarter_of_the_words() {
        assert!(!sparse_cover_eligible(4, 1), "tiny universes stay dense");
        assert!(
            !sparse_cover_eligible(1000, 0),
            "MovieLens-scale covers stay dense: the window is KiB-cheap \
             and the fill-pass sort is not"
        );
        assert!(sparse_cover_eligible(1024, 256));
        assert!(!sparse_cover_eligible(1024, 257));
        assert!(sparse_cover_eligible(100_000, 25_000));
        assert!(!sparse_cover_eligible(100_000, 25_001));
        assert!(sparse_cover_eligible(1024, 0));
    }

    #[test]
    fn cover_bytes_reflects_the_container() {
        let (dense, sparse) = both_reprs(13, 6400, 12);
        assert_eq!(dense.cover_bytes(), 100 * 8);
        assert!(sparse.cover_bytes() <= 12 * 12);
        assert!(sparse.cover_bytes() < dense.cover_bytes());
    }

    #[test]
    fn range_helpers_agree_across_representations() {
        let (dense, sparse) = both_reprs(17, 1200, 60);
        for &(start, len) in &[
            (0usize, 1200usize),
            (0, 64),
            (5, 200),
            (64, 128),
            (3, 61),
            (100, 0),
            (1199, 1),
            (70, 1000),
        ] {
            let expect = dense
                .iter()
                .filter(|&p| p >= start && p < start + len)
                .count();
            assert_eq!(dense.count_range(start, len), expect, "{start}+{len}");
            assert_eq!(sparse.count_range(start, len), expect, "{start}+{len}");
            for &dst_start in &[0usize, 3, 64, 129] {
                let wlen = (dst_start + len).div_ceil(64).max(1);
                let mut a = vec![0u64; wlen];
                let mut b = vec![0u64; wlen];
                dense.or_window_into(start, len, &mut a, dst_start);
                sparse.or_window_into(start, len, &mut b, dst_start);
                assert_eq!(a, b, "{start}+{len}@{dst_start}");
                let total: usize = a.iter().map(|w| w.count_ones() as usize).sum();
                assert_eq!(total, expect, "{start}+{len}@{dst_start}");
            }
        }
    }

    #[test]
    fn empty_sparse_cover_behaves() {
        let empty = Bitmap::from_entries(640, std::iter::empty());
        assert!(empty.is_sparse() && empty.is_empty());
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.iter().count(), 0);
        assert_eq!(empty, Bitmap::new(640));
        assert!(empty.is_subset_of(&Bitmap::new(640)));
        assert!(Bitmap::new(640).is_subset_of(&empty));
    }
}
