//! Single-flight request coalescing.
//!
//! When N identical cold requests arrive concurrently, exactly one caller
//! (the *leader*) runs the expensive computation; the other N−1
//! (*followers*) block on a condvar and share the leader's `Arc<V>`. The
//! paper's demo kept interactive latency low through "result
//! pre-computation and caching"; coalescing closes the remaining gap —
//! the stampede of identical requests that all miss the cache at once.
//!
//! The group is deliberately *not* a cache: a flight exists only while
//! its leader is computing. Callers are expected to consult their result
//! cache first, join or lead a flight on miss, and re-check the cache
//! after winning leadership (the previous leader may have published and
//! retired its flight between the two steps).
//!
//! Leader panics do not strand followers: a drop guard marks the flight
//! abandoned and wakes everyone, and each follower retries from the top
//! (one of them becomes the next leader).

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// How a [`FlightGroup::run`] call obtained its value.
#[derive(Debug)]
pub enum FlightOutcome<V> {
    /// This caller was the leader: it ran the computation itself.
    Led(std::sync::Arc<V>),
    /// This caller was a follower: it waited for a concurrent leader and
    /// shares that leader's result.
    Joined(std::sync::Arc<V>),
}

impl<V> FlightOutcome<V> {
    /// The shared value, regardless of who computed it.
    pub fn into_value(self) -> std::sync::Arc<V> {
        match self {
            FlightOutcome::Led(v) | FlightOutcome::Joined(v) => v,
        }
    }

    /// Whether this caller ran the computation.
    pub fn led(&self) -> bool {
        matches!(self, FlightOutcome::Led(_))
    }
}

enum FlightState<V> {
    Pending,
    Done(std::sync::Arc<V>),
    /// The leader unwound without publishing; waiters must retry.
    Abandoned,
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    ready: Condvar,
}

impl<V> Flight<V> {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            ready: Condvar::new(),
        }
    }
}

/// Ignore mutex poisoning: flight state transitions are single
/// assignments, so a panicking peer cannot leave the state torn.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A keyed single-flight coalescer (see the [module docs](self)).
///
/// ```
/// use maprat_cache::FlightGroup;
/// use std::sync::atomic::{AtomicU32, Ordering};
///
/// let group: FlightGroup<&str, u32> = FlightGroup::new();
/// let solves = AtomicU32::new(0);
/// std::thread::scope(|s| {
///     for _ in 0..4 {
///         s.spawn(|| {
///             let out = group.run("k", || {
///                 // Give peers time to pile onto the same flight.
///                 std::thread::sleep(std::time::Duration::from_millis(20));
///                 solves.fetch_add(1, Ordering::SeqCst);
///                 42
///             });
///             assert_eq!(*out.into_value(), 42);
///         });
///     }
/// });
/// assert_eq!(solves.load(Ordering::SeqCst), 1, "one leader solved for all");
/// assert_eq!(group.leads(), 1);
/// assert_eq!(group.joins(), 3);
/// ```
pub struct FlightGroup<K, V> {
    flights: Mutex<HashMap<K, std::sync::Arc<Flight<V>>>>,
    leads: AtomicU64,
    joins: AtomicU64,
}

impl<K, V> Default for FlightGroup<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> FlightGroup<K, V> {
    /// An empty group with zeroed counters.
    pub fn new() -> Self {
        FlightGroup {
            flights: Mutex::new(HashMap::new()),
            leads: AtomicU64::new(0),
            joins: AtomicU64::new(0),
        }
    }

    /// Completed calls that ran the computation themselves.
    pub fn leads(&self) -> u64 {
        self.leads.load(Ordering::Relaxed)
    }

    /// Completed calls that shared a concurrent leader's result.
    pub fn joins(&self) -> u64 {
        self.joins.load(Ordering::Relaxed)
    }

    /// Keys with a computation currently in flight (diagnostics).
    pub fn in_flight(&self) -> usize {
        relock(&self.flights).len()
    }
}

impl<K: Hash + Eq + Clone, V> FlightGroup<K, V> {
    /// Runs `compute` under single-flight semantics for `key`.
    ///
    /// At most one concurrent caller per key executes `compute`; the rest
    /// block until the leader publishes and then share its value. Distinct
    /// keys never contend beyond the brief registry lock.
    pub fn run(&self, key: K, compute: impl FnOnce() -> V) -> FlightOutcome<V> {
        loop {
            let joined = {
                let mut flights = relock(&self.flights);
                match flights.entry(key.clone()) {
                    Entry::Occupied(e) => Some(std::sync::Arc::clone(e.get())),
                    Entry::Vacant(e) => {
                        e.insert(std::sync::Arc::new(Flight::new()));
                        None
                    }
                }
            };
            let flight = match joined {
                None => {
                    // Leader: compute, publish, retire the flight. The
                    // guard turns an unwind into Abandoned so followers
                    // never wait forever.
                    let guard = LeadGuard {
                        group: self,
                        key: &key,
                    };
                    let value = std::sync::Arc::new(compute());
                    guard.publish(std::sync::Arc::clone(&value));
                    self.leads.fetch_add(1, Ordering::Relaxed);
                    return FlightOutcome::Led(value);
                }
                Some(f) => f,
            };
            let mut state = relock(&flight.state);
            loop {
                match &*state {
                    FlightState::Pending => {
                        state = flight
                            .ready
                            .wait(state)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    FlightState::Done(v) => {
                        self.joins.fetch_add(1, Ordering::Relaxed);
                        return FlightOutcome::Joined(std::sync::Arc::clone(v));
                    }
                    FlightState::Abandoned => break,
                }
            }
            // Leader abandoned (panicked): retry — this caller may now
            // become the next leader.
        }
    }

    fn retire(&self, key: &K, outcome: FlightState<V>) {
        let flight = relock(&self.flights).remove(key);
        if let Some(flight) = flight {
            *relock(&flight.state) = outcome;
            flight.ready.notify_all();
        }
    }
}

/// Publishes `Abandoned` if the leader unwinds before `publish`.
struct LeadGuard<'a, K: Hash + Eq + Clone, V> {
    group: &'a FlightGroup<K, V>,
    key: &'a K,
}

impl<K: Hash + Eq + Clone, V> LeadGuard<'_, K, V> {
    fn publish(self, value: std::sync::Arc<V>) {
        self.group.retire(self.key, FlightState::Done(value));
        std::mem::forget(self);
    }
}

impl<K: Hash + Eq + Clone, V> Drop for LeadGuard<'_, K, V> {
    fn drop(&mut self) {
        self.group.retire(self.key, FlightState::Abandoned);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::{Arc, Barrier};
    use std::time::Duration;

    #[test]
    fn serial_calls_each_lead() {
        let g: FlightGroup<u32, u32> = FlightGroup::new();
        assert!(g.run(1, || 10).led());
        assert!(g.run(1, || 11).led(), "retired flights do not linger");
        assert_eq!(g.leads(), 2);
        assert_eq!(g.joins(), 0);
        assert_eq!(g.in_flight(), 0);
    }

    #[test]
    fn concurrent_identical_keys_compute_once() {
        let g: Arc<FlightGroup<u32, u32>> = Arc::new(FlightGroup::new());
        let calls = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (g, calls, barrier) =
                    (Arc::clone(&g), Arc::clone(&calls), Arc::clone(&barrier));
                std::thread::spawn(move || {
                    barrier.wait();
                    let out = g.run(7, || {
                        std::thread::sleep(Duration::from_millis(30));
                        calls.fetch_add(1, Ordering::SeqCst);
                        70
                    });
                    *out.into_value()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 70);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1, "exactly one solve");
        assert_eq!(g.leads(), 1);
        assert_eq!(g.joins(), 7);
        assert_eq!(g.in_flight(), 0);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let g: Arc<FlightGroup<u32, u32>> = Arc::new(FlightGroup::new());
        let calls = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|k| {
                let (g, calls) = (Arc::clone(&g), Arc::clone(&calls));
                std::thread::spawn(move || {
                    let out = g.run(k, || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        k * 2
                    });
                    assert_eq!(*out.into_value(), k * 2);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(calls.load(Ordering::SeqCst), 4);
        assert_eq!(g.leads(), 4);
    }

    #[test]
    fn leader_panic_elects_a_new_leader() {
        let g: Arc<FlightGroup<u32, u32>> = Arc::new(FlightGroup::new());
        let barrier = Arc::new(Barrier::new(2));
        let panicker = {
            let (g, barrier) = (Arc::clone(&g), Arc::clone(&barrier));
            std::thread::spawn(move || {
                let _ = g.run(9, || {
                    barrier.wait(); // follower is (about to be) queued
                    std::thread::sleep(Duration::from_millis(30));
                    panic!("leader dies");
                });
            })
        };
        let follower = {
            let (g, barrier) = (Arc::clone(&g), Arc::clone(&barrier));
            std::thread::spawn(move || {
                barrier.wait();
                // Joins the doomed flight or (if it raced past the panic)
                // leads a fresh one — either way the value materialises.
                *g.run(9, || 90).into_value()
            })
        };
        assert!(panicker.join().is_err(), "leader panicked");
        assert_eq!(follower.join().unwrap(), 90);
        assert_eq!(g.in_flight(), 0, "no stranded flights");
    }
}
