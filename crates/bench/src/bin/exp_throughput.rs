//! Closed-loop HTTP load generator for the production serving layer: the
//! PR 4 acceptance experiment, upgraded in PR 6 to persistent keep-alive
//! connections.
//!
//! Boots the demo server (engine + bounded-concurrency accept loop over
//! the shared worker pool) on an ephemeral port, then drives it with
//! `clients` closed-loop client threads — each holds ONE keep-alive
//! connection and issues its next request only after the previous one
//! answered — mixing *cold* explains (every request carries a unique
//! `coverage` value, so every one is a full mining solve) with *cached*
//! repeats of one pre-warmed query. Responses are framed by
//! `Content-Length` (EOF framing would serialize on the idle timeout).
//! Reports p50/p95/p99 per class, single-client vs concurrent, plus
//! closed-loop throughput, and writes the `BENCH_pr6_throughput.json`
//! snapshot.
//!
//! Run: `cargo run --release -p maprat-bench --bin exp_throughput --
//! [--clients N] [--requests N] [--cached-every K] [out.json]`
//! (defaults: 4 clients × 32 requests, every 4th request cached, output
//! `BENCH_pr6_throughput.json`). `--check` additionally enforces the
//! shape contract (all responses 200, cached responses byte-identical,
//! each client's connection reused throughout) and exits non-zero on
//! violation — the CI smoke mode.

use maprat_bench::timing::{ms, percentile, tail};
use maprat_bench::{dataset_arc, Scale, ShapeCheck};
use maprat_core::parallel;
use maprat_explore::MapRatEngine;
use maprat_server::{AppState, HttpServer};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One persistent keep-alive connection: requests are written to the
/// shared stream and responses framed by `Content-Length`, so the
/// connection survives across the whole closed loop (no per-request
/// TCP handshake in the measured path).
struct KeepAliveClient {
    reader: BufReader<TcpStream>,
    /// Reconnects performed after the initial connect (0 = the whole
    /// run rode one connection).
    reconnects: usize,
    port: u16,
}

impl KeepAliveClient {
    fn connect(port: u16) -> Self {
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect to load target");
        // Latency-bound request/response traffic: Nagle + delayed ACK
        // would add ~40 ms per extra small segment on loopback.
        let _ = stream.set_nodelay(true);
        KeepAliveClient {
            reader: BufReader::new(stream),
            reconnects: 0,
            port,
        }
    }

    /// One GET on the persistent connection; transparently reconnects if
    /// the server closed it (idle timeout, shutdown race).
    fn get(&mut self, target: &str) -> (u16, String) {
        match self.try_get(target) {
            Some(reply) => reply,
            None => {
                let reconnects = self.reconnects + 1;
                *self = KeepAliveClient::connect(self.port);
                self.reconnects = reconnects;
                self.try_get(target).expect("request after reconnect")
            }
        }
    }

    /// One POST on the persistent connection (the fused-batch phase);
    /// reconnects transparently like [`KeepAliveClient::get`].
    fn post(&mut self, target: &str, body: &str) -> (u16, String) {
        let request = format!(
            "POST {target} HTTP/1.1\r\nHost: l\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        match self.try_request(&request) {
            Some(reply) => reply,
            None => {
                let reconnects = self.reconnects + 1;
                *self = KeepAliveClient::connect(self.port);
                self.reconnects = reconnects;
                self.try_request(&request).expect("request after reconnect")
            }
        }
    }

    fn try_get(&mut self, target: &str) -> Option<(u16, String)> {
        // One write_all per request: `write!` straight to the stream
        // would emit one segment per format fragment.
        self.try_request(&format!("GET {target} HTTP/1.1\r\nHost: l\r\n\r\n"))
    }

    fn try_request(&mut self, request: &str) -> Option<(u16, String)> {
        self.reader.get_mut().write_all(request.as_bytes()).ok()?;
        // Status line.
        let mut line = String::new();
        if self.reader.read_line(&mut line).ok()? == 0 {
            return None; // server closed the connection
        }
        let status: u16 = line.split_whitespace().nth(1)?.parse().ok()?;
        // Headers — Content-Length frames the body.
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header).ok()?;
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some(v) = header
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
                .and_then(|v| v.parse().ok())
            {
                content_length = v;
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).ok()?;
        Some((status, String::from_utf8_lossy(&body).into_owned()))
    }
}

/// The cold-explain target for global request number `i`: a unique
/// `coverage` value per request makes every one a distinct cache key —
/// a full mining solve — while keeping the problem difficulty constant.
fn cold_target(i: usize) -> String {
    format!(
        "/api/v1/explain?q=Toy+Story&coverage=0.{:07}&geo=0",
        1_000_000 + i
    )
}

/// The pre-warmed cached target.
const CACHED_TARGET: &str = "/api/v1/explain?q=Toy+Story&coverage=0.2&geo=0";

/// The 8-query "precompute set" for the fused-batch phase: the seven
/// planted titles plus one actor filmography, all under identical
/// settings so the server fuses them into ONE combined cube build.
const BATCH_TITLES: [&str; 7] = [
    "Toy Story",
    "Jaws",
    "Forrest Gump",
    "Minority Report",
    "Saving Private Ryan",
    "The Social Network",
    "The Twilight Saga: Eclipse",
];

/// The batch set as a `POST /api/v1/explain/batch` body.
fn batch_body() -> String {
    let mut members: Vec<String> = BATCH_TITLES
        .iter()
        .map(|t| {
            format!(
                r#"{{"query":{{"terms":[{{"field":"title","value":"{t}"}}]}},"settings":{{"min_coverage":0.15,"require_geo":false}}}}"#
            )
        })
        .collect();
    members.push(
        r#"{"query":{"terms":[{"field":"actor","value":"Tom Hanks"}]},"settings":{"min_coverage":0.15,"require_geo":false}}"#
            .to_string(),
    );
    format!(r#"{{"requests":[{}]}}"#, members.join(","))
}

/// The batch set as sequential single-explain GET targets.
fn batch_get_targets() -> Vec<String> {
    let mut targets: Vec<String> = BATCH_TITLES
        .iter()
        .map(|t| {
            format!(
                "/api/v1/explain?q={}&coverage=0.15&geo=0",
                t.replace(' ', "+")
            )
        })
        .collect();
    targets.push("/api/v1/explain?q=Tom+Hanks&type=actor&coverage=0.15&geo=0".to_string());
    targets
}

/// Latencies of one client's run, split by class.
#[derive(Default)]
struct ClientRun {
    cold: Vec<Duration>,
    cached: Vec<Duration>,
    cached_bodies: Vec<String>,
    non_200: usize,
    reconnects: usize,
}

/// One closed-loop client on one keep-alive connection: `requests`
/// requests, every `cached_every`-th against the warm target, the rest
/// cold (unique keys off the global counter).
fn run_client(port: u16, requests: usize, cached_every: usize, counter: &AtomicUsize) -> ClientRun {
    let mut client = KeepAliveClient::connect(port);
    let mut run = ClientRun::default();
    for r in 0..requests {
        let cached = cached_every != 0 && r % cached_every == cached_every - 1;
        let target = if cached {
            CACHED_TARGET.to_string()
        } else {
            cold_target(counter.fetch_add(1, Ordering::Relaxed))
        };
        let start = Instant::now();
        let (status, body) = client.get(&target);
        let elapsed = start.elapsed();
        if status != 200 {
            run.non_200 += 1;
            continue;
        }
        if cached {
            run.cached.push(elapsed);
            run.cached_bodies.push(body);
        } else {
            run.cold.push(elapsed);
        }
    }
    run.reconnects = client.reconnects;
    run
}

fn tail_line(label: &str, sorted: &[Duration]) -> String {
    if sorted.is_empty() {
        return format!("{label:<28} —");
    }
    let t = tail(sorted);
    format!(
        "{label:<28} n={:<4} p50={:>9} ms  p95={:>9} ms  p99={:>9} ms",
        sorted.len(),
        ms(t.p50),
        ms(t.p95),
        ms(t.p99)
    )
}

fn main() {
    let mut clients = 4usize;
    let mut requests = 32usize;
    let mut cached_every = 4usize;
    let mut out_path = "BENCH_pr6_throughput.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--clients" => clients = args.next().and_then(|v| v.parse().ok()).unwrap_or(clients),
            "--requests" => requests = args.next().and_then(|v| v.parse().ok()).unwrap_or(requests),
            "--cached-every" => {
                cached_every = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(cached_every)
            }
            "--check" => {}
            bare if !bare.starts_with("--") => out_path = bare.to_string(),
            unknown => eprintln!("[exp_throughput] ignoring unknown flag {unknown}"),
        }
    }
    let clients = clients.max(1);
    let requests = requests.max(1);
    let threads = parallel::num_threads();

    println!("== TXT-THROUGHPUT: closed-loop keep-alive load against the serving layer ==");
    println!(
        "scale={} threads={threads} clients={clients} requests/client={requests} cached-every={cached_every}",
        Scale::from_env().name()
    );

    let engine = MapRatEngine::new(dataset_arc());
    let state = AppState::new(engine.clone());
    // Keep-alive connections hold their admission slot while open, so
    // the bound must cover every persistent client plus the warm-up
    // connection.
    let max_in_flight = (clients + 2).max(threads);
    let server = HttpServer::start("127.0.0.1:0", max_in_flight, state.into_handler())
        .expect("bind load target");
    let port = server.port();

    // Pre-warm the cached target so its class measures pure cache+HTTP.
    let mut warm_client = KeepAliveClient::connect(port);
    let (warm_status, warm_body) = warm_client.get(CACHED_TARGET);
    assert_eq!(warm_status, 200, "warm-up request must succeed");
    drop(warm_client); // release its admission slot before the load phase

    // Phase 1 — single-client baseline (all cold) on one connection.
    let counter = AtomicUsize::new(0);
    let single = run_client(port, requests, 0, &counter);
    let mut single_cold = single.cold.clone();
    single_cold.sort_unstable();

    // Phase 2 — concurrent closed loop. The client threads are the load
    // generator (external actors), not server-side workers: the server
    // handles them entirely on the shared pool. The key counter resumes
    // where phase 1 stopped, so no "cold" request can reuse a phase-1
    // cache key regardless of --requests.
    let counter = Arc::new(AtomicUsize::new(requests));
    let wall_start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || run_client(port, requests, cached_every, &counter))
        })
        .collect();
    let runs: Vec<ClientRun> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let wall = wall_start.elapsed();

    let mut cold: Vec<Duration> = runs.iter().flat_map(|r| r.cold.iter().copied()).collect();
    let mut cached: Vec<Duration> = runs.iter().flat_map(|r| r.cached.iter().copied()).collect();
    let non_200: usize = runs.iter().map(|r| r.non_200).sum();
    let reconnects: usize = runs.iter().map(|r| r.reconnects).sum::<usize>() + single.reconnects;
    cold.sort_unstable();
    cached.sort_unstable();
    let total_requests = cold.len() + cached.len();
    let throughput = total_requests as f64 / wall.as_secs_f64();

    println!("{}", tail_line("single-client cold", &single_cold));
    println!("{}", tail_line(&format!("{clients}-client cold"), &cold));
    println!(
        "{}",
        tail_line(&format!("{clients}-client cached"), &cached)
    );
    println!(
        "closed-loop throughput: {total_requests} requests in {} ms = {throughput:.1} req/s (non-200: {non_200}, reconnects: {reconnects})",
        ms(wall)
    );

    let single_p95 = percentile(&single_cold, 95.0).as_secs_f64() * 1e3;
    let concurrent_p95 = percentile(&cold, 95.0).as_secs_f64() * 1e3;
    let p95_ratio = concurrent_p95 / single_p95.max(1e-9);
    println!(
        "cold p95 under {clients}-client load / single-client p95 = {p95_ratio:.2}× \
         (pool shares {threads} worker(s) across requests)"
    );

    // Phase 3 — fused batch vs sequential explains over the same 8-query
    // precompute set. Both runs start from a cleared cache (8 fresh
    // solves each); the batch pays ONE combined cube build where the
    // sequential loop pays 8 per-query builds.
    engine.clear_cache();
    let mut batch_client = KeepAliveClient::connect(port);
    let seq_start = Instant::now();
    let mut seq_ok = true;
    for target in batch_get_targets() {
        let (status, body) = batch_client.get(&target);
        seq_ok &= status == 200;
        if status != 200 {
            eprintln!("[exp_throughput] sequential {target} -> {status}: {body}");
        }
    }
    let sequential8 = seq_start.elapsed();
    engine.clear_cache();
    let body = batch_body();
    let batch_start = Instant::now();
    let (batch_status, batch_reply) = batch_client.post("/api/v1/explain/batch", &body);
    let batch8 = batch_start.elapsed();
    drop(batch_client);
    let batch_slots_ok = maprat_server::Json::parse(&batch_reply)
        .ok()
        .and_then(|v| {
            let results = v.get("results")?.clone();
            let n = results.len()?;
            Some(n == 8 && (0..n).all(|i| results.at(i).is_some_and(|s| s.get("result").is_some())))
        })
        .unwrap_or(false);
    let batch8_ms = batch8.as_secs_f64() * 1e3;
    let sequential8_ms = sequential8.as_secs_f64() * 1e3;
    let batch_speedup = sequential8_ms / batch8_ms.max(1e-9);
    println!(
        "fused batch (8 queries): batch={batch8_ms:.1} ms vs sequential={sequential8_ms:.1} ms = {batch_speedup:.2}x \
         (one combined cube build vs 8; see PERF.md for the multi-core ratio)"
    );

    let cached_tail = tail(&cached);
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"snapshot\": \"pr6-keepalive-throughput\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", Scale::from_env().name());
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"clients\": {clients},");
    let _ = writeln!(json, "  \"requests_per_client\": {requests},");
    let _ = writeln!(json, "  \"cached_every\": {cached_every},");
    let t = tail(&single_cold);
    let _ = writeln!(json, "  \"single_cold_p50_ms\": {},", ms(t.p50));
    let _ = writeln!(json, "  \"single_cold_p95_ms\": {},", ms(t.p95));
    let _ = writeln!(json, "  \"single_cold_p99_ms\": {},", ms(t.p99));
    let t = tail(&cold);
    let _ = writeln!(json, "  \"concurrent_cold_p50_ms\": {},", ms(t.p50));
    let _ = writeln!(json, "  \"concurrent_cold_p95_ms\": {},", ms(t.p95));
    let _ = writeln!(json, "  \"concurrent_cold_p99_ms\": {},", ms(t.p99));
    let _ = writeln!(
        json,
        "  \"concurrent_cached_p50_ms\": {},",
        ms(cached_tail.p50)
    );
    let _ = writeln!(
        json,
        "  \"concurrent_cached_p95_ms\": {},",
        ms(cached_tail.p95)
    );
    let _ = writeln!(
        json,
        "  \"concurrent_cached_p99_ms\": {},",
        ms(cached_tail.p99)
    );
    let _ = writeln!(
        json,
        "  \"cold_p95_ratio_concurrent_over_single\": {p95_ratio:.4},"
    );
    let _ = writeln!(json, "  \"throughput_rps\": {throughput:.2},");
    let _ = writeln!(json, "  \"batch8_ms\": {batch8_ms:.4},");
    let _ = writeln!(json, "  \"sequential8_ms\": {sequential8_ms:.4},");
    let _ = writeln!(json, "  \"batch_speedup\": {batch_speedup:.4},");
    let _ = writeln!(json, "  \"reconnects\": {reconnects},");
    let _ = writeln!(json, "  \"non_200\": {non_200}");
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, &json).expect("write throughput snapshot");
    println!("wrote {out_path}");

    let mut check = ShapeCheck::new();
    check.expect("every request answered 200", non_200 == 0);
    check.expect(
        "single-client baseline has the full cold sample",
        single_cold.len() == requests,
    );
    check.expect(
        "concurrent phase produced both classes",
        !cold.is_empty() && (cached_every == 0 || !cached.is_empty()),
    );
    check.expect(
        "cached responses byte-identical across clients",
        runs.iter()
            .flat_map(|r| r.cached_bodies.iter())
            .all(|body| *body == warm_body),
    );
    check.expect(
        "keep-alive held: no client needed to reconnect",
        reconnects == 0,
    );
    check.expect("throughput is finite and positive", throughput > 0.0);
    check.expect(
        "sequential precompute-set explains all answered 200",
        seq_ok,
    );
    check.expect(
        "batch endpoint answered 200 with 8 ok slots",
        batch_status == 200 && batch_slots_ok,
    );
    check.finish();
}
