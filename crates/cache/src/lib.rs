//! Caching substrate for MapRat.
//!
//! §2.3: "Using a combination of aggressive data pre-processing, result
//! pre-computation and caching techniques, the latency of MapRat is
//! minimized." This crate provides the generic machinery:
//!
//! * [`lru::LruCache`] — a classic intrusive-list LRU with O(1) get/put;
//! * [`shard::ShardedCache`] — a thread-safe, sharded wrapper (the demo
//!   server answers concurrent requests);
//! * [`stats::CacheStats`] — hit/miss/eviction telemetry for the latency
//!   experiments (TXT-LATENCY in EXPERIMENTS.md).
//!
//! The exploration layer (`maprat-explore`) keys this cache by the typed
//! explain request and pre-computes per-item explanations; keeping this
//! crate generic keeps the dependency graph parallel.

#![warn(missing_docs)]

pub mod lru;
pub mod shard;
pub mod stats;

pub use lru::LruCache;
pub use shard::ShardedCache;
pub use stats::CacheStats;
